/**
 * @file
 * RAII wall-clock timer that records elapsed nanoseconds into a
 * LatencyHistogram on scope exit — including early returns and
 * error paths, which is exactly where hand-rolled stop() calls get
 * forgotten.
 */

#ifndef ETHKV_OBS_SCOPED_TIMER_HH
#define ETHKV_OBS_SCOPED_TIMER_HH

#include <chrono>

#include "obs/metrics.hh"

namespace ethkv::obs
{

/** Steady-clock nanosecond timestamp helper. */
inline uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Records into the target histogram exactly once: at destruction,
 * or earlier via stop(). dismiss() cancels recording entirely.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(LatencyHistogram &hist)
        : hist_(&hist), start_(nowNanos())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (hist_)
            hist_->record(nowNanos() - start_);
    }

    /** Nanoseconds since construction (recording still pending). */
    uint64_t
    elapsedNs() const
    {
        return nowNanos() - start_;
    }

    /** Record now instead of at scope exit. */
    void
    stop()
    {
        if (hist_) {
            hist_->record(nowNanos() - start_);
            hist_ = nullptr;
        }
    }

    /** Never record (e.g. aborted work that would skew tails). */
    void dismiss() { hist_ = nullptr; }

  private:
    LatencyHistogram *hist_;
    uint64_t start_;
};

} // namespace ethkv::obs

#endif // ETHKV_OBS_SCOPED_TIMER_HH
