/**
 * @file
 * Minimal JSON building and parsing for the telemetry plane.
 *
 * Every JSON document the process emits (metrics snapshots, STATS
 * payloads, slow-op dumps, Chrome traces) funnels through the
 * escape helper and JsonWriter here, so quoting bugs get fixed in
 * one place instead of per call site. The parser covers the subset
 * the tooling needs — objects, arrays, strings with escapes,
 * numbers, booleans, null — and exists so `ethkv_mon` and the
 * trace validator don't grow their own ad-hoc scanners.
 *
 * Not a general-purpose JSON library: no streaming, no SAX, no
 * number round-trip guarantees beyond double precision.
 */

#ifndef ETHKV_OBS_JSON_HH
#define ETHKV_OBS_JSON_HH

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace ethkv::obs
{

/**
 * Append `s` to `out` as a JSON string body (no surrounding
 * quotes): escapes quote, backslash, and all control characters
 * below 0x20 (named escapes for \b \f \n \r \t, \u00XX otherwise).
 * Header-inline so hot exporters (metrics.cc in the pinned
 * sanitizer builds) don't need json.cc linked in.
 */
inline void
appendJsonEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        unsigned char uc = static_cast<unsigned char>(c);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (uc < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
}

/** appendJsonEscaped WITH surrounding quotes. */
inline void
appendJsonString(std::string &out, std::string_view s)
{
    out.push_back('"');
    appendJsonEscaped(out, s);
    out.push_back('"');
}

/**
 * Structured JSON emitter: tracks nesting and inserts commas, so
 * callers can't produce `,}` or forget a separator. Usage:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("schema"); w.value("ethkv.server.stats.v2");
 *   w.key("metrics"); w.rawValue(registry.toJson());
 *   w.endObject();
 *   use(w.str());
 *
 * Misuse (value without key inside an object, unbalanced ends) is
 * a programming error and panics in debug via expect checks.
 */
class JsonWriter
{
  public:
    JsonWriter() { out_.reserve(256); }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Member name; must be followed by exactly one value. */
    void key(std::string_view name);

    void value(std::string_view s);
    void
    value(const char *s)
    {
        value(std::string_view(s));
    }
    void value(uint64_t v);
    void value(int64_t v);
    void
    value(int v)
    {
        value(static_cast<int64_t>(v));
    }
    void
    value(unsigned v)
    {
        value(static_cast<uint64_t>(v));
    }
    void value(double v);
    void value(bool v);
    void null();

    /** Splice pre-rendered JSON (e.g. a nested snapshot) in value
     *  position. Trailing whitespace/newlines are trimmed. */
    void rawValue(std::string_view json);

    const std::string &str() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    void beforeValue();

    std::string out_;
    // One level per open container: true once the first element
    // has been written (so the next one needs a comma).
    std::vector<bool> wrote_elem_;
    bool pending_key_ = false;
};

/**
 * Parsed JSON value (DOM). Object members keep insertion order;
 * lookup is linear — documents here are small (metrics snapshots,
 * traces of a few thousand spans).
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> items;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup; null when not an object or key missing. */
    const JsonValue *find(std::string_view name) const;

    /** number as uint64 (clamped at 0 for negatives). */
    uint64_t asU64() const;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed,
 * trailing garbage is an error). Depth-limited against stack
 * exhaustion on adversarial inputs.
 */
Status parseJson(std::string_view text, JsonValue &out);

} // namespace ethkv::obs

#endif // ETHKV_OBS_JSON_HH
