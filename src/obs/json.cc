#include "obs/json.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace ethkv::obs
{

// ---------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------

void
JsonWriter::beforeValue()
{
    if (pending_key_) {
        pending_key_ = false;
        return; // comma was written with the key
    }
    if (!wrote_elem_.empty()) {
        if (wrote_elem_.back())
            out_.push_back(',');
        wrote_elem_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out_.push_back('{');
    wrote_elem_.push_back(false);
}

void
JsonWriter::endObject()
{
    if (wrote_elem_.empty())
        panic("JsonWriter::endObject with no open container");
    wrote_elem_.pop_back();
    out_.push_back('}');
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out_.push_back('[');
    wrote_elem_.push_back(false);
}

void
JsonWriter::endArray()
{
    if (wrote_elem_.empty())
        panic("JsonWriter::endArray with no open container");
    wrote_elem_.pop_back();
    out_.push_back(']');
}

void
JsonWriter::key(std::string_view name)
{
    if (wrote_elem_.empty())
        panic("JsonWriter::key outside an object");
    if (wrote_elem_.back())
        out_.push_back(',');
    wrote_elem_.back() = true;
    appendJsonString(out_, name);
    out_.push_back(':');
    pending_key_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    beforeValue();
    appendJsonString(out_, s);
}

void
JsonWriter::value(uint64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
}

void
JsonWriter::value(int64_t v)
{
    beforeValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
}

void
JsonWriter::value(double v)
{
    beforeValue();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
}

void
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
}

void
JsonWriter::rawValue(std::string_view json)
{
    while (!json.empty() &&
           (json.back() == '\n' || json.back() == ' ' ||
            json.back() == '\t' || json.back() == '\r'))
        json.remove_suffix(1);
    beforeValue();
    out_ += json;
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

const JsonValue *
JsonValue::find(std::string_view name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, value] : members)
        if (key == name)
            return &value;
    return nullptr;
}

uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number || number <= 0.0)
        return 0;
    return static_cast<uint64_t>(number);
}

namespace
{

constexpr int kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Status
    parse(JsonValue &out)
    {
        // Reset a reused value: parseValue fills fields in place,
        // so stale members/items from a previous parse would leak
        // through otherwise (mon polls reuse their DOM).
        out = JsonValue{};
        Status s = parseValue(out, 0);
        if (!s.isOk())
            return s;
        skipWs();
        if (pos_ != text_.size())
            return Status::corruption(
                "json: trailing garbage at offset " +
                std::to_string(pos_));
        return Status::ok();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Status
    fail(const char *what)
    {
        return Status::corruption(
            std::string("json: ") + what + " at offset " +
            std::to_string(pos_));
    }

    Status
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case '{':
            return parseObject(out, depth);
        case '[':
            return parseArray(out, depth);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        case 't':
            if (text_.substr(pos_, 4) == "true") {
                pos_ += 4;
                out.kind = JsonValue::Kind::Bool;
                out.boolean = true;
                return Status::ok();
            }
            return fail("bad literal");
        case 'f':
            if (text_.substr(pos_, 5) == "false") {
                pos_ += 5;
                out.kind = JsonValue::Kind::Bool;
                out.boolean = false;
                return Status::ok();
            }
            return fail("bad literal");
        case 'n':
            if (text_.substr(pos_, 4) == "null") {
                pos_ += 4;
                out.kind = JsonValue::Kind::Null;
                return Status::ok();
            }
            return fail("bad literal");
        default:
            return parseNumber(out);
        }
    }

    Status
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return Status::ok();
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected member name");
            std::string name;
            Status s = parseString(name);
            if (!s.isOk())
                return s;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue value;
            s = parseValue(value, depth + 1);
            if (!s.isOk())
                return s;
            out.members.emplace_back(std::move(name),
                                     std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status::ok();
            return fail("expected ',' or '}'");
        }
    }

    Status
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return Status::ok();
        while (true) {
            JsonValue value;
            Status s = parseValue(value, depth + 1);
            if (!s.isOk())
                return s;
            out.items.push_back(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status::ok();
            return fail("expected ',' or ']'");
        }
    }

    /** UTF-8-encode one code point (BMP + supplementary). */
    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    Status
    parseHex4(uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + static_cast<size_t>(i)];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        pos_ += 4;
        return Status::ok();
    }

    Status
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return Status::ok();
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out.push_back(e);
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                uint32_t cp = 0;
                Status s = parseHex4(cp);
                if (!s.isOk())
                    return s;
                if (cp >= 0xD800 && cp <= 0xDBFF &&
                    pos_ + 1 < text_.size() &&
                    text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    uint32_t low = 0;
                    s = parseHex4(low);
                    if (!s.isOk())
                        return s;
                    if (low >= 0xDC00 && low <= 0xDFFF)
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (low - 0xDC00);
                    else
                        return fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                return fail("bad escape");
            }
        }
    }

    Status
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        if (pos_ == start)
            return fail("expected value");
        std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("bad number");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return Status::ok();
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

Status
parseJson(std::string_view text, JsonValue &out)
{
    Parser parser(text);
    return parser.parse(out);
}

} // namespace ethkv::obs
