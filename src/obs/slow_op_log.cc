#include "obs/slow_op_log.hh"

#include <algorithm>

#include "obs/json.hh"

namespace ethkv::obs
{

SlowOpLog::SlowOpLog(size_t capacity)
    : slots_(capacity ? capacity : 1)
{}

void
SlowOpLog::record(const SlowOpRecord &rec)
{
    uint64_t ticket =
        head_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[ticket % slots_.size()];
    uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    // Claim the slot: even -> odd. Losing the race means another
    // writer lapped us on this slot; drop rather than block.
    if (seq & 1 ||
        !slot.seq.compare_exchange_strong(
            seq, seq + 1, std::memory_order_acquire,
            std::memory_order_relaxed)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    slot.rec = rec;
    slot.seq.store(seq + 2, std::memory_order_release);
    recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SlowOpRecord>
SlowOpLog::snapshot() const
{
    std::vector<SlowOpRecord> out;
    uint64_t head = head_.load(std::memory_order_acquire);
    size_t n = slots_.size();
    uint64_t want = std::min<uint64_t>(head, n);
    out.reserve(want);
    // Walk backwards from the most recently claimed slot.
    for (uint64_t i = 0; i < want; ++i) {
        const Slot &slot = slots_[(head - 1 - i) % n];
        uint64_t before =
            slot.seq.load(std::memory_order_acquire);
        if (before == 0 || (before & 1))
            continue; // never written, or write in flight
        SlowOpRecord rec = slot.rec;
        uint64_t after =
            slot.seq.load(std::memory_order_acquire);
        if (after != before)
            continue; // overwritten while copying
        out.push_back(rec);
    }
    return out;
}

std::string
SlowOpLog::toJson() const
{
    std::vector<SlowOpRecord> records = snapshot();
    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value("ethkv.slowops.v1");
    w.key("capacity");
    w.value(static_cast<uint64_t>(capacity()));
    w.key("recorded");
    w.value(recorded());
    w.key("dropped");
    w.value(dropped());
    w.key("ops");
    w.beginArray();
    for (const SlowOpRecord &rec : records) {
        w.beginObject();
        w.key("start_us");
        w.value(rec.start_us);
        w.key("trace_id");
        w.value(rec.trace_id);
        w.key("opcode");
        w.value(static_cast<uint64_t>(rec.opcode));
        w.key("wire_status");
        w.value(static_cast<uint64_t>(rec.wire_status));
        w.key("worker");
        w.value(static_cast<uint64_t>(rec.worker));
        w.key("total_ns");
        w.value(rec.total_ns);
        w.key("exec_ns");
        w.value(rec.exec_ns);
        w.key("decode_ns");
        w.value(rec.decode_ns);
        w.key("encode_ns");
        w.value(rec.encode_ns);
        w.key("request_bytes");
        w.value(static_cast<uint64_t>(rec.request_bytes));
        w.key("response_bytes");
        w.value(static_cast<uint64_t>(rec.response_bytes));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::string out = w.take();
    out += "\n";
    return out;
}

} // namespace ethkv::obs
