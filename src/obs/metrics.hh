/**
 * @file
 * Process-wide telemetry instruments: counters, gauges, and
 * log-bucketed histograms behind a named registry.
 *
 * The paper's methodology is instrumentation at the KV-store seam
 * (Section III-A); this module generalizes that idea to the whole
 * stack so perf work can be explained, not just observed: per-op
 * latency percentiles, per-phase pipeline timing, per-class cache
 * telemetry, engine maintenance costs.
 *
 * Overhead budget: one relaxed atomic add per counter increment,
 * one bucket add plus four relaxed atomics per histogram sample.
 * The hot-path pieces (increment, record, registry lookup) are
 * header-only so low-level libraries can record without linking
 * the export code; snapshot/JSON/table rendering lives in
 * metrics.cc. Callers cache instrument references — lookups take a
 * mutex, increments never do.
 */

#ifndef ETHKV_OBS_METRICS_HH
#define ETHKV_OBS_METRICS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_ranks.hh"
#include "common/mutex.hh"
#include "common/status.hh"

namespace ethkv::obs
{

/** Monotonic event count. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Increment by one and return the PREVIOUS value, so callers
     *  can derive decisions (e.g. sampling) from the same atomic
     *  op that counts. */
    uint64_t
    fetchInc()
    {
        return value_.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous signed level (queue depth, resident bytes, ...). */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * One read-only histogram state: percentile math and merging live
 * here so snapshots from sharded or per-run registries compose.
 */
struct HistogramSnapshot
{
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::vector<uint64_t> buckets;

    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }

    /**
     * Value at quantile p in [0,1]; bucket-midpoint resolution
     * (<= ~3% relative error with 16 sub-buckets per octave),
     * clamped to the exact observed [min, max].
     */
    uint64_t percentile(double p) const;

    void merge(const HistogramSnapshot &other);
};

/**
 * Log-bucketed value histogram (HdrHistogram-style layout).
 *
 * Values are bucketed by power of two with 16 linear sub-buckets
 * per octave, so relative resolution stays ~6% across the full
 * uint64 range; values below 16 are exact. Suited to latencies in
 * nanoseconds and byte sizes alike. Increments are relaxed
 * atomics; no locks anywhere on the record path.
 */
class LatencyHistogram
{
  public:
    static constexpr int sub_bits = 4;
    static constexpr int sub_count = 1 << sub_bits;
    static constexpr size_t num_buckets =
        static_cast<size_t>(64 - sub_bits + 1) << sub_bits;

    LatencyHistogram() : buckets_(num_buckets) {}

    void
    record(uint64_t value)
    {
        buckets_[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        uint64_t seen = min_.load(std::memory_order_relaxed);
        while (value < seen &&
               !min_.compare_exchange_weak(
                   seen, value, std::memory_order_relaxed)) {
        }
        seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(
                   seen, value, std::memory_order_relaxed)) {
        }
    }

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    uint64_t
    min() const
    {
        uint64_t v = min_.load(std::memory_order_relaxed);
        return v == UINT64_MAX ? 0 : v;
    }

    uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    double
    mean() const
    {
        uint64_t n = count();
        return n ? static_cast<double>(sum()) /
                       static_cast<double>(n)
                 : 0.0;
    }

    /** Convenience percentile over a point-in-time snapshot. */
    uint64_t percentile(double p) const;

    /** Copy out the current state (named `name` in the copy). */
    HistogramSnapshot snapshot(const std::string &name = "") const;

    void reset();

    /** Bucket index for a value; exposed for boundary tests. */
    static size_t
    bucketIndex(uint64_t value)
    {
        if (value < sub_count)
            return static_cast<size_t>(value);
        int msb = 63 - std::countl_zero(value);
        int shift = msb - sub_bits;
        return (static_cast<size_t>(msb - sub_bits + 1)
                << sub_bits) +
               ((value >> shift) & (sub_count - 1));
    }

    /** Smallest value landing in bucket `index`. */
    static uint64_t
    bucketLowerBound(size_t index)
    {
        if (index < sub_count)
            return index;
        size_t group = index >> sub_bits;
        uint64_t base = static_cast<uint64_t>(
            sub_count + (index & (sub_count - 1)));
        return base << (group - 1);
    }

  private:
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
};

/** Point-in-time copy of a whole registry. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Combine with another snapshot (shards, repeated runs). */
    void merge(const MetricsSnapshot &other);

    const HistogramSnapshot *findHistogram(
        const std::string &name) const;
    const uint64_t *findCounter(const std::string &name) const;

    /** Machine-readable export (schema ethkv.metrics.v1). */
    std::string toJson() const;

    /** Human-readable table; stdout when `out` is null. */
    void printTable(std::FILE *out = nullptr) const;
};

/**
 * Named instrument registry.
 *
 * Instruments are created on first lookup and live as long as the
 * registry; returned references stay valid. One process-global
 * registry serves the common case; tests and A/B benches can make
 * private instances.
 */
class MetricsRegistry
{
  public:
    Counter &
    counter(const std::string &name) EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        auto &slot = counters_[name];
        if (!slot)
            slot = std::make_unique<Counter>();
        return *slot;
    }

    Gauge &
    gauge(const std::string &name) EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        auto &slot = gauges_[name];
        if (!slot)
            slot = std::make_unique<Gauge>();
        return *slot;
    }

    LatencyHistogram &
    histogram(const std::string &name) EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        auto &slot = histograms_[name];
        if (!slot)
            slot = std::make_unique<LatencyHistogram>();
        return *slot;
    }

    /** The process-wide registry. */
    static MetricsRegistry &
    global()
    {
        static MetricsRegistry registry;
        return registry;
    }

    MetricsSnapshot snapshot() const EXCLUDES(mutex_);
    std::string toJson() const;
    void printTable(std::FILE *out = nullptr) const;

    /** Zero every instrument (A/B bench phases, test isolation). */
    void reset() EXCLUDES(mutex_);

  private:
    // The mutex guards the name->instrument maps only; the
    // instruments themselves are internally atomic, so returned
    // references are used lock-free.
    mutable Mutex mutex_{lock_ranks::kMetricsRegistry};
    std::map<std::string, std::unique_ptr<Counter>> counters_
        GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<LatencyHistogram>>
        histograms_ GUARDED_BY(mutex_);
};

/** Write a registry snapshot as JSON to `path`. */
Status writeMetricsJson(const MetricsRegistry &registry,
                        const std::string &path);

/**
 * Strip a `--metrics-out <path>` / `--metrics-out=<path>` flag
 * from argv (so downstream parsers never see it) and return the
 * path; falls back to $ETHKV_METRICS_OUT, then "".
 */
std::string consumeMetricsOutFlag(int *argc, char **argv);

/**
 * Arrange for the global registry to be dumped as JSON to `path`
 * when the process exits normally. No-op for an empty path.
 */
void installExitDump(const std::string &path);

} // namespace ethkv::obs

#endif // ETHKV_OBS_METRICS_HH
