/**
 * @file
 * Periodic metrics snapshot-to-file writer.
 *
 * ethkvd's --metrics-interval points this at a path; every tick it
 * snapshots the registry, computes deltas against the previous
 * tick (counter increments and per-second rates, plus histogram
 * sample-count rates), and atomically replaces the file
 * (tmp + rename) with a ethkv.metrics.live.v1 document. External
 * collectors and `watch`-style tooling read the file without
 * talking to the server's wire protocol at all.
 */

#ifndef ETHKV_OBS_METRICS_WRITER_HH
#define ETHKV_OBS_METRICS_WRITER_HH

#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>

#include "common/lock_ranks.hh"
#include "common/mutex.hh"
#include "common/status.hh"
#include "obs/metrics.hh"

namespace ethkv
{
class Env;
}

namespace ethkv::obs
{

class PeriodicMetricsWriter
{
  public:
    struct Options
    {
        std::string path;           //!< Destination file.
        uint64_t interval_ms = 1000;
        MetricsRegistry *registry = nullptr; //!< null = global().
        Env *env = nullptr;                  //!< null = default.
    };

    explicit PeriodicMetricsWriter(Options options);
    ~PeriodicMetricsWriter();

    PeriodicMetricsWriter(const PeriodicMetricsWriter &) = delete;
    PeriodicMetricsWriter &
    operator=(const PeriodicMetricsWriter &) = delete;

    /** Spawn the writer thread. No-op when path is empty. */
    void start();

    /** Stop and join; final snapshot is written on the way out. */
    void stop();

    /**
     * One snapshot+delta document without touching the file or
     * the thread — the building block the loop uses, exposed so
     * tests exercise delta math deterministically.
     *
     * @param elapsed_ms Wall time attributed to the delta (rates
     *        are per second of this span).
     */
    std::string renderOnce(uint64_t elapsed_ms);

  private:
    void loop();
    Status writeFile(const std::string &doc);

    Options options_;
    MetricsSnapshot prev_;
    bool have_prev_ = false;
    uint64_t seq_ = 0;

    Mutex mutex_{lock_ranks::kMetricsWriter};
    std::condition_variable cv_;
    bool stop_requested_ GUARDED_BY(mutex_) = false;
    bool running_ = false;
    std::thread thread_;
};

} // namespace ethkv::obs

#endif // ETHKV_OBS_METRICS_WRITER_HH
