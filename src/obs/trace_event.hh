/**
 * @file
 * Chrome trace_event span log for the block pipeline and the
 * ethkvd request pipeline.
 *
 * Collects complete ("ph":"X") spans and writes the JSON array
 * format that chrome://tracing and Perfetto load directly. Two
 * clock modes:
 *
 *  - relative (default): timestamps are microseconds since log
 *    creation — fine for a single-process capture run.
 *  - absolute: timestamps are the raw monotonic clock in
 *    microseconds, so logs recorded by different processes on the
 *    same machine (ethkvd and a tracing client) line up when
 *    merged into one timeline with mergeTraceJson().
 *
 * Spans carry a pid/tid pair (Chrome's track identity) and an
 * optional named numeric argument; the legacy two-arg addSpan
 * overloads keep pid=1 tid=1 arg-name "block" for the capture
 * pipeline.
 */

#ifndef ETHKV_OBS_TRACE_EVENT_HH
#define ETHKV_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/lock_ranks.hh"
#include "common/mutex.hh"
#include "common/status.hh"

namespace ethkv::obs
{

/** Accumulates spans in memory; thread-safe appends. */
class TraceEventLog
{
  public:
    /** One complete span; timestamps in microseconds (see clock
     *  modes above). */
    struct Span
    {
        std::string name;
        std::string category;
        uint64_t start_us = 0;
        uint64_t duration_us = 0;
        uint64_t arg_value = 0;
        bool has_arg = false;
        const char *arg_name = "block"; //!< Static storage only.
        uint32_t tid = 1;
        uint32_t pid = 1;
    };

    /** Default: relative clock, unbounded capacity. */
    TraceEventLog();

    /**
     * @param absolute_clock Use raw monotonic microseconds so logs
     *        from cooperating processes merge onto one timeline.
     * @param max_spans Drop (and count) spans beyond this many;
     *        0 = unbounded. Servers cap so a long-lived tracing
     *        run can't grow without bound.
     */
    explicit TraceEventLog(bool absolute_clock,
                           size_t max_spans = 0);

    /** Microseconds on this log's clock (see clock modes). */
    uint64_t nowUs() const;

    void addSpan(const std::string &name,
                 const std::string &category, uint64_t start_us,
                 uint64_t duration_us) EXCLUDES(mutex_);

    /** Span with one numeric argument (e.g. the block number). */
    void addSpan(const std::string &name,
                 const std::string &category, uint64_t start_us,
                 uint64_t duration_us, uint64_t arg_value)
        EXCLUDES(mutex_);

    /** Fully-specified span (tid/pid/named arg). */
    void addSpanFull(const Span &span) EXCLUDES(mutex_);

    /**
     * Chrome "M"-phase process_name metadata record, so merged
     * traces label each pid track ("ethkvd", "client"). Emitted
     * ahead of the spans in toJson().
     */
    void setProcessLabel(uint32_t pid, const std::string &name)
        EXCLUDES(mutex_);

    size_t size() const EXCLUDES(mutex_);

    /** Spans discarded because max_spans was reached. */
    uint64_t dropped() const EXCLUDES(mutex_);

    /** Render the Chrome trace JSON array format. */
    std::string toJson() const EXCLUDES(mutex_);

    /** Write toJson() to a file. */
    Status writeTo(const std::string &path) const;

  private:
    mutable Mutex mutex_{lock_ranks::kTraceLog};
    std::vector<Span> spans_ GUARDED_BY(mutex_);
    std::vector<std::pair<uint32_t, std::string>> process_labels_
        GUARDED_BY(mutex_);
    uint64_t dropped_ GUARDED_BY(mutex_) = 0;
    size_t max_spans_;  //!< Immutable after construction; 0 = off.
    uint64_t epoch_ns_; //!< Immutable; 0 in absolute-clock mode.
};

/**
 * Textually splice two Chrome trace JSON arrays into one. Inputs
 * must be toJson()-style top-level arrays; the result is a single
 * array with a's events followed by b's. An empty or non-array
 * input contributes nothing.
 */
std::string mergeTraceJson(const std::string &a,
                           const std::string &b);

/**
 * RAII span: opens at construction, appends to the log at
 * destruction. A null log makes every operation a no-op, so call
 * sites can be unconditional.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceEventLog *log, const char *name,
               const char *category = "pipeline");
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach one numeric argument shown in the trace viewer. */
    void setArg(uint64_t value);

    /** Argument with an explicit name (static storage only). */
    void setArg(const char *name, uint64_t value);

    /** Override the span's track identity (default tid=1 pid=1). */
    void setTrack(uint32_t pid, uint32_t tid);

  private:
    TraceEventLog *log_;
    const char *name_;
    const char *category_;
    const char *arg_name_ = "block";
    uint64_t start_us_;
    uint64_t arg_value_ = 0;
    bool has_arg_ = false;
    uint32_t tid_ = 1;
    uint32_t pid_ = 1;
};

} // namespace ethkv::obs

#endif // ETHKV_OBS_TRACE_EVENT_HH
