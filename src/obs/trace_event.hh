/**
 * @file
 * Chrome trace_event span log for the block pipeline.
 *
 * Collects complete ("ph":"X") spans and writes the JSON array
 * format that chrome://tracing and Perfetto load directly, so a
 * capture run's download/verify/execute/commit/maintenance phases
 * can be inspected block by block on a timeline.
 */

#ifndef ETHKV_OBS_TRACE_EVENT_HH
#define ETHKV_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hh"
#include "common/status.hh"

namespace ethkv::obs
{

/** Accumulates spans in memory; thread-safe appends. */
class TraceEventLog
{
  public:
    /** One complete span; timestamps in microseconds from log
     *  creation. */
    struct Span
    {
        std::string name;
        std::string category;
        uint64_t start_us;
        uint64_t duration_us;
        uint64_t arg_value;
        bool has_arg;
    };

    TraceEventLog();

    /** Microseconds since the log was created. */
    uint64_t nowUs() const;

    void addSpan(const std::string &name,
                 const std::string &category, uint64_t start_us,
                 uint64_t duration_us) EXCLUDES(mutex_);

    /** Span with one numeric argument (e.g. the block number). */
    void addSpan(const std::string &name,
                 const std::string &category, uint64_t start_us,
                 uint64_t duration_us, uint64_t arg_value)
        EXCLUDES(mutex_);

    size_t size() const EXCLUDES(mutex_);

    /** Render the Chrome trace JSON array format. */
    std::string toJson() const EXCLUDES(mutex_);

    /** Write toJson() to a file. */
    Status writeTo(const std::string &path) const;

  private:
    mutable Mutex mutex_;
    std::vector<Span> spans_ GUARDED_BY(mutex_);
    uint64_t epoch_ns_; //!< Immutable after construction.
};

/**
 * RAII span: opens at construction, appends to the log at
 * destruction. A null log makes every operation a no-op, so call
 * sites can be unconditional.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceEventLog *log, const char *name,
               const char *category = "pipeline");
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach one numeric argument shown in the trace viewer. */
    void setArg(uint64_t value);

  private:
    TraceEventLog *log_;
    const char *name_;
    const char *category_;
    uint64_t start_us_;
    uint64_t arg_value_ = 0;
    bool has_arg_ = false;
};

} // namespace ethkv::obs

#endif // ETHKV_OBS_TRACE_EVENT_HH
