#include "obs/metrics.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace ethkv::obs
{

namespace
{

/** Midpoint of a bucket: lower bound plus half the bucket width. */
uint64_t
bucketRepresentative(size_t index)
{
    uint64_t lower = LatencyHistogram::bucketLowerBound(index);
    if (index < LatencyHistogram::sub_count)
        return lower; // exact small values
    uint64_t width =
        LatencyHistogram::bucketLowerBound(index + 1) - lower;
    return lower + width / 2;
}

uint64_t
percentileOf(const std::vector<uint64_t> &buckets, uint64_t count,
             uint64_t min, uint64_t max, double p)
{
    if (count == 0)
        return 0;
    if (p <= 0.0)
        return min;
    if (p >= 1.0)
        return max;
    uint64_t target = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(count)));
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= target) {
            uint64_t v = bucketRepresentative(i);
            return std::clamp(v, min, max);
        }
    }
    return max;
}

/** JSON-escape via the shared helper so control characters in
 *  metric names can't produce invalid documents. */
void
appendEscaped(std::string &out, const std::string &s)
{
    appendJsonEscaped(out, s);
}

void
appendU64(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

void
appendI64(std::string &out, int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out += buf;
}

void
appendDouble(std::string &out, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out += buf;
}

/** "1.23 ms"-style rendering for table output of _ns histograms. */
std::string
formatNanos(double ns)
{
    char buf[32];
    if (ns >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
    else if (ns >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
    return buf;
}

bool
isNanoHistogram(const std::string &name)
{
    return name.size() >= 3 &&
           name.compare(name.size() - 3, 3, "_ns") == 0;
}

} // namespace

uint64_t
HistogramSnapshot::percentile(double p) const
{
    return percentileOf(buckets, count, min, max, p);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        uint64_t kept_min = other.min;
        uint64_t kept_max = other.max;
        buckets = other.buckets;
        count = other.count;
        sum = other.sum;
        min = kept_min;
        max = kept_max;
        return;
    }
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
}

uint64_t
LatencyHistogram::percentile(double p) const
{
    return snapshot().percentile(p);
}

HistogramSnapshot
LatencyHistogram::snapshot(const std::string &name) const
{
    HistogramSnapshot snap;
    snap.name = name;
    snap.buckets.resize(num_buckets);
    for (size_t i = 0; i < num_buckets; ++i)
        snap.buckets[i] =
            buckets_[i].load(std::memory_order_relaxed);
    snap.count = count();
    snap.sum = sum();
    snap.min = min();
    snap.max = max();
    return snap;
}

void
LatencyHistogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    auto merge_values = [](auto &mine, const auto &theirs) {
        for (const auto &[name, value] : theirs) {
            bool found = false;
            for (auto &[my_name, my_value] : mine) {
                if (my_name == name) {
                    my_value += value;
                    found = true;
                    break;
                }
            }
            if (!found)
                mine.emplace_back(name, value);
        }
    };
    merge_values(counters, other.counters);
    merge_values(gauges, other.gauges);
    for (const HistogramSnapshot &theirs : other.histograms) {
        bool found = false;
        for (HistogramSnapshot &mine : histograms) {
            if (mine.name == theirs.name) {
                mine.merge(theirs);
                found = true;
                break;
            }
        }
        if (!found)
            histograms.push_back(theirs);
    }
}

const HistogramSnapshot *
MetricsSnapshot::findHistogram(const std::string &name) const
{
    for (const HistogramSnapshot &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

const uint64_t *
MetricsSnapshot::findCounter(const std::string &name) const
{
    for (const auto &[counter_name, value] : counters)
        if (counter_name == name)
            return &value;
    return nullptr;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out;
    out.reserve(4096);
    out += "{\n  \"schema\": \"ethkv.metrics.v1\",\n";

    out += "  \"counters\": {";
    for (size_t i = 0; i < counters.size(); ++i) {
        out += i ? ",\n    \"" : "\n    \"";
        appendEscaped(out, counters[i].first);
        out += "\": ";
        appendU64(out, counters[i].second);
    }
    out += counters.empty() ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    for (size_t i = 0; i < gauges.size(); ++i) {
        out += i ? ",\n    \"" : "\n    \"";
        appendEscaped(out, gauges[i].first);
        out += "\": ";
        appendI64(out, gauges[i].second);
    }
    out += gauges.empty() ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    for (size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSnapshot &h = histograms[i];
        out += i ? ",\n    \"" : "\n    \"";
        appendEscaped(out, h.name);
        out += "\": {\"count\": ";
        appendU64(out, h.count);
        out += ", \"sum\": ";
        appendU64(out, h.sum);
        out += ", \"min\": ";
        appendU64(out, h.min);
        out += ", \"max\": ";
        appendU64(out, h.max);
        out += ", \"mean\": ";
        appendDouble(out, h.mean());
        out += ", \"p50\": ";
        appendU64(out, h.percentile(0.50));
        out += ", \"p90\": ";
        appendU64(out, h.percentile(0.90));
        out += ", \"p99\": ";
        appendU64(out, h.percentile(0.99));
        out += ", \"p999\": ";
        appendU64(out, h.percentile(0.999));
        out += "}";
    }
    out += histograms.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

void
MetricsSnapshot::printTable(std::FILE *out) const
{
    if (!out)
        out = stdout;
    if (!counters.empty()) {
        std::fprintf(out, "%-42s %14s\n", "counter", "value");
        for (const auto &[name, value] : counters)
            std::fprintf(out, "%-42s %14" PRIu64 "\n",
                         name.c_str(), value);
    }
    if (!gauges.empty()) {
        std::fprintf(out, "%-42s %14s\n", "gauge", "value");
        for (const auto &[name, value] : gauges)
            std::fprintf(out, "%-42s %14" PRId64 "\n",
                         name.c_str(), value);
    }
    if (histograms.empty())
        return;
    std::fprintf(out, "%-42s %10s %10s %10s %10s %10s %10s\n",
                 "histogram", "count", "mean", "p50", "p90", "p99",
                 "p99.9");
    for (const HistogramSnapshot &h : histograms) {
        if (h.count == 0)
            continue;
        if (isNanoHistogram(h.name)) {
            std::fprintf(
                out,
                "%-42s %10" PRIu64 " %10s %10s %10s %10s %10s\n",
                h.name.c_str(), h.count,
                formatNanos(h.mean()).c_str(),
                formatNanos(static_cast<double>(
                                h.percentile(0.50)))
                    .c_str(),
                formatNanos(static_cast<double>(
                                h.percentile(0.90)))
                    .c_str(),
                formatNanos(static_cast<double>(
                                h.percentile(0.99)))
                    .c_str(),
                formatNanos(static_cast<double>(
                                h.percentile(0.999)))
                    .c_str());
        } else {
            std::fprintf(
                out,
                "%-42s %10" PRIu64 " %10.1f %10" PRIu64
                " %10" PRIu64 " %10" PRIu64 " %10" PRIu64 "\n",
                h.name.c_str(), h.count, h.mean(),
                h.percentile(0.50), h.percentile(0.90),
                h.percentile(0.99), h.percentile(0.999));
        }
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MutexLock lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace_back(name, counter->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.emplace_back(name, gauge->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, hist] : histograms_)
        snap.histograms.push_back(hist->snapshot(name));
    // Synthesize percentile gauges from the same histogram copies
    // so downstream tooling never re-derives quantiles from raw
    // buckets (and cannot disagree with this snapshot).
    for (const HistogramSnapshot &h : snap.histograms) {
        if (h.count == 0)
            continue;
        snap.gauges.emplace_back(
            h.name + ".p50",
            static_cast<int64_t>(h.percentile(0.50)));
        snap.gauges.emplace_back(
            h.name + ".p99",
            static_cast<int64_t>(h.percentile(0.99)));
        snap.gauges.emplace_back(
            h.name + ".p999",
            static_cast<int64_t>(h.percentile(0.999)));
    }
    return snap;
}

std::string
MetricsRegistry::toJson() const
{
    return snapshot().toJson();
}

void
MetricsRegistry::printTable(std::FILE *out) const
{
    snapshot().printTable(out);
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, hist] : histograms_)
        hist->reset();
}

Status
writeMetricsJson(const MetricsRegistry &registry,
                 const std::string &path)
{
    std::string json = registry.toJson();
    return Env::defaultEnv()->writeStringToFile(path, json,
                                                /*sync=*/false);
}

std::string
consumeMetricsOutFlag(int *argc, char **argv)
{
    std::string path;
    const char *env = std::getenv("ETHKV_METRICS_OUT");
    if (env)
        path = env;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--metrics-out") == 0 &&
            i + 1 < *argc) {
            path = argv[++i];
            continue;
        }
        if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
            path = arg + 14;
            continue;
        }
        argv[out++] = argv[i];
    }
    argv[out] = nullptr;
    *argc = out;
    return path;
}

namespace
{
std::string exit_dump_path; // NOLINT: written once before atexit
}

void
installExitDump(const std::string &path)
{
    if (path.empty())
        return;
    bool first = exit_dump_path.empty();
    exit_dump_path = path;
    if (!first)
        return;
    // Touch the registry BEFORE registering the handler: statics
    // destruct in LIFO order with atexit callbacks, so the registry
    // must be constructed first to still be alive when the dump
    // runs.
    MetricsRegistry::global();
    std::atexit([] {
        Status s = writeMetricsJson(MetricsRegistry::global(),
                                    exit_dump_path);
        if (!s.isOk())
            warn("metrics dump failed: %s", s.toString().c_str());
        else
            inform("metrics snapshot written to %s",
                   exit_dump_path.c_str());
    });
}

} // namespace ethkv::obs
