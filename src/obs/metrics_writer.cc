#include "obs/metrics_writer.hh"

#include <chrono>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/scoped_timer.hh"

namespace ethkv::obs
{

PeriodicMetricsWriter::PeriodicMetricsWriter(Options options)
    : options_(std::move(options))
{
    if (!options_.registry)
        options_.registry = &MetricsRegistry::global();
    if (!options_.env)
        options_.env = Env::defaultEnv();
    if (options_.interval_ms == 0)
        options_.interval_ms = 1000;
}

PeriodicMetricsWriter::~PeriodicMetricsWriter() { stop(); }

void
PeriodicMetricsWriter::start()
{
    if (options_.path.empty() || running_)
        return;
    running_ = true;
    thread_ = std::thread([this] { loop(); });
}

void
PeriodicMetricsWriter::stop()
{
    if (!running_)
        return;
    {
        MutexLock lock(mutex_);
        stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    running_ = false;
}

std::string
PeriodicMetricsWriter::renderOnce(uint64_t elapsed_ms)
{
    MetricsSnapshot cur = options_.registry->snapshot();
    double seconds =
        static_cast<double>(elapsed_ms ? elapsed_ms : 1) / 1000.0;

    JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value("ethkv.metrics.live.v1");
    w.key("seq");
    w.value(seq_++);
    w.key("interval_ms");
    w.value(elapsed_ms);

    // Counter increments since the previous tick, and the same as
    // per-second rates. A counter absent from the previous
    // snapshot (created mid-run) counts from zero.
    w.key("deltas");
    w.beginObject();
    for (const auto &[name, value] : cur.counters) {
        uint64_t before = 0;
        if (have_prev_) {
            const uint64_t *p = prev_.findCounter(name);
            if (p)
                before = *p;
        }
        uint64_t delta = value >= before ? value - before : 0;
        w.key(name);
        w.value(delta);
    }
    w.endObject();

    w.key("rates_per_sec");
    w.beginObject();
    for (const auto &[name, value] : cur.counters) {
        uint64_t before = 0;
        if (have_prev_) {
            const uint64_t *p = prev_.findCounter(name);
            if (p)
                before = *p;
        }
        uint64_t delta = value >= before ? value - before : 0;
        w.key(name);
        w.value(static_cast<double>(delta) / seconds);
    }
    for (const HistogramSnapshot &h : cur.histograms) {
        uint64_t before = 0;
        if (have_prev_) {
            const HistogramSnapshot *p =
                prev_.findHistogram(h.name);
            if (p)
                before = p->count;
        }
        uint64_t delta = h.count >= before ? h.count - before : 0;
        w.key(h.name + ".samples");
        w.value(static_cast<double>(delta) / seconds);
    }
    w.endObject();

    w.key("metrics");
    w.rawValue(cur.toJson());
    w.endObject();

    prev_ = std::move(cur);
    have_prev_ = true;
    std::string out = w.take();
    out += "\n";
    return out;
}

Status
PeriodicMetricsWriter::writeFile(const std::string &doc)
{
    std::string tmp = options_.path + ".tmp";
    Status s =
        options_.env->writeStringToFile(tmp, doc, /*sync=*/false);
    if (!s.isOk())
        return s;
    return options_.env->renameFile(tmp, options_.path);
}

void
PeriodicMetricsWriter::loop()
{
    auto last = std::chrono::steady_clock::now();
    while (true) {
        bool stopping = false;
        {
            std::unique_lock<std::mutex> lock(mutex_.native());
            cv_.wait_for(
                lock,
                std::chrono::milliseconds(options_.interval_ms),
                [this]() NO_THREAD_SAFETY_ANALYSIS {
                    return stop_requested_;
                });
            stopping = stop_requested_;
        }
        auto now = std::chrono::steady_clock::now();
        uint64_t elapsed_ms = static_cast<uint64_t>(
            std::chrono::duration_cast<
                std::chrono::milliseconds>(now - last)
                .count());
        last = now;
        std::string doc = renderOnce(elapsed_ms);
        Status s = writeFile(doc);
        if (!s.isOk())
            warn("metrics writer: %s", s.toString().c_str());
        if (stopping)
            return;
    }
}

} // namespace ethkv::obs
