#include "obs/trace_event.hh"

#include <cinttypes>
#include <cstdio>

#include "common/env.hh"
#include "obs/scoped_timer.hh"

namespace ethkv::obs
{

TraceEventLog::TraceEventLog() : epoch_ns_(nowNanos()) {}

uint64_t
TraceEventLog::nowUs() const
{
    return (nowNanos() - epoch_ns_) / 1000;
}

void
TraceEventLog::addSpan(const std::string &name,
                       const std::string &category,
                       uint64_t start_us, uint64_t duration_us)
{
    MutexLock lock(mutex_);
    spans_.push_back(
        {name, category, start_us, duration_us, 0, false});
}

void
TraceEventLog::addSpan(const std::string &name,
                       const std::string &category,
                       uint64_t start_us, uint64_t duration_us,
                       uint64_t arg_value)
{
    MutexLock lock(mutex_);
    spans_.push_back(
        {name, category, start_us, duration_us, arg_value, true});
}

size_t
TraceEventLog::size() const
{
    MutexLock lock(mutex_);
    return spans_.size();
}

std::string
TraceEventLog::toJson() const
{
    MutexLock lock(mutex_);
    std::string out = "[";
    char buf[256];
    for (size_t i = 0; i < spans_.size(); ++i) {
        const Span &span = spans_[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n{\"name\":\"%s\",\"cat\":\"%s\","
                      "\"ph\":\"X\",\"pid\":1,\"tid\":1,"
                      "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64,
                      i ? "," : "", span.name.c_str(),
                      span.category.c_str(), span.start_us,
                      span.duration_us);
        out += buf;
        if (span.has_arg) {
            std::snprintf(buf, sizeof(buf),
                          ",\"args\":{\"block\":%" PRIu64 "}",
                          span.arg_value);
            out += buf;
        }
        out += "}";
    }
    out += "\n]\n";
    return out;
}

Status
TraceEventLog::writeTo(const std::string &path) const
{
    std::string json = toJson();
    return Env::defaultEnv()->writeStringToFile(path, json,
                                                /*sync=*/false);
}

ScopedSpan::ScopedSpan(TraceEventLog *log, const char *name,
                       const char *category)
    : log_(log), name_(name), category_(category),
      start_us_(log ? log->nowUs() : 0)
{}

ScopedSpan::~ScopedSpan()
{
    if (!log_)
        return;
    uint64_t duration = log_->nowUs() - start_us_;
    if (has_arg_)
        log_->addSpan(name_, category_, start_us_, duration,
                      arg_value_);
    else
        log_->addSpan(name_, category_, start_us_, duration);
}

void
ScopedSpan::setArg(uint64_t value)
{
    arg_value_ = value;
    has_arg_ = true;
}

} // namespace ethkv::obs
