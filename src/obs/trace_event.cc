#include "obs/trace_event.hh"

#include <cinttypes>
#include <cstdio>

#include "common/env.hh"
#include "obs/json.hh"
#include "obs/scoped_timer.hh"

namespace ethkv::obs
{

TraceEventLog::TraceEventLog()
    : max_spans_(0), epoch_ns_(nowNanos())
{}

TraceEventLog::TraceEventLog(bool absolute_clock, size_t max_spans)
    : max_spans_(max_spans),
      epoch_ns_(absolute_clock ? 0 : nowNanos())
{}

uint64_t
TraceEventLog::nowUs() const
{
    return (nowNanos() - epoch_ns_) / 1000;
}

void
TraceEventLog::addSpan(const std::string &name,
                       const std::string &category,
                       uint64_t start_us, uint64_t duration_us)
{
    Span span;
    span.name = name;
    span.category = category;
    span.start_us = start_us;
    span.duration_us = duration_us;
    addSpanFull(span);
}

void
TraceEventLog::addSpan(const std::string &name,
                       const std::string &category,
                       uint64_t start_us, uint64_t duration_us,
                       uint64_t arg_value)
{
    Span span;
    span.name = name;
    span.category = category;
    span.start_us = start_us;
    span.duration_us = duration_us;
    span.arg_value = arg_value;
    span.has_arg = true;
    addSpanFull(span);
}

void
TraceEventLog::addSpanFull(const Span &span)
{
    MutexLock lock(mutex_);
    if (max_spans_ && spans_.size() >= max_spans_) {
        ++dropped_;
        return;
    }
    spans_.push_back(span);
}

void
TraceEventLog::setProcessLabel(uint32_t pid,
                               const std::string &name)
{
    MutexLock lock(mutex_);
    for (auto &[existing_pid, existing_name] : process_labels_) {
        if (existing_pid == pid) {
            existing_name = name;
            return;
        }
    }
    process_labels_.emplace_back(pid, name);
}

size_t
TraceEventLog::size() const
{
    MutexLock lock(mutex_);
    return spans_.size();
}

uint64_t
TraceEventLog::dropped() const
{
    MutexLock lock(mutex_);
    return dropped_;
}

std::string
TraceEventLog::toJson() const
{
    MutexLock lock(mutex_);
    std::string out = "[";
    char buf[256];
    size_t emitted = 0;
    for (const auto &[pid, name] : process_labels_) {
        std::snprintf(buf, sizeof(buf),
                      "%s\n{\"name\":\"process_name\","
                      "\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                      "\"args\":{\"name\":\"",
                      emitted++ ? "," : "", pid);
        out += buf;
        appendJsonEscaped(out, name);
        out += "\"}}";
    }
    for (const Span &span : spans_) {
        out += emitted++ ? ",\n{\"name\":\"" : "\n{\"name\":\"";
        appendJsonEscaped(out, span.name);
        out += "\",\"cat\":\"";
        appendJsonEscaped(out, span.category);
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
                      "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64,
                      span.pid, span.tid, span.start_us,
                      span.duration_us);
        out += buf;
        if (span.has_arg) {
            out += ",\"args\":{\"";
            appendJsonEscaped(out, span.arg_name);
            std::snprintf(buf, sizeof(buf),
                          "\":%" PRIu64 "}", span.arg_value);
            out += buf;
        }
        out += "}";
    }
    out += "\n]\n";
    return out;
}

Status
TraceEventLog::writeTo(const std::string &path) const
{
    std::string json = toJson();
    return Env::defaultEnv()->writeStringToFile(path, json,
                                                /*sync=*/false);
}

namespace
{

/** Contents of a top-level JSON array, "" when not one. */
std::string_view
arrayBody(const std::string &json)
{
    size_t begin = json.find_first_not_of(" \t\r\n");
    size_t end = json.find_last_not_of(" \t\r\n");
    if (begin == std::string::npos || json[begin] != '[' ||
        json[end] != ']' || end <= begin)
        return {};
    std::string_view body(json.data() + begin + 1,
                          end - begin - 1);
    while (!body.empty() &&
           (body.front() == '\n' || body.front() == ' '))
        body.remove_prefix(1);
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == ' '))
        body.remove_suffix(1);
    return body;
}

} // namespace

std::string
mergeTraceJson(const std::string &a, const std::string &b)
{
    std::string_view body_a = arrayBody(a);
    std::string_view body_b = arrayBody(b);
    std::string out = "[";
    out += "\n";
    out += body_a;
    if (!body_a.empty() && !body_b.empty())
        out += ",\n";
    out += body_b;
    out += "\n]\n";
    return out;
}

ScopedSpan::ScopedSpan(TraceEventLog *log, const char *name,
                       const char *category)
    : log_(log), name_(name), category_(category),
      start_us_(log ? log->nowUs() : 0)
{}

ScopedSpan::~ScopedSpan()
{
    if (!log_)
        return;
    TraceEventLog::Span span;
    span.name = name_;
    span.category = category_;
    span.start_us = start_us_;
    span.duration_us = log_->nowUs() - start_us_;
    span.arg_value = arg_value_;
    span.has_arg = has_arg_;
    span.arg_name = arg_name_;
    span.tid = tid_;
    span.pid = pid_;
    log_->addSpanFull(span);
}

void
ScopedSpan::setArg(uint64_t value)
{
    arg_value_ = value;
    has_arg_ = true;
}

void
ScopedSpan::setArg(const char *name, uint64_t value)
{
    arg_name_ = name;
    arg_value_ = value;
    has_arg_ = true;
}

void
ScopedSpan::setTrack(uint32_t pid, uint32_t tid)
{
    pid_ = pid;
    tid_ = tid;
}

} // namespace ethkv::obs
