/**
 * @file
 * Lock-free ring of the most recent slow requests.
 *
 * ethkvd records one fixed-size SlowOpRecord per request whose
 * server-side time exceeds --slow-op-micros; the ring keeps the
 * last `capacity` of them for SIGUSR1 dumps and the SLOWLOG wire
 * op. The write path is wait-free in the common case: claim a slot
 * index with one fetch_add, then publish through a per-slot
 * sequence word (even = stable, odd = being written). A writer
 * that loses the CAS on a contended slot drops its record rather
 * than spin — this is a diagnostic buffer, not an audit log, and
 * the drop counter says how often it happened.
 */

#ifndef ETHKV_OBS_SLOW_OP_LOG_HH
#define ETHKV_OBS_SLOW_OP_LOG_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ethkv::obs
{

/** One slow request, fixed size so slot publication can't tear
 *  across allocations. */
struct SlowOpRecord
{
    uint64_t start_us = 0;  //!< Monotonic clock, microseconds.
    uint64_t trace_id = 0;  //!< 0 when the frame carried none.
    uint64_t total_ns = 0;  //!< decode + exec + encode.
    uint64_t exec_ns = 0;
    uint64_t decode_ns = 0;
    uint64_t encode_ns = 0;
    uint32_t request_bytes = 0;
    uint32_t response_bytes = 0;
    uint16_t worker = 0;
    uint8_t opcode = 0;
    uint8_t wire_status = 0;
};

class SlowOpLog
{
  public:
    explicit SlowOpLog(size_t capacity = 256);

    SlowOpLog(const SlowOpLog &) = delete;
    SlowOpLog &operator=(const SlowOpLog &) = delete;

    /** Lock-free; drops the record on per-slot contention. */
    void record(const SlowOpRecord &rec);

    size_t capacity() const { return slots_.size(); }

    /** Total records accepted (not a ring occupancy count). */
    uint64_t
    recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** Records dropped to slot contention. */
    uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Stable copy, newest first; torn slots are skipped. */
    std::vector<SlowOpRecord> snapshot() const;

    /** snapshot() rendered as a JSON document (schema
     *  ethkv.slowops.v1). */
    std::string toJson() const;

  private:
    struct Slot
    {
        std::atomic<uint64_t> seq{0};
        SlowOpRecord rec;
    };

    std::vector<Slot> slots_;
    std::atomic<uint64_t> head_{0};
    std::atomic<uint64_t> recorded_{0};
    std::atomic<uint64_t> dropped_{0};
};

} // namespace ethkv::obs

#endif // ETHKV_OBS_SLOW_OP_LOG_HH
