/**
 * @file
 * ethkvd — the ethkv network server.
 *
 * Serves any engine from the stack over the ethkv.wire.v1 protocol:
 *
 *   ethkvd --engine hybrid --port 7070 --workers 4
 *   ethkvd --engine log --dir /tmp/d --sync --port 0 \
 *          --port-file /tmp/d/port
 *
 * Engines without internal locking (mem, hash, btree, log) are
 * wrapped in kv::LockedKVStore; lsm, hybrid, and cached lock
 * internally (the LSM engine additionally runs its own background
 * maintenance thread, so serving it bare keeps connections from
 * serializing behind flushes and compactions).
 * --port 0 binds an ephemeral port; --port-file writes the bound
 * port for test harnesses to discover. --env fault serves the
 * durable engines through a FaultInjectionEnv so fault drills can
 * exercise degraded mode end to end. SIGINT/SIGTERM trigger a
 * graceful shutdown that flushes the engine before exit, so every
 * acknowledged synced write survives. --metrics-out dumps the
 * process-global registry (ethkv.metrics.v1) at exit.
 *
 * Observability (DESIGN.md §11): --trace <path> records the request
 * pipeline as Chrome trace_event spans and writes them at exit (and
 * on SIGUSR1); --slow-op-micros keeps a ring of the slowest
 * requests, dumped to stderr on SIGUSR1 and queryable over the wire
 * (SLOWLOG); --metrics-interval streams live metric snapshots with
 * deltas and rates to --metrics-file for dashboards (ethkv_mon).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cachetier/cache_tier.hh"
#include "cachetier/prefetcher.hh"
#include "common/env.hh"
#include "common/fault_env.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "core/hybrid_store.hh"
#include "client/class_cache.hh"
#include "kvstore/btree_store.hh"
#include "kvstore/hash_store.hh"
#include "kvstore/locked_store.hh"
#include "kvstore/log_store.hh"
#include "kvstore/lsm_store.hh"
#include "kvstore/mem_store.hh"
#include "kvstore/instrumented_store.hh"
#include "kvstore/sharded_store.hh"
#include "obs/metrics.hh"
#include "obs/metrics_writer.hh"
#include "obs/slow_op_log.hh"
#include "obs/trace_event.hh"
#include "server/net_socket.hh"
#include "server/replication.hh"
#include "server/server.hh"

namespace
{

using namespace ethkv;

//! eventfd the signal handlers poke; main blocks on it.
int g_shutdown_fd = -1;
//! Which signal woke us: shutdown vs dump-and-keep-running.
volatile std::sig_atomic_t g_got_term = 0;
volatile std::sig_atomic_t g_got_usr1 = 0;

extern "C" void
onSignal(int)
{
    // Async-signal-safe: a flag plus one write(2) on an eventfd.
    g_got_term = 1;
    server::net::signalEventFd(g_shutdown_fd);
}

extern "C" void
onUsr1(int)
{
    g_got_usr1 = 1;
    server::net::signalEventFd(g_shutdown_fd);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --engine <mem|hash|btree|log|lsm|hybrid|cached>"
        "  (default hybrid)\n"
        "  --host <ipv4>            bind address"
        " (default 127.0.0.1)\n"
        "  --port <n>               0 = ephemeral (default 7070)\n"
        "  --port-file <path>       write the bound port here\n"
        "  --workers <n>            event-loop threads"
        " (default 4)\n"
        "  --dir <path>             data dir (durable log/lsm)\n"
        "  --sync                   fdatasync per acked write\n"
        "  --env <posix|fault>      filesystem env (default"
        " posix)\n"
        "  --fault-seed <n>         FaultInjectionEnv seed\n"
        "  --checkpoint-wal-bytes <n>  log engine WAL checkpoint"
        " threshold (0 = off)\n"
        "  --memtable-bytes <n>     lsm memtable seal threshold"
        " (0 = default)\n"
        "  --shards <n>             hash-partition the engine"
        " across n independent shards (per-shard WAL/manifest/"
        "maintenance for lsm; default 1)\n"
        "  --pin-cores              pin worker thread i to CPU"
        " i mod cores\n"
        "  --max-frame-bytes <n>    per-frame payload cap\n"
        "  --scan-limit <n>         server-side SCAN cap\n"
        "  --scan-byte-budget <n>   SCAN response byte cap"
        " (0 = auto)\n"
        "  --metrics-out <path>     dump ethkv.metrics.v1 JSON at"
        " exit\n"
        "  --trace <path|off>       write Chrome trace_event JSON"
        " at exit / SIGUSR1\n"
        "  --trace-sample-shift <n> trace 1-in-2^n untraced"
        " requests (default 4)\n"
        "  --stage-sample-shift <n> stage histograms time"
        " 1-in-2^n requests (default 4)\n"
        "  --slow-op-micros <n>     ring-log requests slower than"
        " n us; -1 = off (default 1000)\n"
        "  --slow-op-capacity <n>   slow-op ring size"
        " (default 256)\n"
        "  --metrics-interval <ms>  live snapshot period; 0 = off\n"
        "  --metrics-file <path>    live snapshot destination\n"
        "  --repl                   replicate: keep a shipping log,"
        " accept SUBSCRIBE\n"
        "  --follower-of <h:p>      start as a follower of the"
        " primary at h:p\n"
        "  --repl-sync              hold mutation acks until every"
        " live follower acked\n"
        "  --repl-segment-bytes <n> replication log segment size\n"
        "  --repl-ack-timeout-ms <n> sync-ack fail-open deadline"
        " (default 5000)\n"
        "  --conn-idle-timeout-ms <n> close idle connections;"
        " 0 = never (default)\n"
        "  --cache-tier-bytes <n>   server-tier read cache budget;"
        " 0 = off (default)\n"
        "  --cache-shards <n>       cache tier shard count"
        " (default 16)\n"
        "  --prefetch-k <n>         correlated keys prefetched per"
        " miss; 0 = off (default 4)\n"
        "  --corr-table <path>      static correlation table for"
        " the prefetcher (hex key + followers per line;"
        " omit to mine online)\n"
        "\n"
        "SIGUSR1 dumps the slow-op log to stderr and rewrites the"
        " --trace file.\n",
        argv0);
}

/** Owns whichever engine stack --engine selected. */
struct EngineStack
{
    std::unique_ptr<FaultInjectionEnv> fault_env;
    std::unique_ptr<kv::KVStore> base;      //!< The engine itself.
    std::unique_ptr<kv::KVStore> wrapper;   //!< Lock or cache shim.
    kv::KVStore *serve = nullptr;           //!< What ethkvd serves.
};

struct Flags
{
    std::string engine = "hybrid";
    std::string host = "127.0.0.1";
    int port = 7070;
    std::string port_file;
    int workers = 4;
    std::string dir;
    bool sync = false;
    std::string env_kind = "posix";
    uint64_t fault_seed = 1;
    uint64_t checkpoint_wal_bytes = 0;
    uint64_t memtable_bytes = 0;
    int shards = 1;
    bool pin_cores = false;
    size_t max_frame_bytes = server::kDefaultMaxFrameBytes;
    uint64_t scan_limit = 4096;
    uint64_t scan_byte_budget = 0;
    std::string trace_path;
    int trace_sample_shift = 4;
    int stage_sample_shift = 4;
    int64_t slow_op_micros = 1000;
    uint64_t slow_op_capacity = 256;
    uint64_t metrics_interval_ms = 0;
    std::string metrics_file;
    bool repl = false;
    std::string follower_host;
    uint16_t follower_port = 0;
    bool repl_sync = false;
    uint64_t repl_segment_bytes = 0;
    int repl_ack_timeout_ms = 5000;
    int conn_idle_timeout_ms = 0;
    uint64_t cache_tier_bytes = 0;
    uint32_t cache_shards = 16;
    int prefetch_k = 4;
    std::string corr_table;
};

bool
parseFlags(int argc, char **argv, Flags &f)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", what);
            return argv[++i];
        };
        if (arg == "--engine") {
            f.engine = next("--engine");
        } else if (arg == "--host") {
            f.host = next("--host");
        } else if (arg == "--port") {
            f.port = std::atoi(next("--port"));
        } else if (arg == "--port-file") {
            f.port_file = next("--port-file");
        } else if (arg == "--workers") {
            f.workers = std::atoi(next("--workers"));
        } else if (arg == "--dir") {
            f.dir = next("--dir");
        } else if (arg == "--sync") {
            f.sync = true;
        } else if (arg == "--env") {
            f.env_kind = next("--env");
        } else if (arg == "--fault-seed") {
            f.fault_seed = std::strtoull(
                next("--fault-seed"), nullptr, 10);
        } else if (arg == "--checkpoint-wal-bytes") {
            f.checkpoint_wal_bytes = std::strtoull(
                next("--checkpoint-wal-bytes"), nullptr, 10);
        } else if (arg == "--memtable-bytes") {
            f.memtable_bytes = std::strtoull(
                next("--memtable-bytes"), nullptr, 10);
        } else if (arg == "--shards") {
            f.shards = std::atoi(next("--shards"));
        } else if (arg == "--pin-cores") {
            f.pin_cores = true;
        } else if (arg == "--max-frame-bytes") {
            f.max_frame_bytes = std::strtoull(
                next("--max-frame-bytes"), nullptr, 10);
        } else if (arg == "--scan-limit") {
            f.scan_limit = std::strtoull(next("--scan-limit"),
                                         nullptr, 10);
        } else if (arg == "--scan-byte-budget") {
            f.scan_byte_budget = std::strtoull(
                next("--scan-byte-budget"), nullptr, 10);
        } else if (arg == "--trace") {
            f.trace_path = next("--trace");
            if (f.trace_path == "off")
                f.trace_path.clear();
        } else if (arg == "--trace-sample-shift") {
            f.trace_sample_shift =
                std::atoi(next("--trace-sample-shift"));
        } else if (arg == "--stage-sample-shift") {
            f.stage_sample_shift =
                std::atoi(next("--stage-sample-shift"));
        } else if (arg == "--slow-op-micros") {
            f.slow_op_micros = std::strtoll(
                next("--slow-op-micros"), nullptr, 10);
        } else if (arg == "--slow-op-capacity") {
            f.slow_op_capacity = std::strtoull(
                next("--slow-op-capacity"), nullptr, 10);
        } else if (arg == "--metrics-interval") {
            f.metrics_interval_ms = std::strtoull(
                next("--metrics-interval"), nullptr, 10);
        } else if (arg == "--metrics-file") {
            f.metrics_file = next("--metrics-file");
        } else if (arg == "--repl") {
            f.repl = true;
        } else if (arg == "--follower-of") {
            std::string hp = next("--follower-of");
            size_t colon = hp.rfind(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 >= hp.size())
                fatal("--follower-of wants host:port, got %s",
                      hp.c_str());
            f.follower_host = hp.substr(0, colon);
            f.follower_port = static_cast<uint16_t>(
                std::atoi(hp.c_str() + colon + 1));
        } else if (arg == "--repl-sync") {
            f.repl_sync = true;
        } else if (arg == "--repl-segment-bytes") {
            f.repl_segment_bytes = std::strtoull(
                next("--repl-segment-bytes"), nullptr, 10);
        } else if (arg == "--repl-ack-timeout-ms") {
            f.repl_ack_timeout_ms =
                std::atoi(next("--repl-ack-timeout-ms"));
        } else if (arg == "--conn-idle-timeout-ms") {
            f.conn_idle_timeout_ms =
                std::atoi(next("--conn-idle-timeout-ms"));
        } else if (arg == "--cache-tier-bytes") {
            f.cache_tier_bytes = std::strtoull(
                next("--cache-tier-bytes"), nullptr, 10);
        } else if (arg == "--cache-shards") {
            f.cache_shards = static_cast<uint32_t>(std::strtoul(
                next("--cache-shards"), nullptr, 10));
        } else if (arg == "--prefetch-k") {
            f.prefetch_k = std::atoi(next("--prefetch-k"));
        } else if (arg == "--corr-table") {
            f.corr_table = next("--corr-table");
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return false;
        }
    }
    return true;
}

Status
buildEngine(const Flags &f, obs::TraceEventLog *trace_log,
            EngineStack &stack)
{
    Env *env = Env::defaultEnv();
    if (f.env_kind == "fault") {
        stack.fault_env = std::make_unique<FaultInjectionEnv>(
            env, f.fault_seed);
        env = stack.fault_env.get();
    } else if (f.env_kind != "posix") {
        return Status::invalidArgument("unknown --env " +
                                       f.env_kind);
    }
    if (!f.dir.empty()) {
        Status s = env->createDirs(f.dir);
        if (!s.isOk())
            return s;
    }

    if (f.shards < 1 || f.shards > 256)
        return Status::invalidArgument(
            "--shards must be in [1, 256]");
    const bool sharded = f.shards > 1;
    if (sharded && !f.dir.empty() &&
        (f.engine == "lsm" || f.engine == "log")) {
        // Reopening a durable dir with a different shard count
        // would silently misroute every key; the marker refuses.
        Status s = kv::ShardedKVStore::checkShardMarker(
            env, f.dir, static_cast<uint32_t>(f.shards));
        if (!s.isOk())
            return s;
    }

    // Builds one engine instance rooted at `dir` (ignored by the
    // in-memory engines). Sets `internally_locked` when the
    // instance is safe for concurrent callers on its own.
    // `tl` is the trace sink — for a sharded lsm only shard 0
    // gets it, because maintenance spans use a fixed track id and
    // N shards sharing one track would interleave illegibly.
    auto make_one = [&](const std::string &dir,
                        obs::TraceEventLog *tl,
                        std::unique_ptr<kv::KVStore> &out,
                        bool &internally_locked) -> Status {
        internally_locked = false;
        if (f.engine == "mem") {
            out = std::make_unique<kv::MemStore>();
        } else if (f.engine == "hash") {
            out = std::make_unique<kv::HashStore>();
        } else if (f.engine == "btree") {
            out = std::make_unique<kv::BTreeStore>();
        } else if (f.engine == "log") {
            kv::LogStoreOptions log_options;
            log_options.dir = dir;
            log_options.sync_appends = f.sync;
            log_options.env = env;
            log_options.checkpoint_wal_bytes =
                f.checkpoint_wal_bytes;
            auto store = kv::AppendLogStore::open(log_options);
            if (!store.ok())
                return store.status();
            out = store.take();
        } else if (f.engine == "lsm") {
            if (f.dir.empty())
                return Status::invalidArgument(
                    "--engine lsm needs --dir");
            kv::LSMOptions options;
            options.dir = dir;
            options.sync_wal = f.sync;
            options.env = env;
            options.trace_log = tl;
            if (f.memtable_bytes > 0)
                options.memtable_bytes = f.memtable_bytes;
            auto store = kv::LSMStore::open(options);
            if (!store.ok())
                return store.status();
            out = store.take();
            // LSMStore is internally thread-safe with background
            // maintenance; serving it bare keeps worker threads
            // from serializing behind flushes and compactions.
            internally_locked = true;
        } else if (f.engine == "hybrid" ||
                   f.engine == "cached") {
            // The hybrid router locks internally (per-route
            // shards); its engines are in-memory (log dir is
            // ignored there).
            core::HybridKVStore::Options options;
            out = std::make_unique<core::HybridKVStore>(options);
            internally_locked = true;
        } else {
            return Status::invalidArgument("unknown --engine " +
                                           f.engine);
        }
        return Status::ok();
    };

    bool internally_locked = false;
    if (!sharded) {
        Status s = make_one(f.dir, trace_log, stack.base,
                            internally_locked);
        if (!s.isOk())
            return s;
    } else {
        // Sharded engine (DESIGN.md §15): N independent instances
        // behind a hash-partitioning router. Each durable shard
        // owns a subdirectory — its own WAL, manifest, and (lsm)
        // maintenance thread.
        std::vector<std::unique_ptr<kv::KVStore>> shards;
        shards.reserve(static_cast<size_t>(f.shards));
        for (int i = 0; i < f.shards; ++i) {
            std::string sdir;
            if (!f.dir.empty()) {
                sdir = f.dir + "/shard-" + std::to_string(i);
                Status s = env->createDirs(sdir);
                if (!s.isOk())
                    return s;
            }
            std::unique_ptr<kv::KVStore> one;
            Status s = make_one(
                sdir, i == 0 ? trace_log : nullptr, one,
                internally_locked);
            if (!s.isOk())
                return s;
            shards.push_back(std::move(one));
        }
        kv::ShardedOptions sopts;
        sopts.lock_shards = !internally_locked;
        stack.base = std::make_unique<kv::ShardedKVStore>(
            std::move(shards), sopts);
        // The router's data path is lock-free and the shards are
        // (made) thread-safe, so the stack never needs the big
        // outer lock.
        internally_locked = true;
    }

    if (f.engine == "cached") {
        stack.wrapper = std::make_unique<client::CachingKVStore>(
            *stack.base, client::CacheConfig{});
    } else if (!internally_locked) {
        stack.wrapper =
            std::make_unique<kv::LockedKVStore>(*stack.base);
    }
    stack.serve =
        stack.wrapper ? stack.wrapper.get() : stack.base.get();
    return Status::ok();
}

/** Write the trace log as Chrome trace JSON (tmp + rename). */
void
writeTraceFile(const obs::TraceEventLog &log,
               const std::string &path)
{
    if (path.empty())
        return;
    Env *env = Env::defaultEnv();
    std::string tmp = path + ".tmp";
    Status s =
        env->writeStringToFile(tmp, log.toJson(), /*sync=*/false);
    if (s.isOk())
        s = env->renameFile(tmp, path);
    if (!s.isOk()) {
        warn("ethkvd: trace write to %s failed: %s", path.c_str(),
             s.toString().c_str());
        return;
    }
    inform("ethkvd: wrote %zu trace spans to %s (%llu dropped)",
           log.size(), path.c_str(),
           static_cast<unsigned long long>(log.dropped()));
}

/** SIGUSR1 handler body: slow-op log to stderr, trace to disk. */
void
dumpDiagnostics(const server::Server &srv,
                const obs::TraceEventLog *trace_log,
                const std::string &trace_path)
{
    if (const obs::SlowOpLog *slow = srv.slowOpLog()) {
        std::string doc = slow->toJson();
        doc.push_back('\n');
        std::fputs(doc.c_str(), stderr);
        std::fflush(stderr);
    } else {
        warn("ethkvd: SIGUSR1 but --slow-op-micros is off");
    }
    if (trace_log != nullptr)
        writeTraceFile(*trace_log, trace_path);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string metrics_out =
        obs::consumeMetricsOutFlag(&argc, argv);
    Flags flags;
    if (!parseFlags(argc, argv, flags))
        return 2;
    obs::installExitDump(metrics_out);

    // Absolute-clock log: spans line up with tracing clients when
    // merged. ~64k spans caps a long run at a few MB of trace.
    std::unique_ptr<obs::TraceEventLog> trace_log;
    if (!flags.trace_path.empty()) {
        trace_log = std::make_unique<obs::TraceEventLog>(
            /*absolute_clock=*/true, /*max_spans=*/65536);
        trace_log->setProcessLabel(1, "ethkvd");
    }

    EngineStack stack;
    buildEngine(flags, trace_log.get(), stack)
        .expectOk("engine setup");

    // Replication (DESIGN.md §13): the hub owns the shipping log
    // and wraps the engine so "apply + log append" is one ordered
    // step. The log lives under <dir>/repl on the same Env as the
    // engine, so fault drills cover the replication path too.
    std::unique_ptr<server::ReplicationHub> repl_hub;
    kv::KVStore *serve = stack.serve;
    if (flags.repl || !flags.follower_host.empty()) {
        if (flags.dir.empty())
            fatal("replication needs --dir");
        server::ReplicationOptions ropts;
        ropts.dir = flags.dir + "/repl";
        ropts.sync_appends = flags.sync;
        ropts.sync_acks = flags.repl_sync;
        ropts.ack_timeout_ms = flags.repl_ack_timeout_ms;
        if (flags.repl_segment_bytes > 0)
            ropts.segment_bytes = flags.repl_segment_bytes;
        ropts.primary_host = flags.follower_host;
        ropts.primary_port = flags.follower_port;
        ropts.seed = flags.fault_seed;
        ropts.env = stack.fault_env.get(); // null = Posix
        auto hub = server::ReplicationHub::open(ropts);
        hub.status().expectOk("replication log");
        repl_hub = hub.take();
        serve = &repl_hub->wrap(*serve);
    }

    // Cache tier (DESIGN.md §14): stacked above replication so
    // primary-side mutations invalidate inline, while follower
    // replay — which mutates beneath this layer — invalidates via
    // the hub hook below. With --cache-tier-bytes 0 (default) the
    // stack is bit-identical to a cache-less build.
    std::unique_ptr<cachetier::CacheTier> cache_tier;
    std::unique_ptr<cachetier::CorrelationPrefetcher> prefetcher;
    if (flags.cache_tier_bytes > 0) {
        cachetier::CacheTierOptions copts;
        copts.capacity_bytes = flags.cache_tier_bytes;
        copts.shards = flags.cache_shards;
        cache_tier =
            std::make_unique<cachetier::CacheTier>(*serve, copts);
        if (flags.prefetch_k > 0) {
            cachetier::PrefetcherOptions popts;
            popts.top_k =
                static_cast<uint32_t>(flags.prefetch_k);
            prefetcher =
                std::make_unique<cachetier::CorrelationPrefetcher>(
                    *cache_tier, popts);
            if (!flags.corr_table.empty())
                prefetcher
                    ->loadTable(Env::defaultEnv(),
                                flags.corr_table)
                    .expectOk("corr table");
            cache_tier->setPrefetcher(prefetcher.get());
            prefetcher->start();
        }
        if (repl_hub) {
            cachetier::CacheTier *tier = cache_tier.get();
            repl_hub->setInvalidationHook(
                [tier](const std::vector<Bytes> &keys) {
                    for (const Bytes &k : keys)
                        tier->invalidate(k);
                });
        }
        serve = cache_tier.get();
    } else if (!flags.corr_table.empty()) {
        warn("ethkvd: --corr-table ignored without"
             " --cache-tier-bytes");
    }

    // Serve through the measuring decorator so op.engine.* metrics
    // (and the engine rows in STATS) are always populated.
    kv::InstrumentedKVStore instrumented(
        *serve, obs::MetricsRegistry::global(), "engine");

    server::ServerOptions options;
    options.host = flags.host;
    options.port = static_cast<uint16_t>(flags.port);
    options.workers = flags.workers;
    options.max_frame_bytes = flags.max_frame_bytes;
    options.scan_limit_max = flags.scan_limit;
    options.scan_byte_budget = flags.scan_byte_budget;
    options.trace_log = trace_log.get();
    options.trace_sample_shift = flags.trace_sample_shift;
    options.stage_sample_shift = flags.stage_sample_shift;
    options.slow_op_micros = flags.slow_op_micros;
    options.slow_op_capacity =
        static_cast<size_t>(flags.slow_op_capacity);
    options.repl = repl_hub.get();
    options.conn_idle_timeout_ms = flags.conn_idle_timeout_ms;
    options.pin_cores = flags.pin_cores;

    server::Server srv(instrumented, options);
    srv.start().expectOk("server start");
    // After the server: start() installed the ack-delivery hook,
    // and a follower's first replayed batch should find the
    // listener alive for symmetry with restarts.
    if (repl_hub)
        repl_hub->start().expectOk("replication start");

    obs::PeriodicMetricsWriter::Options writer_options;
    writer_options.path = flags.metrics_file;
    writer_options.interval_ms = flags.metrics_interval_ms;
    std::unique_ptr<obs::PeriodicMetricsWriter> metrics_writer;
    if (flags.metrics_interval_ms > 0 &&
        !flags.metrics_file.empty()) {
        metrics_writer = std::make_unique<obs::PeriodicMetricsWriter>(
            writer_options);
        metrics_writer->start();
    }

    if (!flags.port_file.empty()) {
        // The port file is how test harnesses discover an
        // ephemeral port; write it via the Env seam (tmp+rename so
        // a reader never sees a partial file).
        Env *env = Env::defaultEnv();
        std::string tmp = flags.port_file + ".tmp";
        auto file = env->newWritableFile(tmp);
        file.status().expectOk("port file");
        std::string text = std::to_string(srv.port()) + "\n";
        file.value()->append(text).expectOk("port file write");
        file.value()->close().expectOk("port file close");
        env->renameFile(tmp, flags.port_file)
            .expectOk("port file rename");
    }

    inform("ethkvd: engine=%s addr=%s:%u workers=%d%s%s",
           srv.engineName().c_str(), flags.host.c_str(),
           static_cast<unsigned>(srv.port()), flags.workers,
           flags.sync ? " sync" : "",
           repl_hub == nullptr   ? ""
           : repl_hub->isPrimary() ? " role=primary"
                                   : " role=follower");

    auto shutdown_fd = server::net::makeEventFd();
    shutdown_fd.status().expectOk("shutdown eventfd");
    g_shutdown_fd = shutdown_fd.value();
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGUSR1, onUsr1);
    // A client vanishing mid-write must not kill the server.
    std::signal(SIGPIPE, SIG_IGN);

    // Block until a signal arrives. SIGUSR1 dumps diagnostics and
    // keeps serving; SIGINT/SIGTERM fall through to shutdown.
    while (true) {
        Status s = server::net::waitReadable(g_shutdown_fd, -1);
        if (!s.isOk())
            break;
        server::net::drainEventFd(g_shutdown_fd);
        if (g_got_term)
            break;
        if (g_got_usr1) {
            g_got_usr1 = 0;
            dumpDiagnostics(srv, trace_log.get(),
                            flags.trace_path);
        }
    }

    inform("ethkvd: shutting down");
    if (metrics_writer)
        metrics_writer->stop(); // writes one final snapshot
    srv.stop(); // joins threads, flushes the engine
    if (prefetcher)
        prefetcher->stop(); // after srv.stop(): no more GETs
    if (trace_log)
        writeTraceFile(*trace_log, flags.trace_path);
    return 0;
}
