/**
 * @file
 * ethkvd's server core: a multi-threaded, epoll-based TCP server
 * over any ethkv::kv::KVStore.
 *
 * Threading model (DESIGN.md §9):
 *
 *  - One acceptor thread owns the listening socket. Accepted
 *    connections are handed to workers round-robin via a small
 *    mutex-guarded queue plus an eventfd wakeup (fd handoff, so
 *    one connection lives on exactly one worker forever — no
 *    cross-worker state, no per-frame locking).
 *  - N worker threads each run a private epoll loop over their
 *    connections. A worker reads bytes, decodes frames
 *    (server/protocol.hh), executes ops against the shared store,
 *    and queues response frames on the connection's write buffer.
 *
 * The store must be safe for concurrent callers: HybridKVStore and
 * CachingKVStore lock internally; anything else is wrapped in
 * kv::LockedKVStore by the caller (ethkvd does this).
 *
 * Backpressure: each connection has a bounded write queue. Above
 * the soft limit the worker stops reading from that connection
 * (requests stop entering, the pipe fills, the client blocks — a
 * closed loop). Above the hard limit — a client that keeps
 * pipelining but never reads — the connection is dropped.
 *
 * Error discipline: engine Statuses map 1:1 onto wire codes, so a
 * store that degraded to read-only after an I/O failure surfaces
 * to every client as IODegraded, not a generic error. Protocol
 * violations (bad magic, oversized length, checksum mismatch) get
 * a best-effort BadFrame response, then the connection closes —
 * framing is unrecoverable on a byte stream.
 *
 * Graceful shutdown: stop() stops accepting, closes connections,
 * joins all threads, then flushes the engine (WAL sync) so an
 * orderly SIGTERM never loses acknowledged writes.
 */

#ifndef ETHKV_SERVER_SERVER_HH
#define ETHKV_SERVER_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/status.hh"
#include "kvstore/kvstore.hh"
#include "obs/metrics.hh"
#include "obs/slow_op_log.hh"
#include "obs/trace_event.hh"
#include "server/protocol.hh"

namespace ethkv::server
{

class ReplicationHub;

/** Server tuning knobs. */
struct ServerOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0; //!< 0 = ephemeral (query with port()).
    int workers = 4;
    //! Largest request/response payload accepted on the wire.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    //! Stop reading from a connection whose pending responses
    //! exceed this (closed-loop backpressure).
    size_t write_queue_soft_bytes = 1u << 20;
    //! Drop a connection whose pending responses exceed this.
    size_t write_queue_hard_bytes = 8u << 20;
    //! Server-side cap on SCAN results per request.
    uint64_t scan_limit_max = 4096;
    //! Byte cap on one SCAN response payload. The entry-count cap
    //! alone cannot bound the response: 4096 entries of 32 KiB each
    //! overflow max_frame_bytes and the encoder would abort the
    //! connection. 0 = derive from max_frame_bytes minus encoding
    //! headroom. The first entry is always returned even if it
    //! alone exceeds the budget, so progress is guaranteed.
    size_t scan_byte_budget = 0;
    //! Destination for server.* instruments; global when null.
    obs::MetricsRegistry *metrics = nullptr;
    //! Request-pipeline span sink; tracing off when null. For
    //! merged client+server timelines the log should use the
    //! absolute clock (TraceEventLog(true, cap)).
    obs::TraceEventLog *trace_log = nullptr;
    //! When tracing is on, untraced (v1) requests are still traced
    //! at a 1-in-2^shift sample so server-only captures work.
    int trace_sample_shift = 4;
    //! op.server.<stage>_ns histograms record 1-in-2^shift
    //! requests (same budget discipline as InstrumentedKVStore).
    int stage_sample_shift = 4;
    //! Record requests slower than this (decode+exec+encode) in
    //! the slow-op ring; negative = disabled.
    int64_t slow_op_micros = -1;
    //! Ring capacity for the slow-op log.
    size_t slow_op_capacity = 256;
    //! Replication hub (DESIGN.md §13); null = standalone node.
    //! The server consults it for role checks, hands SUBSCRIBE
    //! connections to it, serves PROMOTE through it, and defers
    //! mutation acks when it asks (semi-sync replication). Owned
    //! by the caller; must outlive the server.
    ReplicationHub *repl = nullptr;
    //! Close connections with no inbound traffic for this long
    //! (half-open peers, leaked sockets); 0 = never.
    int conn_idle_timeout_ms = 0;
    //! Pin worker thread i to CPU (i mod hardware cores). With a
    //! sharded engine (--shards, DESIGN.md §15) this keeps each
    //! event-loop thread — and therefore every op it executes
    //! in-thread against the owning shard — on a stable core,
    //! while the per-shard maintenance threads float on the rest.
    bool pin_cores = false;
};

/**
 * The server. Construct over a store, start(), stop().
 *
 * One Server instance may be started and stopped once; tests that
 * need a fresh server construct a fresh instance.
 */
class Server
{
  public:
    Server(kv::KVStore &store, ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the acceptor + worker threads. */
    Status start();

    /**
     * Graceful shutdown: stop accepting, close connections, join
     * threads, flush the engine. Idempotent.
     */
    void stop();

    /** The bound port (valid after start()). */
    uint16_t port() const { return port_; }

    /** Name of the engine being served. */
    std::string engineName() const { return store_.name(); }

    /** The slow-op ring; null when slow_op_micros < 0. Valid for
     *  the server's lifetime (SIGUSR1 dumps read through this). */
    const obs::SlowOpLog *slowOpLog() const
    {
        return slow_log_.get();
    }

  private:
    struct Connection;
    struct Worker;

    void acceptorLoop();
    void workerLoop(Worker &worker);
    void handleFrame(Worker &worker, Connection &conn,
                     const Frame &frame, uint64_t decode_start_ns,
                     uint64_t decode_end_ns);
    /** SUBSCRIBE: validate, respond, migrate the fd to the
     *  replication sender. */
    void handleSubscribe(Worker &worker, Connection &conn,
                         const Frame &frame);
    /** Sync-ack completions delivered by the sender thread. */
    void deliverAckCompletions(Worker &worker);
    /** Close connections idle past conn_idle_timeout_ms. */
    void reapIdleConnections(Worker &worker, uint64_t now_ms);
    void execOp(Connection &conn, const Frame &frame,
                uint8_t &wire_status, Bytes &payload);
    Bytes statsJson();
    void closeConnection(Worker &worker, Connection &conn);
    void flushWrites(Worker &worker, Connection &conn);
    void applyBackpressure(Worker &worker, Connection &conn);

    /** 1-in-2^stage_sample_shift decision, one relaxed atomic. */
    bool stageSampleHit();
    /** Sampler for server-initiated traces of untraced frames. */
    bool traceSampleHit();

    kv::KVStore &store_;
    ServerOptions options_;
    obs::MetricsRegistry &metrics_;
    obs::TraceEventLog *trace_log_ = nullptr;
    std::unique_ptr<obs::SlowOpLog> slow_log_;
    uint64_t slow_op_ns_ = 0;
    std::atomic<uint64_t> stage_sample_seq_{0};
    std::atomic<uint64_t> trace_sample_seq_{0};
    uint64_t stage_sample_mask_ = 0;
    uint64_t trace_sample_mask_ = 0;

    int listen_fd_ = -1;
    int accept_wake_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> started_{false};
    /** Generation stamp for connections, so a sync-ack completion
     *  can never hit a different connection that reused the fd. */
    std::atomic<uint64_t> next_conn_id_{1};
    std::thread acceptor_;
    std::vector<std::unique_ptr<Worker>> workers_;
    size_t next_worker_ = 0;

    // Cached instruments (lookups lock; increments are lock-free).
    obs::Counter *conns_accepted_;
    obs::Counter *conns_closed_;
    obs::Gauge *conns_active_;
    obs::Counter *bytes_in_;
    obs::Counter *bytes_out_;
    obs::Counter *frames_bad_;
    obs::Counter *frames_received_;
    obs::Counter *backpressure_paused_;
    obs::Counter *backpressure_dropped_;
    obs::Counter *op_count_[13];
    obs::Counter *op_errors_[13];
    obs::LatencyHistogram *op_latency_[13];
    obs::LatencyHistogram *conn_lifetime_ops_;

    // Per-stage attribution (sampled; DESIGN.md §11).
    obs::LatencyHistogram *stage_read_ns_;
    obs::LatencyHistogram *stage_decode_ns_;
    obs::LatencyHistogram *stage_exec_ns_;
    obs::LatencyHistogram *stage_encode_ns_;
    obs::LatencyHistogram *stage_flush_ns_;
    obs::LatencyHistogram *stage_total_ns_;
    obs::Gauge *write_queue_bytes_;   //!< Sum over connections.
    obs::Gauge *responses_inflight_;  //!< Queued, not yet flushed.
    obs::Counter *slow_ops_recorded_;
    obs::Counter *traces_emitted_;
    obs::Counter *conns_idle_closed_;
    obs::Counter *subscribers_adopted_;
    obs::Counter *acks_deferred_;
};

} // namespace ethkv::server

#endif // ETHKV_SERVER_SERVER_HH
