/**
 * @file
 * Client library for ethkvd (protocol ethkv.wire.v1).
 *
 * Two clients share one codec (server/protocol.hh):
 *
 *  - Client: blocking request/response. One outstanding request at
 *    a time; the natural fit for tests and interactive tools. Its
 *    API mirrors kv::KVStore (get/put/del/apply/scan) plus stats().
 *
 *  - PipelinedClient: asynchronous with a bounded in-flight window.
 *    submit*() encodes a request and flushes it; once the window is
 *    full, the oldest response is reaped first. ethkvd processes
 *    frames of one connection in order, so responses come back FIFO
 *    and the client needs no request-id matching table (ids are
 *    still echoed and verified). This is what the load generator
 *    uses to keep the server busy without a thread per request.
 *
 * Neither client is thread-safe; use one instance per thread.
 *
 * Both clients bound their syscalls (ClientOptions): connects and
 * per-call reads/writes time out instead of hanging on a dead or
 * wedged server, and writes are SIGPIPE-safe (a closed peer is an
 * IOError, never a fatal signal).
 */

#ifndef ETHKV_SERVER_CLIENT_HH
#define ETHKV_SERVER_CLIENT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/status.hh"
#include "kvstore/write_batch.hh"
#include "obs/trace_event.hh"
#include "server/protocol.hh"

namespace ethkv::server
{

/** Result of one SCAN request. */
struct ScanResult
{
    std::vector<ScanEntry> entries;
    bool truncated = false; //!< Server hit its per-request cap.
};

/**
 * Connection bounds shared by both clients.
 *
 * The defaults make every client call terminate: a SYN that is
 * never answered fails after connect_timeout_ms instead of the
 * kernel's multi-minute retry schedule, and a server that accepts
 * but never responds (or stops reading) fails a round trip after
 * io_timeout_ms. Set a field to 0 to wait forever (the pre-timeout
 * behaviour), e.g. for a debugger-attached server.
 */
struct ClientOptions
{
    int connect_timeout_ms = 5000;
    //! Per-syscall read/write budget within a round trip; a round
    //! trip making steady progress is never cut off.
    int io_timeout_ms = 10000;
};

/** Blocking request/response client. */
class Client
{
  public:
    /** Establish a TCP session with an ethkvd at host:port. */
    static Result<std::unique_ptr<Client>> open(
        const std::string &host, uint16_t port,
        const ClientOptions &opts = ClientOptions());

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    Status get(BytesView key, Bytes &value_out);
    Status put(BytesView key, BytesView value);
    Status del(BytesView key);
    Status apply(const kv::WriteBatch &batch);
    Status scan(BytesView start, BytesView end, uint64_t limit,
                ScanResult &out);

    /** Fetch the server's stats JSON (ethkv.server.stats.v2). */
    Status stats(Bytes &json_out);

    /** Fetch the server's Chrome trace JSON (TRACEDUMP). */
    Status traceDump(Bytes &json_out);

    /** Fetch the server's slow-op log JSON (SLOWLOG). */
    Status slowLog(Bytes &json_out);

    /**
     * Promote a follower to primary (PROMOTE). On success
     * end_offset is the node's replication-log end — the point up
     * to which it is guaranteed to serve every replicated write.
     * NotSupported on a node without replication; IODegraded on a
     * follower that latched read-only after a replay failure.
     */
    Status promote(uint64_t &end_offset);

    /**
     * Send every subsequent request as a traced (wire v2) frame
     * and record a client-side span per round trip. Trace ids are
     * trace_id_base + a per-request sequence; pick disjoint bases
     * per connection so merged timelines stay unambiguous. Spans
     * land on pid 2 (servers emit on pid 1), track `tid`. Pass a
     * null log to turn tracing back off.
     */
    void enableTrace(obs::TraceEventLog *log,
                     uint64_t trace_id_base, uint32_t tid = 1);

    /** Close the session; further calls return IOError. */
    void close();

  private:
    Client(int fd, int io_timeout_ms)
        : fd_(fd), io_timeout_ms_(io_timeout_ms)
    {}

    /** Send one request, wait for its response frame. */
    Status roundTrip(Opcode op, BytesView payload, Frame &reply);

    int fd_;
    int io_timeout_ms_ = 0;
    uint32_t next_id_ = 1;
    Bytes scratch_;
    obs::TraceEventLog *trace_log_ = nullptr;
    uint64_t trace_id_next_ = 0;
    uint32_t trace_tid_ = 1;
};

/**
 * Pipelined client: up to `window` requests in flight.
 *
 * Completions are delivered to a callback in submission order:
 *   cb(op, wire_status, latency_ns, response_payload)
 * Write errors (broken connection) surface on the next submit or
 * drain as IOError; after that the client is dead.
 */
class PipelinedClient
{
  public:
    using Completion = std::function<void(
        Opcode op, WireStatus status, uint64_t latency_ns,
        const Bytes &payload)>;

    static Result<std::unique_ptr<PipelinedClient>> open(
        const std::string &host, uint16_t port, size_t window,
        Completion on_complete,
        const ClientOptions &opts = ClientOptions());

    ~PipelinedClient();

    PipelinedClient(const PipelinedClient &) = delete;
    PipelinedClient &operator=(const PipelinedClient &) = delete;

    Status submitGet(BytesView key);
    Status submitPut(BytesView key, BytesView value);
    Status submitDelete(BytesView key);
    Status submitBatch(const kv::WriteBatch &batch);
    Status submitScan(BytesView start, BytesView end,
                      uint64_t limit);

    /** Same contract as Client::enableTrace; spans cover submit →
     *  completion for every request in the window. */
    void enableTrace(obs::TraceEventLog *log,
                     uint64_t trace_id_base, uint32_t tid = 1);

    /** Wait for every in-flight request to complete. */
    Status drain();

    size_t inFlight() const { return pending_.size(); }

    void close();

  private:
    PipelinedClient(int fd, int io_timeout_ms, size_t window,
                    Completion on_complete)
        : fd_(fd), io_timeout_ms_(io_timeout_ms), window_(window),
          on_complete_(std::move(on_complete))
    {}

    /** Encode+send one request; reap one response if window full. */
    Status submit(Opcode op, BytesView payload);

    /** Block for the oldest outstanding response. */
    Status reapOne();

    struct Pending
    {
        uint32_t id;
        Opcode op;
        uint64_t t_start_ns;
        uint64_t trace_id;
        bool traced;
    };

    int fd_;
    int io_timeout_ms_ = 0;
    size_t window_;
    Completion on_complete_;
    uint32_t next_id_ = 1;
    std::deque<Pending> pending_;
    FrameReader reader_;
    Bytes scratch_;
    obs::TraceEventLog *trace_log_ = nullptr;
    uint64_t trace_id_next_ = 0;
    uint32_t trace_tid_ = 1;
};

} // namespace ethkv::server

#endif // ETHKV_SERVER_CLIENT_HH
