/**
 * @file
 * Primary/backup replication: the store decorator, the primary's
 * sender thread, the follower's stream client, and the hub that
 * owns them (DESIGN.md §13). See replication.hh for the design
 * overview; comments here cover only what the code cannot show.
 */

#include "server/replication.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <utility>

#include "kvstore/wal.hh"
#include "server/net_socket.hh"
#include "server/protocol.hh"
#include "common/rand.hh"

namespace ethkv::server
{

namespace
{

uint64_t
nowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

// ----------------------------------------------------------------
// ReplicatedKVStore
// ----------------------------------------------------------------

ReplicatedKVStore::ReplicatedKVStore(kv::KVStore &base,
                                     kv::ReplicationLog &log,
                                     ReplicationHub &hub)
    : base_(base), log_(log), hub_(hub)
{
    // Seed the sequence past whatever the log already holds so a
    // restarted primary never reissues sequence numbers.
    next_seq_ = log_.lastSeq() + 1;
}

Status
ReplicatedKVStore::put(BytesView key, BytesView value)
{
    {
        MutexLock lock(mutex_);
        Status s = base_.put(key, value);
        if (!s.isOk())
            return s;
        kv::WriteBatch batch;
        batch.put(key, value);
        s = log_.append(batch, next_seq_, nullptr);
        if (!s.isOk())
            return s;
        next_seq_ += 1;
    }
    hub_.publish();
    return Status::ok();
}

Status
ReplicatedKVStore::del(BytesView key)
{
    {
        MutexLock lock(mutex_);
        Status s = base_.del(key);
        if (!s.isOk())
            return s;
        kv::WriteBatch batch;
        batch.del(key);
        s = log_.append(batch, next_seq_, nullptr);
        if (!s.isOk())
            return s;
        next_seq_ += 1;
    }
    hub_.publish();
    return Status::ok();
}

Status
ReplicatedKVStore::apply(const kv::WriteBatch &batch)
{
    if (batch.empty())
        return Status::ok();
    {
        MutexLock lock(mutex_);
        Status s = base_.apply(batch);
        if (!s.isOk())
            return s;
        s = log_.append(batch, next_seq_, nullptr);
        if (!s.isOk())
            return s;
        next_seq_ += batch.size();
    }
    hub_.publish();
    return Status::ok();
}

Status
ReplicatedKVStore::applyReplicaBytes(BytesView records,
                                     uint64_t &applied_seq,
                                     uint64_t &applied_records)
{
    applied_seq = 0;
    applied_records = 0;
    std::vector<Bytes> invalidated;
    Status result;
    {
        MutexLock lock(mutex_);
        size_t pos = 0;
        while (pos < records.size()) {
            size_t start = pos;
            kv::WriteBatch batch;
            uint64_t first_seq = 0;
            Status s = kv::decodeWalRecord(records, pos, batch,
                                           first_seq);
            if (s.isNotFound()) {
                result = Status::corruption(
                    "torn record in replication batch");
                break;
            }
            if (!s.isOk()) {
                result = s;
                break;
            }
            s = base_.apply(batch);
            // These keys just changed beneath any cache tier
            // stacked above this store; collect them so the hub
            // can invalidate once the store lock drops (the cache
            // shard lock ranks below kReplStore, so invalidating
            // here would invert the lock order). Collected even
            // when apply failed: batches are only per-engine
            // atomic, so a mid-batch error leaves an applied
            // prefix in the engine that must not be served stale
            // — over-invalidating the suffix is just a refill.
            for (const kv::BatchEntry &e : batch.entries())
                invalidated.push_back(e.key);
            if (!s.isOk()) {
                result = s;
                break;
            }
            // Engine first, then log: if the log append fails the
            // engine is one record ahead, which is safe — the
            // resume offset is the log end, the primary resends
            // the record, and applying it twice is idempotent
            // (put/del).
            s = log_.appendRaw(records.substr(start, pos - start),
                               nullptr);
            if (!s.isOk()) {
                result = s;
                break;
            }
            if (!batch.empty())
                applied_seq = first_seq + batch.size() - 1;
            next_seq_ = std::max(next_seq_, applied_seq + 1);
            applied_records += 1;
        }
    }
    if (!invalidated.empty())
        hub_.notifyReplicaApplied(invalidated);
    return result;
}

Status
ReplicatedKVStore::get(BytesView key, Bytes &value)
{
    return base_.get(key, value);
}

Status
ReplicatedKVStore::scan(BytesView start, BytesView end,
                        const kv::ScanCallback &cb)
{
    return base_.scan(start, end, cb);
}

bool
ReplicatedKVStore::contains(BytesView key)
{
    return base_.contains(key);
}

Status
ReplicatedKVStore::flush()
{
    Status s = base_.flush();
    if (!s.isOk())
        return s;
    return log_.sync();
}

const kv::IOStats &
ReplicatedKVStore::stats() const
{
    return base_.stats();
}

std::string
ReplicatedKVStore::name() const
{
    return base_.name() + "+repl";
}

uint64_t
ReplicatedKVStore::liveKeyCount()
{
    return base_.liveKeyCount();
}

// ----------------------------------------------------------------
// ReplicationSender — the primary's streaming thread
// ----------------------------------------------------------------

/**
 * One epoll loop over subscriber sockets plus an eventfd the write
 * path (publish) and the server (adopt, waiters, stop) signal.
 * Everything per-subscriber lives on the loop thread; the mutex
 * only guards the tiny handoff vectors.
 */
class ReplicationSender
{
  public:
    explicit ReplicationSender(ReplicationHub &hub) : hub_(hub) {}

    ~ReplicationSender()
    {
        stop(false);
        if (epfd_ >= 0)
            net::closeFd(epfd_);
        if (wake_fd_ >= 0)
            net::closeFd(wake_fd_);
    }

    Status
    start()
    {
        auto ep = net::epollCreate();
        if (!ep.ok())
            return ep.status();
        epfd_ = ep.value();
        auto ev = net::makeEventFd();
        if (!ev.ok())
            return ev.status();
        wake_fd_ = ev.value();
        Status s = net::epollAdd(epfd_, wake_fd_, net::kEventRead,
                                 kWakeTag);
        if (!s.isOk())
            return s;
        thread_ = std::thread([this] { loop(); });
        return Status::ok();
    }

    /** Idempotent; with flush=true the loop drains subscriber
     *  queues (bounded) before exiting. */
    void
    stop(bool flush)
    {
        {
            MutexLock lock(mutex_);
            if (!stop_requested_) {
                stop_requested_ = true;
                flush_requested_ = flush;
            }
        }
        if (wake_fd_ >= 0)
            net::signalEventFd(wake_fd_);
        if (thread_.joinable())
            thread_.join();
    }

    /** New bytes in the log. Hot path: one atomic load, and an
     *  eventfd write only while subscribers exist. */
    void
    wake()
    {
        if (sub_count_.load(std::memory_order_acquire) == 0)
            return;
        net::signalEventFd(wake_fd_);
    }

    Status
    adopt(int fd, uint64_t resume_offset, Bytes first_bytes)
    {
        {
            MutexLock lock(mutex_);
            if (stop_requested_) {
                net::closeFd(fd);
                return Status::notSupported("sender stopping");
            }
            pending_.push_back(
                {fd, resume_offset, std::move(first_bytes)});
        }
        net::signalEventFd(wake_fd_);
        return Status::ok();
    }

    void
    enqueueWaiter(uint64_t target_offset,
                  const ReplicationHub::AckWaiter &waiter)
    {
        {
            MutexLock lock(mutex_);
            new_waiters_.push_back({waiter, target_offset, nowMs()});
        }
        hub_.sync_acks_pending_->add(1);
        net::signalEventFd(wake_fd_);
    }

    uint64_t
    subCount() const
    {
        return sub_count_.load(std::memory_order_acquire);
    }

    void
    dropAll()
    {
        {
            MutexLock lock(mutex_);
            drop_all_ = true;
        }
        net::signalEventFd(wake_fd_);
    }

  private:
    static constexpr uint64_t kWakeTag = ~0ull;

    struct Sub
    {
        int fd = -1;
        FrameReader reader;
        Bytes out;
        size_t out_pos = 0;
        uint64_t next_offset = 0;
        uint64_t acked_offset = 0;
        uint64_t acked_seq = 0;
        uint32_t next_id = 1;
        bool want_write = false;

        uint64_t
        backlog() const
        {
            return out.size() - out_pos;
        }
    };

    struct PendingSub
    {
        int fd;
        uint64_t resume_offset;
        Bytes first_bytes;
    };

    struct Waiter
    {
        ReplicationHub::AckWaiter waiter;
        uint64_t target = 0;
        uint64_t enqueued_ms = 0;
    };

    void
    loop()
    {
        std::vector<net::PollEvent> events(64);
        bool flush = false;
        for (;;) {
            bool stop = false;
            bool drop = false;
            std::vector<PendingSub> pend;
            std::vector<Waiter> fresh;
            {
                MutexLock lock(mutex_);
                stop = stop_requested_;
                flush = flush_requested_;
                drop = drop_all_;
                drop_all_ = false;
                pend.swap(pending_);
                fresh.swap(new_waiters_);
            }
            for (auto &p : pend)
                addSub(p);
            for (auto &w : fresh)
                waiters_.emplace(w.target, w);
            if (drop)
                dropAllSubs();
            if (stop)
                break;

            pumpAll();
            completeWaiters(nowMs());
            updateGauges();

            int timeout = waiters_.empty() ? -1 : 50;
            auto n =
                net::epollWait(epfd_, events.data(),
                               static_cast<int>(events.size()),
                               timeout);
            if (!n.ok())
                continue;
            for (int i = 0; i < n.value(); ++i)
                handleEvent(events[i]);
        }
        if (flush)
            finalFlush();
        // Shutdown fail-open: remaining waiters complete — the
        // data is durable locally, followers re-request the tail.
        std::vector<ReplicationHub::AckWaiter> done;
        for (auto &kv : waiters_)
            done.push_back(kv.second.waiter);
        waiters_.clear();
        if (!done.empty())
            hub_.deliverAcks(std::move(done));
        dropAllSubs();
        updateGauges();
    }

    void
    addSub(PendingSub &p)
    {
        Status s = net::epollAdd(epfd_, p.fd, net::kEventRead,
                                 static_cast<uint64_t>(p.fd));
        if (!s.isOk()) {
            net::closeFd(p.fd);
            return;
        }
        Sub sub;
        sub.fd = p.fd;
        sub.out = std::move(p.first_bytes);
        sub.next_offset = p.resume_offset;
        sub.acked_offset = p.resume_offset;
        subs_.emplace(p.fd, std::move(sub));
        sub_count_.store(subs_.size(), std::memory_order_release);
    }

    void
    dropSub(int fd)
    {
        auto it = subs_.find(fd);
        if (it == subs_.end())
            return;
        ETHKV_IGNORE_STATUS(net::epollDel(epfd_, fd),
                            "socket is being closed anyway");
        net::closeFd(fd);
        subs_.erase(it);
        sub_count_.store(subs_.size(), std::memory_order_release);
        hub_.subscribers_dropped_->inc();
    }

    void
    dropAllSubs()
    {
        while (!subs_.empty())
            dropSub(subs_.begin()->first);
    }

    /** Fill a subscriber's out-buffer from the log up to the
     *  backlog cap. Reads happen here, on the sender thread —
     *  never on the server's request path. */
    void
    pumpSub(Sub &s)
    {
        const auto &o = hub_.options_;
        uint64_t end = hub_.log_->endOffset();
        uint64_t last_seq = hub_.log_->lastSeq();
        while (s.next_offset < end &&
               s.backlog() < o.subscriber_backlog_bytes) {
            Bytes records;
            Status st = hub_.log_->read(
                s.next_offset,
                static_cast<size_t>(o.batch_bytes), records);
            if (!st.isOk() || records.empty())
                break;
            Bytes payload;
            encodeReplBatch(payload, s.next_offset, end, last_seq,
                            records);
            appendFrame(s.out,
                        static_cast<uint8_t>(Opcode::ReplBatch),
                        s.next_id++, payload);
            s.next_offset += records.size();
            hub_.batches_shipped_->inc();
        }
    }

    /** @return false when the connection died (caller drops it). */
    bool
    flushSub(Sub &s)
    {
        while (s.out_pos < s.out.size()) {
            size_t n = 0;
            Status err;
            auto r = net::writeSome(
                s.fd, BytesView(s.out).substr(s.out_pos), n, err);
            if (r == net::IoResult::Ok) {
                s.out_pos += n;
                continue;
            }
            if (r == net::IoResult::WouldBlock)
                break;
            return false;
        }
        if (s.out_pos == s.out.size()) {
            s.out.clear();
            s.out_pos = 0;
        } else if (s.out_pos > (1u << 20)) {
            s.out.erase(0, s.out_pos);
            s.out_pos = 0;
        }
        bool want = s.out_pos < s.out.size();
        if (want != s.want_write) {
            s.want_write = want;
            uint32_t ev = net::kEventRead |
                          (want ? net::kEventWrite : 0u);
            ETHKV_IGNORE_STATUS(
                net::epollMod(epfd_, s.fd, ev,
                              static_cast<uint64_t>(s.fd)),
                "a dead socket also raises HUP and is dropped");
        }
        return true;
    }

    void
    pumpAll()
    {
        std::vector<int> dead;
        for (auto &kv : subs_) {
            pumpSub(kv.second);
            if (!flushSub(kv.second))
                dead.push_back(kv.first);
        }
        for (int fd : dead)
            dropSub(fd);
    }

    /** @return false when the connection died. */
    bool
    readAcks(Sub &s)
    {
        for (;;) {
            scratch_.clear();
            size_t n = 0;
            Status err;
            auto r =
                net::readSome(s.fd, scratch_, 64u << 10, n, err);
            if (r == net::IoResult::WouldBlock)
                break;
            if (r != net::IoResult::Ok)
                return false;
            s.reader.feed(scratch_);
            Frame f;
            for (;;) {
                Status st = s.reader.next(f);
                if (st.isNotFound())
                    break;
                if (!st.isOk())
                    return false;
                if (f.type !=
                    static_cast<uint8_t>(Opcode::ReplAck))
                    continue; // subscribers only send acks
                uint64_t off = 0;
                uint64_t seq = 0;
                if (!decodeReplAck(f.payload, off, seq).isOk())
                    return false;
                s.acked_offset = std::max(s.acked_offset, off);
                s.acked_seq = std::max(s.acked_seq, seq);
                hub_.acks_received_->inc();
            }
            if (n < (64u << 10))
                break;
        }
        return true;
    }

    void
    handleEvent(const net::PollEvent &ev)
    {
        if (ev.tag == kWakeTag) {
            net::drainEventFd(wake_fd_);
            return;
        }
        int fd = static_cast<int>(ev.tag);
        auto it = subs_.find(fd);
        if (it == subs_.end())
            return;
        Sub &s = it->second;
        if ((ev.events & net::kEventHangup) != 0) {
            dropSub(fd);
            return;
        }
        if ((ev.events & net::kEventRead) != 0 && !readAcks(s)) {
            dropSub(fd);
            return;
        }
        // Acks free backlog budget; writability drains the queue.
        pumpSub(s);
        if (!flushSub(s))
            dropSub(fd);
    }

    uint64_t
    minAcked() const
    {
        uint64_t min_acked = ~0ull;
        for (const auto &kv : subs_)
            min_acked =
                std::min(min_acked, kv.second.acked_offset);
        return min_acked; // ~0 when no subscribers: fail open
    }

    void
    completeWaiters(uint64_t now)
    {
        std::vector<ReplicationHub::AckWaiter> done;
        uint64_t min_acked = minAcked();
        while (!waiters_.empty() &&
               waiters_.begin()->first <= min_acked) {
            done.push_back(waiters_.begin()->second.waiter);
            waiters_.erase(waiters_.begin());
        }
        // Fail open: a follower that sat on the oldest waiter past
        // the deadline is dropped (it reconnects and catches up)
        // so writers are never wedged by one sick replica.
        int timeout = hub_.options_.ack_timeout_ms;
        if (!waiters_.empty() && timeout > 0 &&
            now - waiters_.begin()->second.enqueued_ms >=
                static_cast<uint64_t>(timeout)) {
            uint64_t target = waiters_.begin()->first;
            std::vector<int> victims;
            for (const auto &kv : subs_)
                if (kv.second.acked_offset < target)
                    victims.push_back(kv.first);
            for (int fd : victims)
                dropSub(fd);
            min_acked = minAcked();
            while (!waiters_.empty() &&
                   waiters_.begin()->first <= min_acked) {
                done.push_back(waiters_.begin()->second.waiter);
                waiters_.erase(waiters_.begin());
            }
        }
        if (!done.empty())
            hub_.deliverAcks(std::move(done));
    }

    void
    updateGauges()
    {
        hub_.subscribers_->set(
            static_cast<int64_t>(subs_.size()));
        if (subs_.empty()) {
            hub_.lag_bytes_->set(0);
            hub_.lag_records_->set(0);
            hub_.send_queue_bytes_->set(0);
            return;
        }
        uint64_t end = hub_.log_->endOffset();
        uint64_t last_seq = hub_.log_->lastSeq();
        uint64_t min_acked = minAcked();
        uint64_t min_seq = ~0ull;
        uint64_t queued = 0;
        for (const auto &kv : subs_) {
            min_seq = std::min(min_seq, kv.second.acked_seq);
            queued += kv.second.backlog();
        }
        hub_.lag_bytes_->set(static_cast<int64_t>(
            end > min_acked ? end - min_acked : 0));
        hub_.lag_records_->set(static_cast<int64_t>(
            last_seq > min_seq ? last_seq - min_seq : 0));
        hub_.send_queue_bytes_->set(
            static_cast<int64_t>(queued));
    }

    /** Bounded final drain on graceful shutdown: push everything
     *  the log holds to every subscriber or give up after 2s. */
    void
    finalFlush()
    {
        uint64_t deadline = nowMs() + 2000;
        std::vector<net::PollEvent> events(64);
        for (;;) {
            pumpAll();
            uint64_t end = hub_.log_->endOffset();
            bool behind = false;
            for (const auto &kv : subs_)
                if (kv.second.next_offset < end ||
                    kv.second.backlog() > 0)
                    behind = true;
            if (!behind || subs_.empty())
                return;
            uint64_t now = nowMs();
            if (now >= deadline)
                return;
            uint64_t left = deadline - now;
            auto n = net::epollWait(
                epfd_, events.data(),
                static_cast<int>(events.size()),
                static_cast<int>(std::min<uint64_t>(left, 50)));
            if (!n.ok())
                return;
            for (int i = 0; i < n.value(); ++i)
                if (events[i].tag == kWakeTag)
                    net::drainEventFd(wake_fd_);
        }
    }

    ReplicationHub &hub_;
    int epfd_ = -1;
    int wake_fd_ = -1;
    std::thread thread_;

    Mutex mutex_{lock_ranks::kReplSender};
    bool stop_requested_ GUARDED_BY(mutex_) = false;
    bool flush_requested_ GUARDED_BY(mutex_) = false;
    bool drop_all_ GUARDED_BY(mutex_) = false;
    std::vector<PendingSub> pending_ GUARDED_BY(mutex_);
    std::vector<Waiter> new_waiters_ GUARDED_BY(mutex_);

    std::atomic<uint64_t> sub_count_{0};

    // Loop-thread state.
    std::map<int, Sub> subs_;
    std::multimap<uint64_t, Waiter> waiters_;
    Bytes scratch_;
};

// ----------------------------------------------------------------
// FollowerClient — the follower's stream thread
// ----------------------------------------------------------------

/**
 * Connect, handshake (SUBSCRIBE with our validated log end), apply
 * REPLBATCH frames, ack. Reconnects with exponential backoff +
 * jitter; latches the hub's sticky degraded mode on replay
 * IOError. The socket is blocking with SO_RCVTIMEO/SO_SNDTIMEO, so
 * every wait is bounded and stop() is honored within one tick.
 */
class FollowerClient
{
  public:
    explicit FollowerClient(ReplicationHub &hub) : hub_(hub) {}

    ~FollowerClient() { stop(); }

    Status
    start()
    {
        thread_ = std::thread([this] { loop(); });
        return Status::ok();
    }

    /** Join the thread; buffered complete frames are applied first
     *  (the PROMOTE drain). Idempotent. */
    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_.native());
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable())
            thread_.join();
    }

  private:
    bool
    stopped()
    {
        std::lock_guard<std::mutex> lock(mutex_.native());
        return stop_;
    }

    void
    sleepInterruptible(uint64_t ms)
    {
        std::unique_lock<std::mutex> lock(mutex_.native());
        cv_.wait_for(lock, std::chrono::milliseconds(ms),
                     [this] { return stop_; });
    }

    void
    loop()
    {
        const auto &o = hub_.options_;
        Rng rng(o.seed != 0 ? o.seed : nowMs() | 1);
        uint64_t backoff =
            static_cast<uint64_t>(std::max(o.backoff_min_ms, 1));
        const uint64_t backoff_max =
            static_cast<uint64_t>(std::max(o.backoff_max_ms, 1));
        bool first = true;
        while (!stopped() && !hub_.isDegraded()) {
            if (!first) {
                hub_.reconnects_->inc();
                uint64_t jitter = backoff / 4;
                uint64_t ms = backoff - jitter +
                              (jitter != 0
                                   ? rng.nextBounded(2 * jitter + 1)
                                   : 0);
                sleepInterruptible(ms);
                if (stopped() || hub_.isDegraded())
                    break;
                backoff = std::min(backoff * 2, backoff_max);
            }
            first = false;
            bool progress = false;
            runSession(progress);
            if (progress)
                backoff = static_cast<uint64_t>(
                    std::max(o.backoff_min_ms, 1));
        }
        hub_.follower_connected_->set(0);
    }

    /** @return false on timeout, stop, or a dead/corrupt stream. */
    bool
    recvFrame(int fd, FrameReader &reader, Frame &out,
              int budget_ms)
    {
        uint64_t deadline = nowMs() + static_cast<uint64_t>(
                                          std::max(budget_ms, 1));
        for (;;) {
            Status st = reader.next(out);
            if (st.isOk())
                return true;
            if (!st.isNotFound())
                return false;
            if (stopped() || nowMs() >= deadline)
                return false;
            scratch_.clear();
            size_t n = 0;
            Status err;
            auto r =
                net::readSome(fd, scratch_, 64u << 10, n, err);
            if (r == net::IoResult::Ok) {
                reader.feed(scratch_);
                continue;
            }
            if (r == net::IoResult::WouldBlock)
                continue; // SO_RCVTIMEO tick
            return false;
        }
    }

    void
    runSession(bool &progress)
    {
        const auto &o = hub_.options_;
        auto fdr = net::connectTcpTimeout(
            o.primary_host, o.primary_port, o.connect_timeout_ms);
        if (!fdr.ok())
            return;
        fd_ = fdr.value();
        ETHKV_IGNORE_STATUS(
            net::setIoTimeouts(fd_, o.io_timeout_ms,
                               o.io_timeout_ms),
            "without timeouts the stream still works, just with "
            "slower stop/heartbeat response");
        next_id_ = 1;
        uint64_t our_end = hub_.log_->endOffset();
        Bytes payload;
        Bytes out;
        encodeSubscribe(payload, our_end);
        appendFrame(out, static_cast<uint8_t>(Opcode::Subscribe),
                    next_id_++, payload);
        FrameReader reader;
        Frame f;
        if (!net::writeAllTimed(fd_, out, o.connect_timeout_ms)
                 .isOk() ||
            !recvFrame(fd_, reader, f, o.connect_timeout_ms)) {
            closeSession();
            return;
        }
        if (f.type != static_cast<uint8_t>(WireStatus::Ok)) {
            Status s = statusOfWire(
                static_cast<WireStatus>(f.type),
                std::string(f.payload));
            if (s.code() == StatusCode::InvalidArgument)
                // Our log end is past the primary's: histories
                // diverged, and retrying cannot fix it.
                hub_.enterDegraded(Status::invalidArgument(
                    "subscribe rejected: " + s.toString()));
            closeSession();
            return;
        }
        uint64_t resume = 0;
        uint64_t p_end = 0;
        if (!decodeSubscribeResponse(f.payload, resume, p_end)
                 .isOk() ||
            resume != our_end) {
            closeSession();
            return;
        }
        primary_end_ = p_end;
        hub_.follower_connected_->set(1);
        updateLag();
        progress = true;

        while (!stopped()) {
            Status st = reader.next(f);
            if (st.isOk()) {
                if (!handleFrame(f))
                    break;
                progress = true;
                continue;
            }
            if (!st.isNotFound())
                break; // corrupt stream: resync by reconnecting
            scratch_.clear();
            size_t n = 0;
            Status err;
            auto r =
                net::readSome(fd_, scratch_, 256u << 10, n, err);
            if (r == net::IoResult::Ok) {
                reader.feed(scratch_);
                continue;
            }
            if (r == net::IoResult::WouldBlock) {
                // Quiet tick: heartbeat-ack so the primary's
                // sync-ack timeout never fires on an idle link.
                if (!sendAck())
                    break;
                continue;
            }
            break; // Eof / Error
        }
        if (stopped()) {
            // PROMOTE drain: everything already received must be
            // applied before the role flips, or acked-on-primary
            // writes buffered here would be dropped.
            while (reader.next(f).isOk())
                if (!handleFrame(f))
                    break;
        }
        hub_.follower_connected_->set(0);
        closeSession();
    }

    /** @return false to end the session. */
    bool
    handleFrame(const Frame &f)
    {
        if (f.type != static_cast<uint8_t>(Opcode::ReplBatch))
            return true; // tolerate unknown server frames
        uint64_t start = 0;
        uint64_t p_end = 0;
        uint64_t p_seq = 0;
        BytesView records;
        if (!decodeReplBatch(f.payload, start, p_end, p_seq,
                             records)
                 .isOk())
            return false;
        primary_end_ = p_end;
        primary_last_seq_ = p_seq;
        uint64_t our_end = hub_.log_->endOffset();
        if (start + records.size() <= our_end) {
            // Entirely already applied (duplicate after resume).
            updateLag();
            return sendAck();
        }
        if (start > our_end)
            return false; // gap: reconnect re-handshakes
        if (start < our_end)
            // Partial overlap; both sides' offsets are record
            // boundaries on the same byte stream, so the cut is
            // record-aligned.
            records = records.substr(
                static_cast<size_t>(our_end - start));
        uint64_t applied_seq = 0;
        uint64_t applied_records = 0;
        Status s = hub_.store_->applyReplicaBytes(
            records, applied_seq, applied_records);
        if (!s.isOk()) {
            hub_.replay_errors_->inc();
            if (s.code() == StatusCode::IOError ||
                s.code() == StatusCode::IODegraded)
                // A half-applied stream must not keep growing:
                // latch sticky read-only degraded mode.
                hub_.enterDegraded(s);
            return false;
        }
        hub_.batches_received_->inc();
        hub_.records_applied_->inc(applied_records);
        updateLag();
        return sendAck();
    }

    bool
    sendAck()
    {
        Bytes payload;
        Bytes out;
        encodeReplAck(payload, hub_.log_->endOffset(),
                      hub_.log_->lastSeq());
        appendFrame(out, static_cast<uint8_t>(Opcode::ReplAck),
                    next_id_++, payload);
        return net::writeAllTimed(fd_, out,
                                  hub_.options_.io_timeout_ms)
            .isOk();
    }

    void
    updateLag()
    {
        uint64_t end = hub_.log_->endOffset();
        uint64_t seq = hub_.log_->lastSeq();
        hub_.lag_bytes_->set(static_cast<int64_t>(
            primary_end_ > end ? primary_end_ - end : 0));
        hub_.lag_records_->set(static_cast<int64_t>(
            primary_last_seq_ > seq ? primary_last_seq_ - seq
                                    : 0));
    }

    void
    closeSession()
    {
        if (fd_ >= 0)
            net::closeFd(fd_);
        fd_ = -1;
    }

    ReplicationHub &hub_;
    Mutex mutex_{lock_ranks::kReplFollower};
    std::condition_variable cv_;
    bool stop_ GUARDED_BY(mutex_) = false;
    std::thread thread_;

    // Session state (stream thread only).
    int fd_ = -1;
    uint32_t next_id_ = 1;
    uint64_t primary_end_ = 0;
    uint64_t primary_last_seq_ = 0;
    Bytes scratch_;
};

// ----------------------------------------------------------------
// ReplicationHub
// ----------------------------------------------------------------

ReplicationHub::ReplicationHub(const ReplicationOptions &options)
    : options_(options),
      env_(options.env != nullptr ? options.env
                                  : Env::defaultEnv()),
      metrics_(options.metrics != nullptr
                   ? *options.metrics
                   : obs::MetricsRegistry::global())
{
    lag_bytes_ = &metrics_.gauge("repl.lag_bytes");
    lag_records_ = &metrics_.gauge("repl.lag_records");
    follower_connected_ =
        &metrics_.gauge("repl.follower_connected");
    follower_degraded_ =
        &metrics_.gauge("repl.follower_degraded");
    reconnects_ = &metrics_.counter("repl.reconnects");
    batches_shipped_ = &metrics_.counter("repl.batches_shipped");
    records_applied_ = &metrics_.counter("repl.records_applied");
    batches_received_ =
        &metrics_.counter("repl.batches_received");
    acks_received_ = &metrics_.counter("repl.acks_received");
    replay_errors_ = &metrics_.counter("repl.replay_errors");
    subscribers_ = &metrics_.gauge("repl.subscribers");
    send_queue_bytes_ = &metrics_.gauge("repl.send_queue_bytes");
    sync_acks_pending_ =
        &metrics_.gauge("repl.sync_acks_pending");
    subscribers_dropped_ =
        &metrics_.counter("repl.subscribers_dropped");
    promotions_ = &metrics_.counter("repl.promotions");
}

ReplicationHub::~ReplicationHub() { flushAndStop(); }

Result<std::unique_ptr<ReplicationHub>>
ReplicationHub::open(const ReplicationOptions &options)
{
    std::unique_ptr<ReplicationHub> hub(
        new ReplicationHub(options));
    kv::ReplLogOptions lo;
    lo.dir = options.dir;
    lo.segment_bytes = options.segment_bytes;
    lo.sync_appends = options.sync_appends;
    lo.env = options.env;
    auto log = kv::ReplicationLog::open(lo);
    if (!log.ok())
        return log.status();
    hub->log_ = std::move(log.value());
    if (!options.primary_host.empty())
        hub->role_.store(ReplRole::Follower,
                         std::memory_order_release);
    return hub;
}

kv::KVStore &
ReplicationHub::wrap(kv::KVStore &base)
{
    store_ =
        std::make_unique<ReplicatedKVStore>(base, *log_, *this);
    return *store_;
}

Status
ReplicationHub::start()
{
    if (options_.primary_host.empty())
        return Status::ok(); // sender starts with 1st subscriber
    MutexLock lock(mutex_);
    follower_ = std::make_unique<FollowerClient>(*this);
    return follower_->start();
}

void
ReplicationHub::flushAndStop()
{
    if (stopped_.exchange(true))
        return;
    MutexLock lock(mutex_);
    if (follower_)
        follower_->stop();
    if (sender_) {
        sender_ptr_.store(nullptr, std::memory_order_release);
        sender_->stop(true);
    }
}

Status
ReplicationHub::promote(uint64_t *end_offset)
{
    {
        MutexLock lock(mutex_);
        if (!isPrimary()) {
            if (isDegraded())
                return Status::ioDegraded(
                    "replay latched degraded mode; refusing to "
                    "promote a torn prefix");
            if (follower_) {
                follower_->stop(); // drains buffered batches
                follower_.reset();
            }
            if (isDegraded())
                return Status::ioDegraded(
                    "replay failed during promotion drain");
            role_.store(ReplRole::Primary,
                        std::memory_order_release);
            promotions_->inc();
            lag_bytes_->set(0);
            lag_records_->set(0);
            follower_connected_->set(0);
        }
    }
    if (end_offset != nullptr)
        *end_offset = log_->endOffset();
    return Status::ok();
}

void
ReplicationHub::setAckDelivery(AckDelivery cb)
{
    ack_delivery_ = std::move(cb);
}

void
ReplicationHub::setInvalidationHook(InvalidationHook cb)
{
    invalidation_hook_ = std::move(cb);
}

void
ReplicationHub::notifyReplicaApplied(
    const std::vector<Bytes> &keys)
{
    if (invalidation_hook_)
        invalidation_hook_(keys);
}

bool
ReplicationHub::deferAcks() const
{
    return options_.sync_acks && isPrimary() &&
           subscriberCount() > 0;
}

void
ReplicationHub::enqueueAckWaiter(uint64_t target_offset,
                                 const AckWaiter &waiter)
{
    auto *sender = sender_ptr_.load(std::memory_order_acquire);
    if (sender == nullptr) {
        // No sender anymore (raced with shutdown): complete
        // immediately — the write is locally durable.
        if (ack_delivery_) {
            std::vector<AckWaiter> one{waiter};
            ack_delivery_(std::move(one));
        }
        return;
    }
    sender->enqueueWaiter(target_offset, waiter);
}

Status
ReplicationHub::adoptSubscriber(int fd, uint64_t resume_offset,
                                Bytes first_bytes)
{
    MutexLock lock(mutex_);
    if (stopped_.load(std::memory_order_acquire) ||
        !isPrimary()) {
        net::closeFd(fd);
        return Status::notSupported("not accepting subscribers");
    }
    Status s = startSenderLocked();
    if (!s.isOk()) {
        net::closeFd(fd);
        return s;
    }
    return sender_->adopt(fd, resume_offset,
                          std::move(first_bytes));
}

uint64_t
ReplicationHub::subscriberCount() const
{
    auto *sender = sender_ptr_.load(std::memory_order_acquire);
    return sender != nullptr ? sender->subCount() : 0;
}

void
ReplicationHub::dropSubscribersForTest()
{
    auto *sender = sender_ptr_.load(std::memory_order_acquire);
    if (sender != nullptr)
        sender->dropAll();
}

void
ReplicationHub::publish()
{
    auto *sender = sender_ptr_.load(std::memory_order_acquire);
    if (sender != nullptr)
        sender->wake();
}

void
ReplicationHub::enterDegraded(const Status &cause)
{
    (void)cause;
    if (!degraded_.exchange(true))
        follower_degraded_->set(1);
}

void
ReplicationHub::deliverAcks(std::vector<AckWaiter> &&waiters)
{
    sync_acks_pending_->add(
        -static_cast<int64_t>(waiters.size()));
    if (ack_delivery_)
        ack_delivery_(std::move(waiters));
}

Status
ReplicationHub::startSenderLocked()
{
    if (sender_)
        return Status::ok();
    auto sender = std::make_unique<ReplicationSender>(*this);
    Status s = sender->start();
    if (!s.isOk())
        return s;
    sender_ = std::move(sender);
    sender_ptr_.store(sender_.get(), std::memory_order_release);
    return Status::ok();
}

} // namespace ethkv::server
