#include "server/protocol.hh"

#include "common/varint.hh"
#include "common/xxhash.hh"

namespace ethkv::server
{

namespace
{

void
appendU32(Bytes &out, uint32_t v)
{
    out.push_back(static_cast<char>(v >> 24));
    out.push_back(static_cast<char>(v >> 16));
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v));
}

void
appendU64(Bytes &out, uint64_t v)
{
    appendU32(out, static_cast<uint32_t>(v >> 32));
    appendU32(out, static_cast<uint32_t>(v));
}

uint32_t
readU32(BytesView data, size_t pos)
{
    auto b = [&](size_t i) {
        return static_cast<uint32_t>(
            static_cast<uint8_t>(data[pos + i]));
    };
    return (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
}

uint64_t
readU64(BytesView data, size_t pos)
{
    return (static_cast<uint64_t>(readU32(data, pos)) << 32) |
           readU32(data, pos + 4);
}

/** Read a varint-prefixed byte string; false on overrun. */
bool
readBlob(BytesView payload, size_t &pos, Bytes &out)
{
    uint64_t len = 0;
    if (!readVarint(payload, pos, len))
        return false;
    if (len > payload.size() - pos)
        return false;
    out.assign(payload.substr(pos, len));
    pos += len;
    return true;
}

void
appendBlob(Bytes &out, BytesView data)
{
    appendVarint(out, data.size());
    out.append(data);
}

Status
malformed(const char *what)
{
    return Status::invalidArgument(
        std::string("malformed payload: ") + what);
}

} // namespace

const char *
opcodeName(uint8_t opcode)
{
    switch (static_cast<Opcode>(opcode)) {
      case Opcode::Get: return "get";
      case Opcode::Put: return "put";
      case Opcode::Delete: return "delete";
      case Opcode::Batch: return "batch";
      case Opcode::Scan: return "scan";
      case Opcode::Stats: return "stats";
      case Opcode::TraceDump: return "tracedump";
      case Opcode::SlowLog: return "slowlog";
      case Opcode::Subscribe: return "subscribe";
      case Opcode::Promote: return "promote";
      case Opcode::ReplAck: return "replack";
      case Opcode::ReplBatch: return "replbatch";
    }
    return "other";
}

WireStatus
wireStatusOf(const Status &s)
{
    switch (s.code()) {
      case StatusCode::Ok: return WireStatus::Ok;
      case StatusCode::NotFound: return WireStatus::NotFound;
      case StatusCode::Corruption: return WireStatus::Corruption;
      case StatusCode::IOError: return WireStatus::IOError;
      case StatusCode::InvalidArgument:
        return WireStatus::InvalidArgument;
      case StatusCode::NotSupported:
        return WireStatus::NotSupported;
      case StatusCode::IODegraded: return WireStatus::IODegraded;
    }
    return WireStatus::IOError;
}

Status
statusOfWire(WireStatus code, const std::string &msg)
{
    switch (code) {
      case WireStatus::Ok: return Status::ok();
      case WireStatus::NotFound: return Status::notFound(msg);
      case WireStatus::Corruption: return Status::corruption(msg);
      case WireStatus::IOError: return Status::ioError(msg);
      case WireStatus::InvalidArgument:
        return Status::invalidArgument(msg);
      case WireStatus::NotSupported:
        return Status::notSupported(msg);
      case WireStatus::IODegraded: return Status::ioDegraded(msg);
      case WireStatus::NotPrimary:
        // No StatusCode of its own: a follower rejecting a
        // mutation is a usage error, not an engine fault.
        return Status::notSupported("not primary: " + msg);
      case WireStatus::BadFrame:
        return Status::corruption("peer rejected frame: " + msg);
    }
    return Status::ioError("unknown wire status: " + msg);
}

void
appendFrame(Bytes &out, uint8_t type, uint32_t request_id,
            BytesView payload)
{
    out.reserve(out.size() + kFrameHeaderBytes + payload.size());
    out.push_back('E');
    out.push_back('K');
    out.push_back(static_cast<char>(kWireVersion));
    out.push_back(static_cast<char>(type));
    appendU32(out, request_id);
    appendU32(out, static_cast<uint32_t>(payload.size()));
    appendU64(out, xxhash64(payload));
    out.append(payload);
}

void
appendFrameTraced(Bytes &out, uint8_t type, uint32_t request_id,
                  BytesView payload, const TraceContext &trace)
{
    // The checksum covers the whole body (trace context +
    // payload), so bit flips in the trace id are caught like any
    // other body corruption.
    Bytes body;
    body.reserve(kTraceContextBytes + payload.size());
    appendU64(body, trace.id);
    body.push_back(static_cast<char>(trace.flags));
    body.append(payload);

    out.reserve(out.size() + kFrameHeaderBytes + body.size());
    out.push_back('E');
    out.push_back('K');
    out.push_back(static_cast<char>(kWireVersionTraced));
    out.push_back(static_cast<char>(type));
    appendU32(out, request_id);
    appendU32(out, static_cast<uint32_t>(body.size()));
    appendU64(out, xxhash64(body));
    out.append(body);
}

void
FrameReader::feed(BytesView data)
{
    if (broken_)
        return; // bytes after a framing error are undecodable
    // Compact lazily so long sessions don't grow the buffer.
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data);
}

Status
FrameReader::next(Frame &out)
{
    if (broken_)
        return Status::corruption("frame stream is broken");
    if (buf_.size() - pos_ < kFrameHeaderBytes)
        return Status::notFound(); // need more bytes
    BytesView head = BytesView(buf_).substr(pos_);
    if (head[0] != 'E' || head[1] != 'K') {
        broken_ = true;
        return Status::corruption("bad frame magic");
    }
    uint8_t version = static_cast<uint8_t>(head[2]);
    if (version != kWireVersion &&
        version != kWireVersionTraced) {
        broken_ = true;
        return Status::corruption(
            "unsupported protocol version " +
            std::to_string(version));
    }
    bool traced = version == kWireVersionTraced;
    if (traced && !accept_traced_) {
        broken_ = true;
        return Status::corruption(
            "traced frame rejected: peer pinned to wire v1");
    }
    uint32_t len = readU32(head, 8);
    if (len > max_payload_) {
        broken_ = true;
        return Status::corruption("frame payload of " +
                                  std::to_string(len) +
                                  " bytes exceeds limit");
    }
    if (traced && len < kTraceContextBytes) {
        broken_ = true;
        return Status::corruption(
            "traced frame body too short for trace context");
    }
    if (buf_.size() - pos_ < kFrameHeaderBytes + len)
        return Status::notFound(); // payload still in flight
    BytesView body = head.substr(kFrameHeaderBytes, len);
    if (xxhash64(body) != readU64(head, 12)) {
        broken_ = true;
        return Status::corruption("frame checksum mismatch");
    }
    out.type = static_cast<uint8_t>(head[3]);
    out.request_id = readU32(head, 4);
    if (traced) {
        out.has_trace = true;
        out.trace.id = readU64(body, 0);
        out.trace.flags = static_cast<uint8_t>(body[8]);
        out.payload.assign(body.substr(kTraceContextBytes));
    } else {
        out.has_trace = false;
        out.trace = TraceContext{};
        out.payload.assign(body);
    }
    pos_ += kFrameHeaderBytes + len;
    return Status::ok();
}

// -- Payload codecs ----------------------------------------------

void
encodeGet(Bytes &out, BytesView key)
{
    appendBlob(out, key);
}

void
encodePut(Bytes &out, BytesView key, BytesView value)
{
    appendBlob(out, key);
    appendBlob(out, value);
}

void
encodeDelete(Bytes &out, BytesView key)
{
    appendBlob(out, key);
}

void
encodeBatch(Bytes &out, const kv::WriteBatch &batch)
{
    appendVarint(out, batch.size());
    for (const kv::BatchEntry &e : batch.entries()) {
        out.push_back(static_cast<char>(e.op));
        appendBlob(out, e.key);
        if (e.op == kv::BatchOp::Put)
            appendBlob(out, e.value);
    }
}

void
encodeScan(Bytes &out, BytesView start, BytesView end,
           uint64_t limit)
{
    appendBlob(out, start);
    appendBlob(out, end);
    appendVarint(out, limit);
}

Status
decodeGet(BytesView payload, Bytes &key)
{
    size_t pos = 0;
    if (!readBlob(payload, pos, key))
        return malformed("GET key");
    if (pos != payload.size())
        return malformed("GET trailing bytes");
    return Status::ok();
}

Status
decodePut(BytesView payload, Bytes &key, Bytes &value)
{
    size_t pos = 0;
    if (!readBlob(payload, pos, key))
        return malformed("PUT key");
    if (!readBlob(payload, pos, value))
        return malformed("PUT value");
    if (pos != payload.size())
        return malformed("PUT trailing bytes");
    return Status::ok();
}

Status
decodeDelete(BytesView payload, Bytes &key)
{
    size_t pos = 0;
    if (!readBlob(payload, pos, key))
        return malformed("DELETE key");
    if (pos != payload.size())
        return malformed("DELETE trailing bytes");
    return Status::ok();
}

Status
decodeBatch(BytesView payload, kv::WriteBatch &batch)
{
    size_t pos = 0;
    uint64_t count = 0;
    if (!readVarint(payload, pos, count))
        return malformed("BATCH count");
    // Each entry is at least 2 bytes (op + empty-key varint); an
    // absurd count is rejected before any allocation.
    if (count > payload.size())
        return malformed("BATCH count exceeds payload");
    for (uint64_t i = 0; i < count; ++i) {
        if (pos >= payload.size())
            return malformed("BATCH truncated entry");
        auto op = static_cast<uint8_t>(payload[pos++]);
        if (op != static_cast<uint8_t>(kv::BatchOp::Put) &&
            op != static_cast<uint8_t>(kv::BatchOp::Delete)) {
            return malformed("BATCH bad op byte");
        }
        Bytes key;
        if (!readBlob(payload, pos, key))
            return malformed("BATCH key");
        if (op == static_cast<uint8_t>(kv::BatchOp::Put)) {
            Bytes value;
            if (!readBlob(payload, pos, value))
                return malformed("BATCH value");
            batch.put(key, value);
        } else {
            batch.del(key);
        }
    }
    if (pos != payload.size())
        return malformed("BATCH trailing bytes");
    return Status::ok();
}

Status
decodeScan(BytesView payload, Bytes &start, Bytes &end,
           uint64_t &limit)
{
    size_t pos = 0;
    if (!readBlob(payload, pos, start))
        return malformed("SCAN start");
    if (!readBlob(payload, pos, end))
        return malformed("SCAN end");
    if (!readVarint(payload, pos, limit))
        return malformed("SCAN limit");
    if (pos != payload.size())
        return malformed("SCAN trailing bytes");
    return Status::ok();
}

void
encodeScanResponse(Bytes &out, const std::vector<ScanEntry> &entries,
                   bool truncated)
{
    appendVarint(out, entries.size());
    for (const ScanEntry &e : entries) {
        appendBlob(out, e.key);
        appendBlob(out, e.value);
    }
    out.push_back(truncated ? 1 : 0);
}

// -- Replication payloads ----------------------------------------

void
encodeSubscribe(Bytes &out, uint64_t resume_offset)
{
    appendVarint(out, resume_offset);
}

Status
decodeSubscribe(BytesView payload, uint64_t &resume_offset)
{
    size_t pos = 0;
    if (!readVarint(payload, pos, resume_offset))
        return malformed("SUBSCRIBE offset");
    if (pos != payload.size())
        return malformed("SUBSCRIBE trailing bytes");
    return Status::ok();
}

void
encodeSubscribeResponse(Bytes &out, uint64_t resume_offset,
                        uint64_t end_offset)
{
    appendVarint(out, resume_offset);
    appendVarint(out, end_offset);
}

Status
decodeSubscribeResponse(BytesView payload, uint64_t &resume_offset,
                        uint64_t &end_offset)
{
    size_t pos = 0;
    if (!readVarint(payload, pos, resume_offset))
        return malformed("SUBSCRIBE response offset");
    if (!readVarint(payload, pos, end_offset))
        return malformed("SUBSCRIBE response end");
    if (pos != payload.size())
        return malformed("SUBSCRIBE response trailing bytes");
    return Status::ok();
}

void
encodeReplBatch(Bytes &out, uint64_t start_offset, uint64_t log_end,
                uint64_t last_seq, BytesView records)
{
    appendVarint(out, start_offset);
    appendVarint(out, log_end);
    appendVarint(out, last_seq);
    out.append(records);
}

Status
decodeReplBatch(BytesView payload, uint64_t &start_offset,
                uint64_t &log_end, uint64_t &last_seq,
                BytesView &records)
{
    size_t pos = 0;
    if (!readVarint(payload, pos, start_offset))
        return malformed("REPLBATCH offset");
    if (!readVarint(payload, pos, log_end))
        return malformed("REPLBATCH log end");
    if (!readVarint(payload, pos, last_seq))
        return malformed("REPLBATCH last seq");
    records = payload.substr(pos);
    return Status::ok();
}

void
encodeReplAck(Bytes &out, uint64_t applied_offset,
              uint64_t applied_seq)
{
    appendVarint(out, applied_offset);
    appendVarint(out, applied_seq);
}

Status
decodeReplAck(BytesView payload, uint64_t &applied_offset,
              uint64_t &applied_seq)
{
    size_t pos = 0;
    if (!readVarint(payload, pos, applied_offset))
        return malformed("REPLACK offset");
    if (!readVarint(payload, pos, applied_seq))
        return malformed("REPLACK seq");
    if (pos != payload.size())
        return malformed("REPLACK trailing bytes");
    return Status::ok();
}

void
encodePromoteResponse(Bytes &out, uint64_t end_offset)
{
    appendVarint(out, end_offset);
}

Status
decodePromoteResponse(BytesView payload, uint64_t &end_offset)
{
    size_t pos = 0;
    if (!readVarint(payload, pos, end_offset))
        return malformed("PROMOTE response offset");
    if (pos != payload.size())
        return malformed("PROMOTE response trailing bytes");
    return Status::ok();
}

Status
decodeScanResponse(BytesView payload, std::vector<ScanEntry> &entries,
                   bool &truncated)
{
    size_t pos = 0;
    uint64_t count = 0;
    if (!readVarint(payload, pos, count))
        return malformed("SCAN response count");
    if (count > payload.size())
        return malformed("SCAN response count exceeds payload");
    entries.clear();
    entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        ScanEntry e;
        if (!readBlob(payload, pos, e.key))
            return malformed("SCAN response key");
        if (!readBlob(payload, pos, e.value))
            return malformed("SCAN response value");
        entries.push_back(std::move(e));
    }
    if (pos + 1 != payload.size())
        return malformed("SCAN response trailer");
    truncated = payload[pos] != 0;
    return Status::ok();
}

} // namespace ethkv::server
