/**
 * @file
 * Primary/backup replication over the ethkv wire protocol
 * (DESIGN.md §13).
 *
 * One ReplicationHub per ethkvd process owns the node's replication
 * role and machinery:
 *
 *  - Both roles keep a ReplicationLog (kvstore/repl_log.hh): the
 *    primary appends every mutation it acknowledges; a follower
 *    appends the primary's record bytes VERBATIM, so byte offsets
 *    are one global address space and survive failover.
 *  - ReplicatedKVStore is the engine decorator that makes "apply to
 *    engine" + "append to log" one atomic, totally ordered step —
 *    without it two racing writers could commit to the engine in
 *    one order and the log in the other, and a follower would
 *    diverge on last-writer-wins keys.
 *  - On the primary a sender thread streams the log to subscribed
 *    followers: an epoll loop over subscriber sockets with
 *    per-follower backpressure (bounded out-buffer; reads from the
 *    log only when the pipe drains), batched reads Ira-style, ack
 *    processing, and — in sync-ack mode — completion of write
 *    acknowledgements that the server deferred until the data
 *    reached every live follower.
 *  - On a follower a client thread subscribes to the primary with
 *    a resume-from-offset handshake, replays batches into the
 *    engine, acks applied offsets, reconnects with exponential
 *    backoff + jitter, and latches sticky read-only degraded mode
 *    if replay hits an IOError (a follower applying a partial
 *    stream is worse than one that stopped).
 *
 * The server consults the hub for role checks (mutations on a
 * follower fail with WireStatus::NotPrimary), hands SUBSCRIBE
 * connections to the sender, executes PROMOTE by draining the
 * follower and flipping the role, and defers mutation acks through
 * the AckWaiter queue when sync acks are on.
 *
 * All sockets go through server/net_socket.hh (the `direct-net`
 * lint rule holds for this module too); all file I/O goes through
 * the Env seam, so every failure path here is fault-injectable.
 */

#ifndef ETHKV_SERVER_REPLICATION_HH
#define ETHKV_SERVER_REPLICATION_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "common/lock_ranks.hh"
#include "common/mutex.hh"
#include "common/status.hh"
#include "kvstore/kvstore.hh"
#include "kvstore/repl_log.hh"
#include "obs/metrics.hh"

namespace ethkv::server
{

struct ReplicationOptions
{
    /** Directory for the replication log segments. */
    std::string dir;
    uint64_t segment_bytes = 4u << 20;
    /** fdatasync log appends (wire from --sync: the shipping log
     *  must be as durable as the engine WAL or a restarted primary
     *  offers followers less than it acknowledged). */
    bool sync_appends = false;

    /** Hold mutation acks until every live follower acked the
     *  write (semi-sync). With no subscriber attached this
     *  degenerates to async. */
    bool sync_acks = false;
    /** Fail-open deadline for sync acks: a follower that has not
     *  acked within this window is dropped (it will reconnect and
     *  catch up) and the writes complete. */
    int ack_timeout_ms = 5000;

    /** Non-empty host = start as a follower of this primary. */
    std::string primary_host;
    uint16_t primary_port = 0;

    int connect_timeout_ms = 2000;
    /** Follower receive tick: also bounds how stale its heartbeat
     *  ack and lag gauges can get. */
    int io_timeout_ms = 500;
    int backoff_min_ms = 50;
    int backoff_max_ms = 2000;
    uint64_t seed = 0; //!< Backoff jitter seed (0 = from clock).

    /** Sender read window per REPLBATCH frame. */
    uint64_t batch_bytes = 256u << 10;
    /** Per-subscriber out-buffer cap: stop reading the log for a
     *  follower whose socket is this far behind. */
    uint64_t subscriber_backlog_bytes = 4u << 20;

    Env *env = nullptr;                      //!< nullptr = Posix.
    obs::MetricsRegistry *metrics = nullptr; //!< nullptr = global.
};

class ReplicationHub;
class ReplicationSender;
class FollowerClient;

/**
 * Engine decorator owned by the hub: mutations take one mutex
 * across the base-store apply and the log append, establishing the
 * total order replication ships. Reads pass through unlocked (the
 * base store is already safe for concurrent callers).
 */
class ReplicatedKVStore final : public kv::KVStore
{
  public:
    ReplicatedKVStore(kv::KVStore &base, kv::ReplicationLog &log,
                      ReplicationHub &hub);

    Status put(BytesView key, BytesView value) override;
    Status get(BytesView key, Bytes &value) override;
    Status del(BytesView key) override;
    Status scan(BytesView start, BytesView end,
                const kv::ScanCallback &cb) override;
    Status apply(const kv::WriteBatch &batch) override;
    bool contains(BytesView key) override;
    Status flush() override;
    const kv::IOStats &stats() const override;
    std::string name() const override;
    uint64_t liveKeyCount() override;

    /**
     * Follower replay: apply pre-framed record bytes received from
     * the primary, appending the same bytes to the local log.
     *
     * @param applied_seq Receives the last sequence applied.
     * @param applied_records Receives the record count applied.
     */
    Status applyReplicaBytes(BytesView records,
                             uint64_t &applied_seq,
                             uint64_t &applied_records);

  private:
    kv::KVStore &base_;
    kv::ReplicationLog &log_;
    ReplicationHub &hub_;
    Mutex mutex_{lock_ranks::kReplStore};
    uint64_t next_seq_ GUARDED_BY(mutex_) = 1;
};

/** Replication role of this node (changes once, on PROMOTE). */
enum class ReplRole
{
    Primary,
    Follower,
};

class ReplicationHub
{
  public:
    /** Open the log and build the hub (threads start later). */
    static Result<std::unique_ptr<ReplicationHub>> open(
        const ReplicationOptions &options);

    ~ReplicationHub();

    ReplicationHub(const ReplicationHub &) = delete;
    ReplicationHub &operator=(const ReplicationHub &) = delete;

    /** Decorate the engine. Call exactly once, before start(). */
    kv::KVStore &wrap(kv::KVStore &base);

    /** Start the follower stream (no-op on a primary; the sender
     *  starts lazily with the first subscriber). */
    Status start();

    /** Drain send queues / stop streaming, then stop all threads.
     *  Pending sync acks are completed (the data is locally
     *  durable; the follower re-requests what it missed). Called
     *  from Server::stop() before the engine flush. Idempotent. */
    void flushAndStop();

    bool isPrimary() const
    {
        return role_.load(std::memory_order_acquire) ==
               ReplRole::Primary;
    }

    /** Sticky: follower replay hit an engine IOError. */
    bool isDegraded() const
    {
        return degraded_.load(std::memory_order_acquire);
    }

    /**
     * PROMOTE: drain the replay queue, stop the follower stream,
     * flip to primary. Idempotent (promoting a primary is Ok).
     * Fails with IODegraded when replay latched degraded mode —
     * promoting a wedged follower would serve a torn prefix.
     *
     * @param end_offset Receives the promoted log end.
     */
    Status promote(uint64_t *end_offset);

    uint64_t endOffset() const { return log_->endOffset(); }
    kv::ReplicationLog &log() { return *log_; }

    // -- Server integration (primary side) -----------------------

    /** Identity of a parked mutation ack inside the server. */
    struct AckWaiter
    {
        uint32_t worker = 0;
        uint64_t conn_tag = 0;
        uint64_t conn_id = 0;
    };

    /** Called from the sender thread with waiters whose target
     *  offset every live follower has acked (or that timed out
     *  fail-open). The server re-queues them onto worker loops. */
    using AckDelivery =
        std::function<void(std::vector<AckWaiter> &&)>;

    void setAckDelivery(AckDelivery cb);

    /** Called after follower replay applies records, with every
     *  mutated key — replayed batches change the store beneath any
     *  cache tier stacked above it, so ethkvd registers the cache
     *  invalidation here. Set once before start(), like the ack
     *  delivery; invoked with no replication lock held. */
    using InvalidationHook =
        std::function<void(const std::vector<Bytes> &)>;

    void setInvalidationHook(InvalidationHook cb);

    /** True when the server should park this mutation's ack until
     *  the sender confirms follower acks. */
    bool deferAcks() const;

    /** Park one ack until min-acked >= target_offset. */
    void enqueueAckWaiter(uint64_t target_offset,
                          const AckWaiter &waiter);

    /**
     * Hand a SUBSCRIBE connection's fd to the sender. first_bytes
     * (the Ok response plus any unflushed output) is written before
     * streaming begins; resume_offset must be a validated record
     * boundary <= endOffset() (the server checks against
     * endOffset(); the log rejects misaligned offsets on read).
     * The hub owns the fd from here on, success or failure.
     */
    Status adoptSubscriber(int fd, uint64_t resume_offset,
                           Bytes first_bytes);

    /** Live subscriber count (primary). */
    uint64_t subscriberCount() const;

    /** Tear down every subscriber socket (tests exercise the
     *  follower's reconnect + resume path with this). */
    void dropSubscribersForTest();

  private:
    friend class ReplicatedKVStore;
    friend class ReplicationSender;
    friend class FollowerClient;

    explicit ReplicationHub(const ReplicationOptions &options);

    /** New bytes are in the log: wake the sender. */
    void publish();

    /** Follower replay hit an IOError: latch degraded mode. */
    void enterDegraded(const Status &cause);

    /** Sender thread -> server: completed sync-ack waiters. */
    void deliverAcks(std::vector<AckWaiter> &&waiters);

    /** Replay thread -> cache tier: keys mutated by replica
     *  replay (fires the invalidation hook, if any). */
    void notifyReplicaApplied(const std::vector<Bytes> &keys);

    Status startSenderLocked() REQUIRES(mutex_);

    ReplicationOptions options_;
    Env *env_;
    obs::MetricsRegistry &metrics_;

    std::unique_ptr<kv::ReplicationLog> log_;
    std::unique_ptr<ReplicatedKVStore> store_;

    std::atomic<ReplRole> role_{ReplRole::Primary};
    std::atomic<bool> degraded_{false};
    std::atomic<bool> stopped_{false};

    /** Guards thread lifecycle (start/promote/stop) — the
     *  outermost replication lock; transitions are rare. */
    mutable Mutex mutex_{lock_ranks::kReplHub};
    std::unique_ptr<ReplicationSender> sender_ GUARDED_BY(mutex_);
    std::unique_ptr<FollowerClient> follower_ GUARDED_BY(mutex_);
    /** Lock-free handle for the hot-path publish(). */
    std::atomic<ReplicationSender *> sender_ptr_{nullptr};

    /** Set once before the server starts serving; read by the
     *  sender thread only after a subscriber exists. */
    AckDelivery ack_delivery_;

    /** Set once before serving; read by the replay thread only. */
    InvalidationHook invalidation_hook_;

    // Metrics (shared by both roles; see DESIGN.md §13).
    obs::Gauge *lag_bytes_;
    obs::Gauge *lag_records_;
    obs::Gauge *follower_connected_;
    obs::Gauge *follower_degraded_;
    obs::Counter *reconnects_;
    obs::Counter *batches_shipped_;
    obs::Counter *records_applied_;
    obs::Counter *batches_received_;
    obs::Counter *acks_received_;
    obs::Counter *replay_errors_;
    obs::Gauge *subscribers_;
    obs::Gauge *send_queue_bytes_;
    obs::Gauge *sync_acks_pending_;
    obs::Counter *subscribers_dropped_;
    obs::Counter *promotions_;
};

} // namespace ethkv::server

#endif // ETHKV_SERVER_REPLICATION_HH
