#include "server/client.hh"

#include <chrono>

#include "server/net_socket.hh"

namespace ethkv::server
{

namespace
{

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Read frames off a blocking fd until the reader yields one.
 * Shared by both clients.
 *
 * With io_timeout_ms > 0 the fd has SO_RCVTIMEO set, so a read
 * that stalls past the budget surfaces as WouldBlock — on a
 * blocking fd that means "timed out", and we fail the call rather
 * than wait on a server that stopped answering.
 */
Status
recvFrame(int fd, FrameReader &reader, Bytes &scratch, Frame &out,
          int io_timeout_ms)
{
    while (true) {
        Status s = reader.next(out);
        if (s.isOk())
            return s;
        if (!s.isNotFound())
            return s; // framing corruption from the server
        scratch.clear();
        size_t n = 0;
        Status err;
        switch (net::readSome(fd, scratch, 64u << 10, n, err)) {
          case net::IoResult::Ok:
            reader.feed(scratch);
            break;
          case net::IoResult::Eof:
            return Status::ioError("server closed the connection");
          case net::IoResult::WouldBlock: {
            if (io_timeout_ms > 0) {
                return Status::ioError(
                    "read timed out after " +
                    std::to_string(io_timeout_ms) + " ms");
            }
            Status w = net::waitReadable(fd, -1);
            if (!w.isOk())
                return w;
            break;
          }
          case net::IoResult::Error:
            return err;
        }
    }
}

/**
 * Connect + apply per-call I/O bounds; shared by both opens.
 */
Result<int>
openSocket(const std::string &host, uint16_t port,
           const ClientOptions &opts)
{
    auto fd = net::connectTcpTimeout(host, port,
                                     opts.connect_timeout_ms);
    if (!fd.ok())
        return fd.status();
    if (opts.io_timeout_ms > 0) {
        Status s = net::setIoTimeouts(fd.value(),
                                      opts.io_timeout_ms,
                                      opts.io_timeout_ms);
        if (!s.isOk()) {
            net::closeFd(fd.value());
            return s;
        }
    }
    return fd;
}

/** Turn a response frame into a Status (Ok keeps payload as data). */
Status
responseStatus(const Frame &reply)
{
    auto code = static_cast<WireStatus>(reply.type);
    if (code == WireStatus::Ok)
        return Status::ok();
    return statusOfWire(code, reply.payload);
}

/** Chrome-trace process id for client-side spans (server = 1). */
constexpr uint32_t kClientTracePid = 2;

/** One client-side span covering send → response. */
void
emitClientSpan(obs::TraceEventLog *log, Opcode op, uint32_t tid,
               uint64_t start_ns, uint64_t end_ns,
               uint64_t trace_id)
{
    obs::TraceEventLog::Span span;
    span.name = std::string("cli.") +
                opcodeName(static_cast<uint8_t>(op));
    span.category = "client";
    uint64_t now_ns = nowNs();
    uint64_t now_us = log->nowUs();
    span.start_us = now_us - (now_ns - start_ns) / 1000;
    span.duration_us = (end_ns - start_ns) / 1000;
    span.pid = kClientTracePid;
    span.tid = tid;
    span.arg_name = "trace_id";
    span.arg_value = trace_id;
    span.has_arg = true;
    log->addSpanFull(span);
}

} // namespace

// -- Client ------------------------------------------------------

Result<std::unique_ptr<Client>>
Client::open(const std::string &host, uint16_t port,
             const ClientOptions &opts)
{
    auto fd = openSocket(host, port, opts);
    if (!fd.ok())
        return fd.status();
    return std::unique_ptr<Client>(
        new Client(fd.value(), opts.io_timeout_ms));
}

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        net::closeFd(fd_);
        fd_ = -1;
    }
}

void
Client::enableTrace(obs::TraceEventLog *log,
                    uint64_t trace_id_base, uint32_t tid)
{
    trace_log_ = log;
    trace_id_next_ = trace_id_base;
    trace_tid_ = tid;
    if (log)
        log->setProcessLabel(kClientTracePid, "client");
}

Status
Client::roundTrip(Opcode op, BytesView payload, Frame &reply)
{
    if (fd_ < 0)
        return Status::ioError("client is closed");
    uint32_t id = next_id_++;
    bool traced = trace_log_ != nullptr;
    uint64_t trace_id = 0;
    Bytes frame;
    if (traced) {
        trace_id = trace_id_next_++;
        appendFrameTraced(frame, static_cast<uint8_t>(op), id,
                          payload,
                          {trace_id, kTraceFlagSampled});
    } else {
        appendFrame(frame, static_cast<uint8_t>(op), id, payload);
    }
    uint64_t start_ns = nowNs();
    Status s = net::writeAllTimed(
        fd_, frame, io_timeout_ms_ > 0 ? io_timeout_ms_ : -1);
    if (!s.isOk())
        return s;

    FrameReader reader; // one frame per round trip: local reader
    s = recvFrame(fd_, reader, scratch_, reply, io_timeout_ms_);
    if (!s.isOk())
        return s;
    if (reply.request_id != id) {
        return Status::corruption(
            "response id mismatch: sent " + std::to_string(id) +
            ", got " + std::to_string(reply.request_id));
    }
    if (traced)
        emitClientSpan(trace_log_, op, trace_tid_, start_ns,
                       nowNs(), trace_id);
    return Status::ok();
}

Status
Client::get(BytesView key, Bytes &value_out)
{
    Bytes payload;
    encodeGet(payload, key);
    Frame reply;
    Status s = roundTrip(Opcode::Get, payload, reply);
    if (!s.isOk())
        return s;
    s = responseStatus(reply);
    if (s.isOk())
        value_out = std::move(reply.payload);
    return s;
}

Status
Client::put(BytesView key, BytesView value)
{
    Bytes payload;
    encodePut(payload, key, value);
    Frame reply;
    Status s = roundTrip(Opcode::Put, payload, reply);
    return s.isOk() ? responseStatus(reply) : s;
}

Status
Client::del(BytesView key)
{
    Bytes payload;
    encodeDelete(payload, key);
    Frame reply;
    Status s = roundTrip(Opcode::Delete, payload, reply);
    return s.isOk() ? responseStatus(reply) : s;
}

Status
Client::apply(const kv::WriteBatch &batch)
{
    Bytes payload;
    encodeBatch(payload, batch);
    Frame reply;
    Status s = roundTrip(Opcode::Batch, payload, reply);
    return s.isOk() ? responseStatus(reply) : s;
}

Status
Client::scan(BytesView start, BytesView end, uint64_t limit,
             ScanResult &out)
{
    Bytes payload;
    encodeScan(payload, start, end, limit);
    Frame reply;
    Status s = roundTrip(Opcode::Scan, payload, reply);
    if (!s.isOk())
        return s;
    s = responseStatus(reply);
    if (!s.isOk())
        return s;
    return decodeScanResponse(reply.payload, out.entries,
                              out.truncated);
}

Status
Client::stats(Bytes &json_out)
{
    Frame reply;
    Status s = roundTrip(Opcode::Stats, BytesView(), reply);
    if (!s.isOk())
        return s;
    s = responseStatus(reply);
    if (s.isOk())
        json_out = std::move(reply.payload);
    return s;
}

Status
Client::traceDump(Bytes &json_out)
{
    Frame reply;
    Status s = roundTrip(Opcode::TraceDump, BytesView(), reply);
    if (!s.isOk())
        return s;
    s = responseStatus(reply);
    if (s.isOk())
        json_out = std::move(reply.payload);
    return s;
}

Status
Client::promote(uint64_t &end_offset)
{
    Frame reply;
    Status s = roundTrip(Opcode::Promote, BytesView(), reply);
    if (!s.isOk())
        return s;
    s = responseStatus(reply);
    if (!s.isOk())
        return s;
    return decodePromoteResponse(reply.payload, end_offset);
}

Status
Client::slowLog(Bytes &json_out)
{
    Frame reply;
    Status s = roundTrip(Opcode::SlowLog, BytesView(), reply);
    if (!s.isOk())
        return s;
    s = responseStatus(reply);
    if (s.isOk())
        json_out = std::move(reply.payload);
    return s;
}

// -- PipelinedClient ---------------------------------------------

Result<std::unique_ptr<PipelinedClient>>
PipelinedClient::open(const std::string &host, uint16_t port,
                      size_t window, Completion on_complete,
                      const ClientOptions &opts)
{
    if (window == 0)
        return Status::invalidArgument("window must be >= 1");
    auto fd = openSocket(host, port, opts);
    if (!fd.ok())
        return fd.status();
    return std::unique_ptr<PipelinedClient>(new PipelinedClient(
        fd.value(), opts.io_timeout_ms, window,
        std::move(on_complete)));
}

PipelinedClient::~PipelinedClient()
{
    close();
}

void
PipelinedClient::close()
{
    if (fd_ >= 0) {
        net::closeFd(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

void
PipelinedClient::enableTrace(obs::TraceEventLog *log,
                             uint64_t trace_id_base, uint32_t tid)
{
    trace_log_ = log;
    trace_id_next_ = trace_id_base;
    trace_tid_ = tid;
    if (log)
        log->setProcessLabel(kClientTracePid, "client");
}

Status
PipelinedClient::submit(Opcode op, BytesView payload)
{
    if (fd_ < 0)
        return Status::ioError("client is closed");
    // Window full: finish the oldest request before sending more.
    if (pending_.size() >= window_) {
        Status s = reapOne();
        if (!s.isOk())
            return s;
    }
    uint32_t id = next_id_++;
    bool traced = trace_log_ != nullptr;
    uint64_t trace_id = 0;
    Bytes frame;
    if (traced) {
        trace_id = trace_id_next_++;
        appendFrameTraced(frame, static_cast<uint8_t>(op), id,
                          payload,
                          {trace_id, kTraceFlagSampled});
    } else {
        appendFrame(frame, static_cast<uint8_t>(op), id, payload);
    }
    Status s = net::writeAllTimed(
        fd_, frame, io_timeout_ms_ > 0 ? io_timeout_ms_ : -1);
    if (!s.isOk())
        return s;
    pending_.push_back({id, op, nowNs(), trace_id, traced});
    return Status::ok();
}

Status
PipelinedClient::reapOne()
{
    if (pending_.empty())
        return Status::ok();
    Frame reply;
    Status s = recvFrame(fd_, reader_, scratch_, reply,
                         io_timeout_ms_);
    if (!s.isOk())
        return s;
    Pending oldest = pending_.front();
    pending_.pop_front();
    // Responses are FIFO per connection; a mismatched id means the
    // server and client disagree about the stream.
    if (reply.request_id != oldest.id) {
        return Status::corruption(
            "pipelined response out of order: expected " +
            std::to_string(oldest.id) + ", got " +
            std::to_string(reply.request_id));
    }
    uint64_t end_ns = nowNs();
    if (oldest.traced && trace_log_) {
        emitClientSpan(trace_log_, oldest.op, trace_tid_,
                       oldest.t_start_ns, end_ns,
                       oldest.trace_id);
    }
    if (on_complete_) {
        on_complete_(oldest.op,
                     static_cast<WireStatus>(reply.type),
                     end_ns - oldest.t_start_ns, reply.payload);
    }
    return Status::ok();
}

Status
PipelinedClient::drain()
{
    while (!pending_.empty()) {
        Status s = reapOne();
        if (!s.isOk())
            return s;
    }
    return Status::ok();
}

Status
PipelinedClient::submitGet(BytesView key)
{
    Bytes payload;
    encodeGet(payload, key);
    return submit(Opcode::Get, payload);
}

Status
PipelinedClient::submitPut(BytesView key, BytesView value)
{
    Bytes payload;
    encodePut(payload, key, value);
    return submit(Opcode::Put, payload);
}

Status
PipelinedClient::submitDelete(BytesView key)
{
    Bytes payload;
    encodeDelete(payload, key);
    return submit(Opcode::Delete, payload);
}

Status
PipelinedClient::submitBatch(const kv::WriteBatch &batch)
{
    Bytes payload;
    encodeBatch(payload, batch);
    return submit(Opcode::Batch, payload);
}

Status
PipelinedClient::submitScan(BytesView start, BytesView end,
                            uint64_t limit)
{
    Bytes payload;
    encodeScan(payload, start, end, limit);
    return submit(Opcode::Scan, payload);
}

} // namespace ethkv::server
