#include "server/net_socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ethkv::server::net
{

namespace
{

Status
errnoStatus(const char *what)
{
    return Status::ioError(std::string(what) + ": " +
                           std::strerror(errno));
}

/** Fill a sockaddr_in from a dotted-quad host string. */
Status
makeAddr(const std::string &host, uint16_t port,
         sockaddr_in &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty() || host == "0.0.0.0") {
        addr.sin_addr.s_addr = htonl(INADDR_ANY);
        return Status::ok();
    }
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status::invalidArgument(
            "not an IPv4 address: " + host);
    }
    return Status::ok();
}

} // namespace

Result<int>
listenTcp(const std::string &host, uint16_t port, int backlog)
{
    sockaddr_in addr;
    Status s = makeAddr(host, port, addr);
    if (!s.isOk())
        return s;
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return errnoStatus("socket");
    int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) != 0) {
        Status e = errnoStatus("setsockopt(SO_REUSEADDR)");
        ::close(fd);
        return e;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status e = errnoStatus("bind");
        ::close(fd);
        return e;
    }
    if (::listen(fd, backlog) != 0) {
        Status e = errnoStatus("listen");
        ::close(fd);
        return e;
    }
    s = setNonBlocking(fd, true);
    if (!s.isOk()) {
        ::close(fd);
        return s;
    }
    return fd;
}

Result<int>
connectTcp(const std::string &host, uint16_t port)
{
    sockaddr_in addr;
    Status s = makeAddr(host.empty() ? "127.0.0.1" : host, port,
                        addr);
    if (!s.isOk())
        return s;
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return errnoStatus("socket");
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        Status e = errnoStatus("connect");
        ::close(fd);
        return e;
    }
    s = setNoDelay(fd);
    if (!s.isOk()) {
        ::close(fd);
        return s;
    }
    return fd;
}

Result<int>
connectTcpTimeout(const std::string &host, uint16_t port,
                  int timeout_ms)
{
    if (timeout_ms <= 0)
        return connectTcp(host, port);
    sockaddr_in addr;
    Status s = makeAddr(host.empty() ? "127.0.0.1" : host, port,
                        addr);
    if (!s.isOk())
        return s;
    int fd = ::socket(AF_INET,
                      SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK,
                      0);
    if (fd < 0)
        return errnoStatus("socket");
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && errno != EINPROGRESS) {
        Status e = errnoStatus("connect");
        ::close(fd);
        return e;
    }
    if (rc != 0) {
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        do {
            rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0) {
            ::close(fd);
            return Status::ioError("connect timed out after " +
                                   std::to_string(timeout_ms) +
                                   " ms");
        }
        if (rc < 0) {
            Status e = errnoStatus("poll(connect)");
            ::close(fd);
            return e;
        }
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error,
                         &len) != 0 ||
            so_error != 0) {
            ::close(fd);
            return Status::ioError(
                std::string("connect: ") +
                std::strerror(so_error ? so_error : errno));
        }
    }
    s = setNonBlocking(fd, false);
    if (s.isOk())
        s = setNoDelay(fd);
    if (!s.isOk()) {
        ::close(fd);
        return s;
    }
    return fd;
}

Status
setIoTimeouts(int fd, int recv_timeout_ms, int send_timeout_ms)
{
    auto toTimeval = [](int ms) {
        timeval tv;
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        return tv;
    };
    timeval tv = toTimeval(recv_timeout_ms < 0 ? 0
                                               : recv_timeout_ms);
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv)) != 0) {
        return errnoStatus("setsockopt(SO_RCVTIMEO)");
    }
    tv = toTimeval(send_timeout_ms < 0 ? 0 : send_timeout_ms);
    if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                     sizeof(tv)) != 0) {
        return errnoStatus("setsockopt(SO_SNDTIMEO)");
    }
    return Status::ok();
}

Result<uint16_t>
localPort(int fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        return errnoStatus("getsockname");
    }
    return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int>
acceptOn(int listen_fd)
{
    int fd;
    do {
        fd = ::accept4(listen_fd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return Status::notFound("no pending connection");
        return errnoStatus("accept");
    }
    // Nagle off: responses are small frames and latency-sensitive.
    Status s = setNoDelay(fd);
    if (!s.isOk()) {
        ::close(fd);
        return s;
    }
    return fd;
}

Status
setNonBlocking(int fd, bool enable)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return errnoStatus("fcntl(F_GETFL)");
    if (enable)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    if (::fcntl(fd, F_SETFL, flags) < 0)
        return errnoStatus("fcntl(F_SETFL)");
    return Status::ok();
}

Status
setNoDelay(int fd)
{
    int one = 1;
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one)) != 0) {
        return errnoStatus("setsockopt(TCP_NODELAY)");
    }
    return Status::ok();
}

IoResult
readSome(int fd, Bytes &buf, size_t cap, size_t &n, Status &err)
{
    n = 0;
    size_t old = buf.size();
    buf.resize(old + cap);
    ssize_t rc;
    do {
        rc = ::read(fd, buf.data() + old, cap);
    } while (rc < 0 && errno == EINTR);
    if (rc > 0) {
        buf.resize(old + static_cast<size_t>(rc));
        n = static_cast<size_t>(rc);
        return IoResult::Ok;
    }
    buf.resize(old);
    if (rc == 0)
        return IoResult::Eof;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
        return IoResult::WouldBlock;
    err = errnoStatus("read");
    return IoResult::Error;
}

IoResult
writeSome(int fd, BytesView data, size_t &n, Status &err)
{
    n = 0;
    ssize_t rc;
    do {
        // MSG_NOSIGNAL: a peer that closed mid-write must surface
        // as EPIPE (IoResult::Error), not kill the process — the
        // library is used by tools that do not install a SIGPIPE
        // handler. Non-socket fds (tests over pipes) fall back to
        // plain write(2).
        rc = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (rc < 0 && errno == ENOTSOCK)
            rc = ::write(fd, data.data(), data.size());
    } while (rc < 0 && errno == EINTR);
    if (rc >= 0) {
        n = static_cast<size_t>(rc);
        return IoResult::Ok;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
        return IoResult::WouldBlock;
    err = errnoStatus("write");
    return IoResult::Error;
}

Status
writeAll(int fd, BytesView data)
{
    while (!data.empty()) {
        size_t n = 0;
        Status err;
        switch (writeSome(fd, data, n, err)) {
          case IoResult::Ok:
            data.remove_prefix(n);
            break;
          case IoResult::WouldBlock: {
            // Blocking fd should not return EAGAIN, but a socket
            // with a send timeout can; wait for buffer space.
            pollfd pfd;
            pfd.fd = fd;
            pfd.events = POLLOUT;
            pfd.revents = 0;
            int rc;
            do {
                rc = ::poll(&pfd, 1, 1000);
            } while (rc < 0 && errno == EINTR);
            break;
          }
          case IoResult::Eof:
            return Status::ioError("write: peer closed");
          case IoResult::Error:
            return err;
        }
    }
    return Status::ok();
}

Status
writeAllTimed(int fd, BytesView data, int timeout_ms)
{
    if (timeout_ms < 0)
        return writeAll(fd, data);
    while (!data.empty()) {
        size_t n = 0;
        Status err;
        switch (writeSome(fd, data, n, err)) {
          case IoResult::Ok:
            data.remove_prefix(n);
            break;
          case IoResult::WouldBlock: {
            // Non-blocking fd, or a blocking fd whose SO_SNDTIMEO
            // expired: give it one bounded poll, then give up.
            pollfd pfd;
            pfd.fd = fd;
            pfd.events = POLLOUT;
            pfd.revents = 0;
            int rc;
            do {
                rc = ::poll(&pfd, 1, timeout_ms);
            } while (rc < 0 && errno == EINTR);
            if (rc == 0) {
                return Status::ioError(
                    "write timed out after " +
                    std::to_string(timeout_ms) + " ms");
            }
            if (rc < 0)
                return errnoStatus("poll(write)");
            // Writable again; retry. A peer that stays congested
            // trips the SO_SNDTIMEO path on the next writeSome and
            // lands back here — each wait is bounded, and a dead
            // peer resolves to EPIPE/ECONNRESET, so this cannot
            // spin forever without progress.
            break;
          }
          case IoResult::Eof:
            return Status::ioError("write: peer closed");
          case IoResult::Error:
            return err;
        }
    }
    return Status::ok();
}

Status
readExactly(int fd, size_t n, Bytes &out)
{
    while (n > 0) {
        size_t got = 0;
        Status err;
        switch (readSome(fd, out, n, got, err)) {
          case IoResult::Ok:
            n -= got;
            break;
          case IoResult::Eof:
            return Status::ioError(
                "read: connection closed mid-frame");
          case IoResult::WouldBlock: {
            Status w = waitReadable(fd, 1000);
            static_cast<void>(w.isOk());
            break;
          }
          case IoResult::Error:
            return err;
        }
    }
    return Status::ok();
}

Result<int>
epollCreate()
{
    int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0)
        return errnoStatus("epoll_create1");
    return fd;
}

namespace
{

uint32_t
toEpollBits(uint32_t events)
{
    uint32_t bits = 0;
    if (events & kEventRead)
        bits |= EPOLLIN;
    if (events & kEventWrite)
        bits |= EPOLLOUT;
    bits |= EPOLLRDHUP; // always observe half-close
    return bits;
}

Status
epollCtl(int epfd, int op, int fd, uint32_t events, uint64_t tag)
{
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = toEpollBits(events);
    ev.data.u64 = tag;
    if (::epoll_ctl(epfd, op, fd, &ev) != 0)
        return errnoStatus("epoll_ctl");
    return Status::ok();
}

} // namespace

Status
epollAdd(int epfd, int fd, uint32_t events, uint64_t tag)
{
    return epollCtl(epfd, EPOLL_CTL_ADD, fd, events, tag);
}

Status
epollMod(int epfd, int fd, uint32_t events, uint64_t tag)
{
    return epollCtl(epfd, EPOLL_CTL_MOD, fd, events, tag);
}

Status
epollDel(int epfd, int fd)
{
    if (::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr) != 0)
        return errnoStatus("epoll_ctl(DEL)");
    return Status::ok();
}

Result<int>
epollWait(int epfd, PollEvent *out, int max_events, int timeout_ms)
{
    epoll_event events[64];
    if (max_events > 64)
        max_events = 64;
    int rc;
    do {
        rc = ::epoll_wait(epfd, events, max_events, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        return errnoStatus("epoll_wait");
    for (int i = 0; i < rc; ++i) {
        out[i].tag = events[i].data.u64;
        out[i].events = 0;
        if (events[i].events & EPOLLIN)
            out[i].events |= kEventRead;
        if (events[i].events & EPOLLOUT)
            out[i].events |= kEventWrite;
        if (events[i].events &
            (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) {
            out[i].events |= kEventHangup;
        }
    }
    return rc;
}

Result<int>
makeEventFd()
{
    int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (fd < 0)
        return errnoStatus("eventfd");
    return fd;
}

void
signalEventFd(int fd)
{
    // Async-signal-safe: one write(2), no locks, no allocation.
    uint64_t one = 1;
    ssize_t rc;
    do {
        rc = ::write(fd, &one, sizeof(one));
    } while (rc < 0 && errno == EINTR);
}

void
drainEventFd(int fd)
{
    uint64_t count;
    ssize_t rc;
    do {
        rc = ::read(fd, &count, sizeof(count));
    } while (rc > 0 || (rc < 0 && errno == EINTR));
}

Status
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc;
    do {
        rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        return errnoStatus("poll");
    if (rc == 0)
        return Status::notFound("poll timeout");
    return Status::ok();
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace ethkv::server::net
