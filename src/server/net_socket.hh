/**
 * @file
 * The socket seam: every raw POSIX socket/epoll/eventfd syscall in
 * the storage stack lives behind this interface, mirroring what
 * common/env.hh does for the filesystem.
 *
 * Rationale (the `direct-net` lint rule enforces it): error
 * mapping to Status, EINTR retries, and
 * non-blocking semantics are easy to get subtly
 * wrong, so they are written once here; and a single seam keeps
 * the door open for a fault-injecting or in-memory transport the
 * way FaultInjectionEnv wraps PosixEnv. Only src/server/net_*.cc
 * may call socket(2), read(2), write(2), epoll_*(2) and friends
 * directly.
 *
 * All functions are thread-safe (no shared state); fds are plain
 * ints owned by the caller and returned to the OS via closeFd().
 */

#ifndef ETHKV_SERVER_NET_SOCKET_HH
#define ETHKV_SERVER_NET_SOCKET_HH

#include <cstdint>
#include <string>

#include "common/bytes.hh"
#include "common/status.hh"

namespace ethkv::server::net
{

/** Outcome of a non-blocking read/write attempt. */
enum class IoResult
{
    Ok,         //!< Some bytes moved.
    WouldBlock, //!< Retry after the fd is ready again.
    Eof,        //!< Peer closed (reads only).
    Error,      //!< Connection is dead; see the Status out-param.
};

/**
 * Create a listening TCP socket bound to host:port.
 *
 * port 0 binds an ephemeral port (query it with localPort). The
 * socket has SO_REUSEADDR set and is non-blocking.
 */
Result<int> listenTcp(const std::string &host, uint16_t port,
                      int backlog = 128);

/** Blocking connect to host:port; returns a blocking fd. */
Result<int> connectTcp(const std::string &host, uint16_t port);

/**
 * Connect with a bounded wait; returns a blocking fd.
 *
 * timeout_ms <= 0 degenerates to the unbounded connectTcp. A peer
 * that accepts but never answers is the caller's problem — pair
 * with setIoTimeouts.
 */
Result<int> connectTcpTimeout(const std::string &host,
                              uint16_t port, int timeout_ms);

/**
 * Bound blocking reads/writes on fd (SO_RCVTIMEO / SO_SNDTIMEO;
 * 0 = wait forever). After the deadline the call fails with
 * EAGAIN, which readSome/writeSome surface as WouldBlock — on a
 * blocking fd that means "timed out", and deadline-aware callers
 * (writeAllTimed, the clients) turn it into an IOError instead of
 * retrying forever.
 */
Status setIoTimeouts(int fd, int recv_timeout_ms,
                     int send_timeout_ms);

/** The locally bound port of a socket (after listenTcp port 0). */
Result<uint16_t> localPort(int fd);

/**
 * Accept one pending connection on a non-blocking listener.
 *
 * @return Ok(fd) with the new connection set non-blocking;
 *         NotFound when no connection is pending (EAGAIN).
 */
Result<int> acceptOn(int listen_fd);

/** Toggle O_NONBLOCK. */
Status setNonBlocking(int fd, bool enable);

/** Disable Nagle (TCP_NODELAY) — latency over tiny frames. */
Status setNoDelay(int fd);

/**
 * Read up to cap bytes into buf (appended). EINTR is retried.
 *
 * @param n Receives the byte count on Ok.
 * @param err Receives the error on IoResult::Error.
 */
IoResult readSome(int fd, Bytes &buf, size_t cap, size_t &n,
                  Status &err);

/** Write up to len bytes from data; n receives the count on Ok.
 *  SIGPIPE-safe: a closed peer is IoResult::Error, never a
 *  process-killing signal (send MSG_NOSIGNAL). */
IoResult writeSome(int fd, BytesView data, size_t &n, Status &err);

/** Write ALL of data on a blocking fd (client side). */
Status writeAll(int fd, BytesView data);

/**
 * Write ALL of data, failing with IOError once timeout_ms elapses
 * without the socket accepting bytes. timeout_ms < 0 = forever
 * (plain writeAll).
 */
Status writeAllTimed(int fd, BytesView data, int timeout_ms);

/**
 * Read exactly n bytes on a blocking fd, appended to out.
 *
 * @return IOError on EOF before n bytes.
 */
Status readExactly(int fd, size_t n, Bytes &out);

// -- epoll -------------------------------------------------------

/** Event bits for epollAdd/epollWait (mapped to EPOLLIN etc.). */
constexpr uint32_t kEventRead = 1u << 0;
constexpr uint32_t kEventWrite = 1u << 1;
constexpr uint32_t kEventHangup = 1u << 2; //!< HUP/ERR/RDHUP.

/** One readiness notification. */
struct PollEvent
{
    uint64_t tag = 0;    //!< The tag registered with epollAdd.
    uint32_t events = 0; //!< kEvent* bits.
};

Result<int> epollCreate();
Status epollAdd(int epfd, int fd, uint32_t events, uint64_t tag);
Status epollMod(int epfd, int fd, uint32_t events, uint64_t tag);
Status epollDel(int epfd, int fd);

/**
 * Wait for events (blocking up to timeout_ms; -1 = forever).
 *
 * @return the number of events stored in out (0 on timeout).
 */
Result<int> epollWait(int epfd, PollEvent *out, int max_events,
                      int timeout_ms);

// -- eventfd (worker wakeups, signal delivery) -------------------

/** Create a non-blocking eventfd counter. */
Result<int> makeEventFd();

/** Increment the counter, waking any epollWait. Async-signal-safe. */
void signalEventFd(int fd);

/** Consume all pending increments. */
void drainEventFd(int fd);

/** Block until fd is readable (timeout_ms -1 = forever). */
Status waitReadable(int fd, int timeout_ms);

/** close(2); ignores errors (fd is gone either way). */
void closeFd(int fd);

} // namespace ethkv::server::net

#endif // ETHKV_SERVER_NET_SOCKET_HH
