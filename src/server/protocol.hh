/**
 * @file
 * ethkv wire protocol (ethkv.wire.v1): framing and payload codecs.
 *
 * ethkvd speaks a length-prefixed binary protocol over TCP. Every
 * message — request or response — is one frame:
 *
 *   offset  size  field
 *        0     2  magic "EK"
 *        2     1  version (kWireVersion or kWireVersionTraced)
 *        3     1  type: opcode (request) or status (response)
 *        4     4  request id, big-endian (echoed in the response)
 *        8     4  body length, big-endian
 *       12     8  xxhash64(body), big-endian
 *       20   len  body
 *
 * Version 1 bodies are the bare payload. Version 2 (the minor
 * "traced" revision, ethkv.wire.v1 + trace context) prefixes the
 * payload with a 9-byte trace context:
 *
 *   offset  size  field
 *        0     8  trace id, big-endian (client-generated)
 *        8     1  trace flags (kTraceFlagSampled, ...)
 *        9   ...  payload as in version 1
 *
 * Old peers that only speak version 1 never see version-2 frames
 * unless the client opts into tracing; new decoders accept both,
 * and can be pinned to version 1 (accept_traced=false) to prove
 * the compatibility story both ways.
 *
 * Payloads are varint-encoded (common/varint.hh):
 *
 *   GET    klen key
 *   PUT    klen key vlen value
 *   DELETE klen key
 *   BATCH  count, then per entry: op(1B) klen key [vlen value]
 *   SCAN   slen start elen end limit
 *   STATS  (empty)
 *   TRACEDUMP (empty)
 *   SLOWLOG   (empty)
 *
 *   GET response    value bytes (raw)
 *   SCAN response   count, per entry klen key vlen value,
 *                   truncated(1B)
 *   STATS response  JSON (ethkv.server.stats.v2: engine name,
 *                   IOStats, full ethkv.metrics.v1 snapshot)
 *   TRACEDUMP resp  Chrome trace JSON array of server spans
 *   SLOWLOG resp    JSON (ethkv.slowops.v1)
 *   error response  human-readable message (raw)
 *
 * This module is pure — no sockets, no I/O — so the frame fuzz
 * tests can hammer it directly and the server and client libraries
 * share one codec. Malformed bytes never crash the decoder: the
 * FrameReader either needs more input, yields a frame, or parks in
 * a sticky Error state (the connection must then be torn down,
 * since frame boundaries are lost).
 */

#ifndef ETHKV_SERVER_PROTOCOL_HH
#define ETHKV_SERVER_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/status.hh"
#include "kvstore/write_batch.hh"

namespace ethkv::server
{

/** Protocol version this build speaks. */
constexpr uint8_t kWireVersion = 1;

/** Minor revision: version-1 frame with a trace-context prefix. */
constexpr uint8_t kWireVersionTraced = 2;

/** Frame header length in bytes. */
constexpr size_t kFrameHeaderBytes = 20;

/** Trace-context prefix length in a version-2 frame body. */
constexpr size_t kTraceContextBytes = 9;

/** Trace flag: request chosen by the client-side sampler. */
constexpr uint8_t kTraceFlagSampled = 0x1;

/** Default per-frame payload cap (guards allocation on decode). */
constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/** Request opcodes (frame type byte of a request). */
enum class Opcode : uint8_t
{
    Get = 1,
    Put = 2,
    Delete = 3,
    Batch = 4,
    Scan = 5,
    Stats = 6,
    TraceDump = 7,
    SlowLog = 8,
    // -- Replication (DESIGN.md §13) -----------------------------
    Subscribe = 9, //!< Follower -> primary: start streaming.
    Promote = 10,  //!< Admin -> follower: become primary.
    ReplAck = 11,  //!< Follower -> primary: applied through offset.
    ReplBatch = 12, //!< Primary -> follower: raw log records.
};

/** Lower-case opcode name ("get", ...; "other" when unknown). */
const char *opcodeName(uint8_t opcode);

/**
 * Response status (frame type byte of a response).
 *
 * Codes 0-6 mirror ethkv::StatusCode one-for-one so engine errors
 * — including the degraded read-only mode — cross the wire
 * losslessly. BadFrame is protocol-level: the peer sent bytes that
 * do not parse as a frame.
 */
enum class WireStatus : uint8_t
{
    Ok = 0,
    NotFound = 1,
    Corruption = 2,
    IOError = 3,
    InvalidArgument = 4,
    NotSupported = 5,
    IODegraded = 6,
    NotPrimary = 7, //!< Mutation sent to a follower.
    BadFrame = 100,
};

/** Map an engine Status to its wire code. */
WireStatus wireStatusOf(const Status &s);

/** Map a wire code back to a Status (msg used for non-Ok codes). */
Status statusOfWire(WireStatus code, const std::string &msg);

/** Client-generated tracing identity carried by v2 frames. */
struct TraceContext
{
    uint64_t id = 0;
    uint8_t flags = 0;
};

/** One decoded frame: header fields plus owned payload bytes. */
struct Frame
{
    uint8_t type = 0; //!< Opcode (request) or WireStatus (response).
    uint32_t request_id = 0;
    Bytes payload;
    bool has_trace = false; //!< Frame was version 2.
    TraceContext trace;
};

/** Append a fully framed message (header + payload) to out. */
void appendFrame(Bytes &out, uint8_t type, uint32_t request_id,
                 BytesView payload);

/** Same, as a version-2 frame carrying `trace`. */
void appendFrameTraced(Bytes &out, uint8_t type,
                       uint32_t request_id, BytesView payload,
                       const TraceContext &trace);

/**
 * Incremental frame decoder.
 *
 * Feed arbitrary byte chunks with feed(); pull complete frames
 * with next(). Once a header or checksum is invalid the reader is
 * permanently in error (frame boundaries are unrecoverable on a
 * byte stream) and the owner must close the connection.
 */
class FrameReader
{
  public:
    /**
     * @param accept_traced Decode version-2 (traced) frames. When
     *        false the reader is a strict v1 peer: a traced frame
     *        is a clean, sticky Corruption, not a crash.
     */
    explicit FrameReader(size_t max_payload = kDefaultMaxFrameBytes,
                         bool accept_traced = true)
        : max_payload_(max_payload), accept_traced_(accept_traced)
    {}

    /** Append raw bytes from the peer. */
    void feed(BytesView data);

    /**
     * Decode the next complete frame into out.
     *
     * @return Ok with a frame; NotFound when more bytes are needed;
     *         Corruption (sticky) on a malformed header, oversized
     *         length, or checksum mismatch.
     */
    Status next(Frame &out);

    /** True once the stream is unrecoverable. */
    bool broken() const { return broken_; }

    /** Bytes buffered but not yet consumed. */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    size_t max_payload_;
    bool accept_traced_;
    Bytes buf_;
    size_t pos_ = 0;
    bool broken_ = false;
};

// -- Payload codecs ----------------------------------------------
//
// Encoders append to an existing buffer. Decoders return
// InvalidArgument on malformed payloads (truncated varints, length
// overruns, trailing garbage); the connection survives — payload
// corruption inside an intact frame does not lose framing.

void encodeGet(Bytes &out, BytesView key);
void encodePut(Bytes &out, BytesView key, BytesView value);
void encodeDelete(Bytes &out, BytesView key);
void encodeBatch(Bytes &out, const kv::WriteBatch &batch);
void encodeScan(Bytes &out, BytesView start, BytesView end,
                uint64_t limit);

Status decodeGet(BytesView payload, Bytes &key);
Status decodePut(BytesView payload, Bytes &key, Bytes &value);
Status decodeDelete(BytesView payload, Bytes &key);
Status decodeBatch(BytesView payload, kv::WriteBatch &batch);
Status decodeScan(BytesView payload, Bytes &start, Bytes &end,
                  uint64_t &limit);

/** One scan hit in a SCAN response. */
struct ScanEntry
{
    Bytes key;
    Bytes value;
};

void encodeScanResponse(Bytes &out,
                        const std::vector<ScanEntry> &entries,
                        bool truncated);
Status decodeScanResponse(BytesView payload,
                          std::vector<ScanEntry> &entries,
                          bool &truncated);

// -- Replication payloads (DESIGN.md §13) ------------------------
//
// SUBSCRIBE    resume_offset — the follower's validated log end;
//              the primary streams from there.
// SUBSCRIBE ok resume_offset (echoed, possibly rounded down to a
//              record boundary) + primary end offset.
// REPLBATCH    start_offset + the primary's current log end and
//              last sequence (for follower lag gauges) + raw
//              replication-log record bytes (identical to the
//              primary's on-disk encoding, so offsets stay
//              globally valid across failover).
// REPLACK      applied_offset + applied_seq, follower -> primary.
// PROMOTE      (empty request); ok response carries the promoted
//              node's log end offset.

void encodeSubscribe(Bytes &out, uint64_t resume_offset);
Status decodeSubscribe(BytesView payload, uint64_t &resume_offset);

void encodeSubscribeResponse(Bytes &out, uint64_t resume_offset,
                             uint64_t end_offset);
Status decodeSubscribeResponse(BytesView payload,
                               uint64_t &resume_offset,
                               uint64_t &end_offset);

void encodeReplBatch(Bytes &out, uint64_t start_offset,
                     uint64_t log_end, uint64_t last_seq,
                     BytesView records);
Status decodeReplBatch(BytesView payload, uint64_t &start_offset,
                       uint64_t &log_end, uint64_t &last_seq,
                       BytesView &records);

void encodeReplAck(Bytes &out, uint64_t applied_offset,
                   uint64_t applied_seq);
Status decodeReplAck(BytesView payload, uint64_t &applied_offset,
                     uint64_t &applied_seq);

void encodePromoteResponse(Bytes &out, uint64_t end_offset);
Status decodePromoteResponse(BytesView payload,
                             uint64_t &end_offset);

} // namespace ethkv::server

#endif // ETHKV_SERVER_PROTOCOL_HH
