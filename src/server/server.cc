#include "server/server.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_map>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/lock_ranks.hh"
#include "common/logging.hh"
#include "obs/json.hh"
#include "server/net_socket.hh"
#include "server/replication.hh"

namespace ethkv::server
{

namespace
{

/** Monotonic nanoseconds for op latency histograms. */
uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Instrument-array index for an opcode (0 = unknown/other). */
int
opIndex(uint8_t op)
{
    return (op >= 1 && op <= 12) ? op : 0;
}

/** Monotonic milliseconds for idle-connection bookkeeping. */
uint64_t
nowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

constexpr size_t kReadChunk = 64u << 10;

/** Chrome-trace process id for server-side spans; tracing clients
 *  use pid 2, so a merged timeline shows two process tracks. */
constexpr uint32_t kServerTracePid = 1;

/**
 * Append one server-stage span. Span timestamps live on the trace
 * log's clock; the (now_ns, now_us) pair anchors the histogram
 * clock onto it, so this works for both clock modes.
 */
void
emitSpan(obs::TraceEventLog *log, const char *name,
         uint32_t worker_tid, uint64_t start_ns, uint64_t end_ns,
         uint64_t now_ns, uint64_t now_us,
         const char *arg_name = nullptr, uint64_t arg_value = 0)
{
    obs::TraceEventLog::Span span;
    span.name = name;
    span.category = "server";
    span.start_us = now_us - (now_ns - start_ns) / 1000;
    span.duration_us = (end_ns - start_ns) / 1000;
    span.pid = kServerTracePid;
    span.tid = worker_tid;
    if (arg_name) {
        span.arg_name = arg_name;
        span.arg_value = arg_value;
        span.has_arg = true;
    }
    log->addSpanFull(span);
}

} // namespace

/** One client connection, owned by exactly one worker. */
struct Server::Connection
{
    explicit Connection(int fd_arg, size_t max_frame)
        : fd(fd_arg), reader(max_frame)
    {}

    int fd;
    FrameReader reader;
    Bytes out;          //!< Encoded, not-yet-written responses.
    size_t out_pos = 0; //!< Bytes of `out` already written.
    bool paused = false;     //!< Reads off (backpressure).
    bool want_write = false; //!< EPOLLOUT registered.
    uint64_t ops = 0;        //!< Lifetime frames served.
    //! This connection's contribution to the write-queue gauge.
    size_t reported_queue = 0;
    //! Responses queued on `out` but not yet fully flushed.
    uint32_t resp_inflight = 0;
    //! Generation stamp (see Server::next_conn_id_).
    uint64_t id = 0;
    //! Last inbound traffic, for idle reaping.
    uint64_t last_activity_ms = 0;

    /** A response held back for replication sync-acks — plus any
     *  later response that must not overtake it (responses on a
     *  connection are strictly FIFO; PipelinedClient depends on
     *  it). `ready` entries drain to `out` in order. */
    struct HeldResponse
    {
        Bytes bytes;
        bool ready = false;
    };
    std::deque<HeldResponse> held;
};

/** One event-loop thread plus its handoff queue. */
struct Server::Worker
{
    int epfd = -1;
    int wake_fd = -1;
    uint32_t index = 0; //!< Trace tid = index + 1.
    Mutex mutex{lock_ranks::kServerWorker};
    std::vector<int> pending GUARDED_BY(mutex);
    //! Sync-ack completions from the replication sender thread.
    std::vector<ReplicationHub::AckWaiter> completions
        GUARDED_BY(mutex);
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    std::thread thread;
    uint64_t last_idle_sweep_ms = 0;
};

Server::Server(kv::KVStore &store, ServerOptions options)
    : store_(store), options_(std::move(options)),
      metrics_(options_.metrics ? *options_.metrics
                                : obs::MetricsRegistry::global())
{
    if (options_.scan_byte_budget == 0) {
        // Leave headroom for the varint count, per-entry length
        // prefixes, and the truncated byte so the encoded response
        // always fits in one frame.
        size_t headroom = 1024;
        options_.scan_byte_budget =
            options_.max_frame_bytes > headroom
                ? options_.max_frame_bytes - headroom
                : options_.max_frame_bytes;
    }
    trace_log_ = options_.trace_log;
    if (options_.slow_op_micros >= 0) {
        slow_log_ = std::make_unique<obs::SlowOpLog>(
            options_.slow_op_capacity);
        slow_op_ns_ =
            static_cast<uint64_t>(options_.slow_op_micros) * 1000;
    }
    int stage_shift =
        std::clamp(options_.stage_sample_shift, 0, 62);
    int trace_shift =
        std::clamp(options_.trace_sample_shift, 0, 62);
    stage_sample_mask_ = (uint64_t{1} << stage_shift) - 1;
    trace_sample_mask_ = (uint64_t{1} << trace_shift) - 1;

    conns_accepted_ = &metrics_.counter("server.conns.accepted");
    conns_closed_ = &metrics_.counter("server.conns.closed");
    conns_active_ = &metrics_.gauge("server.conns.active");
    bytes_in_ = &metrics_.counter("server.bytes_in");
    bytes_out_ = &metrics_.counter("server.bytes_out");
    frames_bad_ = &metrics_.counter("server.frames.bad");
    frames_received_ =
        &metrics_.counter("server.frames.received");
    backpressure_paused_ =
        &metrics_.counter("server.backpressure.paused");
    backpressure_dropped_ =
        &metrics_.counter("server.backpressure.dropped");
    for (int i = 0; i < 13; ++i) {
        std::string name = std::string("server.op.") +
                           opcodeName(static_cast<uint8_t>(i));
        op_count_[i] = &metrics_.counter(name);
        op_errors_[i] = &metrics_.counter(name + ".errors");
        op_latency_[i] =
            &metrics_.histogram(name + ".latency_ns");
    }
    conn_lifetime_ops_ =
        &metrics_.histogram("server.conn.lifetime_ops");

    stage_read_ns_ = &metrics_.histogram("op.server.read_ns");
    stage_decode_ns_ = &metrics_.histogram("op.server.decode_ns");
    stage_exec_ns_ = &metrics_.histogram("op.server.exec_ns");
    stage_encode_ns_ = &metrics_.histogram("op.server.encode_ns");
    stage_flush_ns_ = &metrics_.histogram("op.server.flush_ns");
    stage_total_ns_ = &metrics_.histogram("op.server.total_ns");
    write_queue_bytes_ =
        &metrics_.gauge("server.write_queue_bytes");
    responses_inflight_ =
        &metrics_.gauge("server.responses_inflight");
    slow_ops_recorded_ =
        &metrics_.counter("server.slowops.recorded");
    traces_emitted_ = &metrics_.counter("server.traces.emitted");
    conns_idle_closed_ =
        &metrics_.counter("server.conns.idle_closed");
    subscribers_adopted_ =
        &metrics_.counter("server.repl.subscribers_adopted");
    acks_deferred_ = &metrics_.counter("server.repl.acks_deferred");
}

bool
Server::stageSampleHit()
{
    return (stage_sample_seq_.fetch_add(
                1, std::memory_order_relaxed) &
            stage_sample_mask_) == 0;
}

bool
Server::traceSampleHit()
{
    return (trace_sample_seq_.fetch_add(
                1, std::memory_order_relaxed) &
            trace_sample_mask_) == 0;
}

Server::~Server()
{
    stop();
}

Status
Server::start()
{
    if (started_.exchange(true))
        return Status::invalidArgument("server already started");
    if (options_.workers < 1)
        return Status::invalidArgument("need at least one worker");

    auto listener =
        net::listenTcp(options_.host, options_.port);
    if (!listener.ok())
        return listener.status();
    listen_fd_ = listener.value();
    auto port = net::localPort(listen_fd_);
    if (!port.ok())
        return port.status();
    port_ = port.value();

    auto wake = net::makeEventFd();
    if (!wake.ok())
        return wake.status();
    accept_wake_fd_ = wake.value();

    for (int i = 0; i < options_.workers; ++i) {
        auto worker = std::make_unique<Worker>();
        worker->index = static_cast<uint32_t>(i);
        auto ep = net::epollCreate();
        if (!ep.ok())
            return ep.status();
        worker->epfd = ep.value();
        auto wfd = net::makeEventFd();
        if (!wfd.ok())
            return wfd.status();
        worker->wake_fd = wfd.value();
        Status s = net::epollAdd(
            worker->epfd, worker->wake_fd, net::kEventRead,
            static_cast<uint64_t>(worker->wake_fd));
        if (!s.isOk())
            return s;
        workers_.push_back(std::move(worker));
    }

    if (options_.repl != nullptr) {
        // The sender thread completes deferred sync acks by
        // re-queueing them onto the owning worker's loop — the
        // same handoff pattern the acceptor uses.
        options_.repl->setAckDelivery(
            [this](std::vector<ReplicationHub::AckWaiter>
                       &&waiters) {
                for (const auto &w : waiters) {
                    if (w.worker >= workers_.size())
                        continue;
                    Worker &worker = *workers_[w.worker];
                    {
                        MutexLock lock(worker.mutex);
                        worker.completions.push_back(w);
                    }
                    net::signalEventFd(worker.wake_fd);
                }
            });
    }

    running_.store(true);
    for (auto &worker : workers_) {
        Worker *w = worker.get();
        w->thread = std::thread([this, w] { workerLoop(*w); });
    }
    acceptor_ = std::thread([this] { acceptorLoop(); });
    return Status::ok();
}

void
Server::stop()
{
    // Never started, or a second stop(): nothing to do.
    if (!running_.exchange(false))
        return;
    net::signalEventFd(accept_wake_fd_);
    if (acceptor_.joinable())
        acceptor_.join();
    for (auto &worker : workers_) {
        net::signalEventFd(worker->wake_fd);
        if (worker->thread.joinable())
            worker->thread.join();
    }

    // Replication drains BEFORE worker fds close: workers are
    // joined (no new writes can be acknowledged), and the sender's
    // final ack deliveries may still signal worker wake fds, which
    // must not have been recycled. This ordering is the SIGTERM
    // contract: acknowledged writes reach the followers' sockets
    // before the process exits.
    if (options_.repl != nullptr)
        options_.repl->flushAndStop();

    for (auto &worker : workers_) {
        net::closeFd(worker->wake_fd);
        net::closeFd(worker->epfd);
    }
    net::closeFd(listen_fd_);
    net::closeFd(accept_wake_fd_);
    listen_fd_ = accept_wake_fd_ = -1;

    // The shutdown contract: every acknowledged write is persisted
    // before the process exits (WAL fdatasync via the Env seam).
    Status s = store_.flush();
    if (!s.isOk()) {
        warn("ethkvd: engine flush on shutdown failed: %s",
             s.toString().c_str());
    }
}

void
Server::acceptorLoop()
{
    auto ep = net::epollCreate();
    if (!ep.ok()) {
        warn("ethkvd acceptor: %s", ep.status().toString().c_str());
        return;
    }
    int epfd = ep.value();
    Status s = net::epollAdd(epfd, listen_fd_, net::kEventRead,
                             static_cast<uint64_t>(listen_fd_));
    if (s.isOk()) {
        s = net::epollAdd(epfd, accept_wake_fd_, net::kEventRead,
                          static_cast<uint64_t>(accept_wake_fd_));
    }
    if (!s.isOk()) {
        warn("ethkvd acceptor: %s", s.toString().c_str());
        net::closeFd(epfd);
        return;
    }

    net::PollEvent events[8];
    while (running_.load()) {
        auto n = net::epollWait(epfd, events, 8, -1);
        if (!n.ok())
            break;
        for (int i = 0; i < n.value(); ++i) {
            if (events[i].tag ==
                static_cast<uint64_t>(accept_wake_fd_)) {
                net::drainEventFd(accept_wake_fd_);
                continue; // running_ re-checked by the loop
            }
            // Drain the accept queue.
            while (true) {
                auto conn = net::acceptOn(listen_fd_);
                if (!conn.ok())
                    break; // NotFound = queue empty
                conns_accepted_->inc();
                conns_active_->add(1);
                Worker &w = *workers_[next_worker_];
                next_worker_ =
                    (next_worker_ + 1) % workers_.size();
                {
                    MutexLock lock(w.mutex);
                    w.pending.push_back(conn.value());
                }
                net::signalEventFd(w.wake_fd);
            }
        }
    }
    net::closeFd(epfd);
}

/** (Re)register the epoll interest matching a connection's state. */
void
Server::applyBackpressure(Worker &worker, Connection &conn)
{
    size_t queued = conn.out.size() - conn.out_pos;
    write_queue_bytes_->add(
        static_cast<int64_t>(queued) -
        static_cast<int64_t>(conn.reported_queue));
    conn.reported_queue = queued;
    if (!conn.paused && queued > options_.write_queue_soft_bytes) {
        conn.paused = true;
        backpressure_paused_->inc();
    } else if (conn.paused &&
               queued < options_.write_queue_soft_bytes / 2) {
        conn.paused = false;
    }
    bool want_write = queued > 0;
    uint32_t events = (conn.paused ? 0u : net::kEventRead) |
                      (want_write ? net::kEventWrite : 0u);
    // Level-triggered epoll: always reflect current interest.
    ETHKV_IGNORE_STATUS(
        net::epollMod(worker.epfd, conn.fd, events,
                      static_cast<uint64_t>(conn.fd)),
        "EPOLL_CTL_MOD can only fail on a closing fd");
    conn.want_write = want_write;
}

void
Server::flushWrites(Worker &worker, Connection &conn)
{
    uint64_t start_ns = nowNs();
    size_t wrote_total = 0;
    uint32_t worker_tid = worker.index + 1;

    // Stage attribution for the flush, shared by the normal and
    // connection-closing exits (after closeConnection the conn is
    // dangling, so only locals may be touched).
    auto account = [&]() {
        if (wrote_total == 0)
            return;
        uint64_t end_ns = nowNs();
        if (stageSampleHit())
            stage_flush_ns_->record(end_ns - start_ns);
        if (trace_log_ && traceSampleHit()) {
            emitSpan(trace_log_, "write.flush", worker_tid,
                     start_ns, end_ns, end_ns,
                     trace_log_->nowUs(), "bytes", wrote_total);
        }
    };

    while (conn.out_pos < conn.out.size()) {
        size_t n = 0;
        Status err;
        net::IoResult r = net::writeSome(
            conn.fd,
            BytesView(conn.out).substr(conn.out_pos), n, err);
        if (r == net::IoResult::Ok) {
            conn.out_pos += n;
            bytes_out_->inc(n);
            wrote_total += n;
            continue;
        }
        if (r == net::IoResult::WouldBlock)
            break;
        account();
        closeConnection(worker, conn);
        return;
    }
    if (conn.out_pos == conn.out.size()) {
        conn.out.clear();
        conn.out_pos = 0;
        responses_inflight_->add(
            -static_cast<int64_t>(conn.resp_inflight));
        conn.resp_inflight = 0;
    } else if (conn.out_pos > (1u << 20)) {
        conn.out.erase(0, conn.out_pos);
        conn.out_pos = 0;
    }
    account();
    applyBackpressure(worker, conn);
}

void
Server::closeConnection(Worker &worker, Connection &conn)
{
    ETHKV_IGNORE_STATUS(net::epollDel(worker.epfd, conn.fd),
                        "closing fd is removed from epoll anyway");
    net::closeFd(conn.fd);
    conns_closed_->inc();
    conns_active_->add(-1);
    conn_lifetime_ops_->record(conn.ops);
    write_queue_bytes_->add(
        -static_cast<int64_t>(conn.reported_queue));
    responses_inflight_->add(
        -static_cast<int64_t>(conn.resp_inflight));
    worker.conns.erase(static_cast<uint64_t>(conn.fd));
    // `conn` is dangling from here.
}

Bytes
Server::statsJson()
{
    const kv::IOStats &io = store_.stats();
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value("ethkv.server.stats.v2");
    w.key("engine");
    w.value(store_.name());
    w.key("io");
    w.beginObject();
    w.key("user_reads");
    w.value(io.user_reads);
    w.key("user_writes");
    w.value(io.user_writes);
    w.key("user_deletes");
    w.value(io.user_deletes);
    w.key("user_scans");
    w.value(io.user_scans);
    w.key("bytes_read");
    w.value(io.bytes_read);
    w.key("bytes_written");
    w.value(io.bytes_written);
    w.key("flush_bytes");
    w.value(io.flush_bytes);
    w.key("compaction_bytes");
    w.value(io.compaction_bytes);
    w.key("gc_bytes");
    w.value(io.gc_bytes);
    w.endObject();
    w.key("connections_active");
    w.value(conns_active_->value());
    w.key("repl_role");
    w.value(options_.repl == nullptr
                ? "none"
                : (options_.repl->isPrimary() ? "primary"
                                              : "follower"));
    // Full registry snapshot (ethkv.metrics.v1): engine metrics,
    // per-stage histograms with percentile gauges, stall and
    // maintenance counters — the whole telemetry plane in one
    // remote scrape.
    w.key("metrics");
    w.rawValue(metrics_.toJson());
    w.endObject();
    return Bytes(w.take());
}

void
Server::execOp(Connection &, const Frame &frame,
               uint8_t &wire_status, Bytes &payload)
{
    auto fail = [&](const Status &s) {
        wire_status = static_cast<uint8_t>(wireStatusOf(s));
        payload = s.message();
    };
    // Role check: a follower's engine is the replication stream's
    // property; client mutations would fork the history.
    auto rejectOnFollower = [&]() {
        if (options_.repl == nullptr ||
            options_.repl->isPrimary())
            return false;
        wire_status = static_cast<uint8_t>(WireStatus::NotPrimary);
        payload = "follower: mutations rejected (PROMOTE first)";
        return true;
    };
    switch (static_cast<Opcode>(frame.type)) {
      case Opcode::Get: {
        Bytes key;
        Status s = decodeGet(frame.payload, key);
        if (s.isOk())
            s = store_.get(key, payload);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Put: {
        if (rejectOnFollower())
            return;
        Bytes key, value;
        Status s = decodePut(frame.payload, key, value);
        if (s.isOk())
            s = store_.put(key, value);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Delete: {
        if (rejectOnFollower())
            return;
        Bytes key;
        Status s = decodeDelete(frame.payload, key);
        if (s.isOk())
            s = store_.del(key);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Batch: {
        if (rejectOnFollower())
            return;
        kv::WriteBatch batch;
        Status s = decodeBatch(frame.payload, batch);
        if (s.isOk())
            s = store_.apply(batch);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Scan: {
        Bytes start, end;
        uint64_t limit = 0;
        Status s = decodeScan(frame.payload, start, end, limit);
        if (!s.isOk()) {
            fail(s);
            return;
        }
        if (limit == 0 || limit > options_.scan_limit_max)
            limit = options_.scan_limit_max;
        std::vector<ScanEntry> entries;
        // Truncate on whichever cap hits first: the entry-count
        // limit (visit one extra entry to detect it) or the
        // response byte budget. Each entry costs its key + value
        // plus ~10 bytes of varint length prefixes on the wire. An
        // over-budget entry is not stored — the client resumes from
        // the last returned key — but the first entry is always
        // accepted so a giant value can't wedge the scan.
        size_t budget = options_.scan_byte_budget;
        size_t used = 0;
        bool byte_truncated = false;
        s = store_.scan(start, end,
                        [&](BytesView k, BytesView v) {
                            size_t cost =
                                10 + k.size() + v.size();
                            if (!entries.empty() &&
                                used + cost > budget) {
                                byte_truncated = true;
                                return false;
                            }
                            used += cost;
                            entries.push_back(
                                {Bytes(k), Bytes(v)});
                            return entries.size() < limit + 1;
                        });
        if (!s.isOk()) {
            fail(s);
            return;
        }
        bool truncated =
            byte_truncated || entries.size() > limit;
        if (entries.size() > limit)
            entries.pop_back();
        encodeScanResponse(payload, entries, truncated);
        return;
      }
      case Opcode::Stats:
        payload = statsJson();
        return;
      case Opcode::TraceDump: {
        if (trace_log_) {
            payload = trace_log_->toJson();
        } else {
            payload = "[]";
        }
        return;
      }
      case Opcode::SlowLog: {
        if (slow_log_) {
            payload = slow_log_->toJson();
            return;
        }
        obs::JsonWriter w;
        w.beginObject();
        w.key("schema");
        w.value("ethkv.slowops.v1");
        w.key("capacity");
        w.value(uint64_t{0});
        w.key("recorded");
        w.value(uint64_t{0});
        w.key("dropped");
        w.value(uint64_t{0});
        w.key("ops");
        w.beginArray();
        w.endArray();
        w.endObject();
        payload = w.take();
        return;
      }
      case Opcode::Promote: {
        if (options_.repl == nullptr) {
            fail(Status::notSupported(
                "replication not configured"));
            return;
        }
        uint64_t end_offset = 0;
        Status s = options_.repl->promote(&end_offset);
        if (!s.isOk()) {
            fail(s);
            return;
        }
        encodePromoteResponse(payload, end_offset);
        return;
      }
      case Opcode::Subscribe:
        // Handled in handleFrame (connection migration); reaching
        // execOp means replication is off on this node.
        fail(Status::notSupported("replication not configured"));
        return;
      case Opcode::ReplAck:
      case Opcode::ReplBatch:
        // Stream-only frames; on a request connection they are a
        // protocol error, not a crash.
        fail(Status::invalidArgument(
            "replication stream frame on a request connection"));
        return;
    }
    fail(Status::invalidArgument(
        "unknown opcode " + std::to_string(frame.type)));
}

void
Server::handleFrame(Worker &worker, Connection &conn,
                    const Frame &frame, uint64_t decode_start_ns,
                    uint64_t decode_end_ns)
{
    int idx = opIndex(frame.type);
    op_count_[idx]->inc();
    frames_received_->inc();
    ++conn.ops;

    if (frame.type == static_cast<uint8_t>(Opcode::Subscribe) &&
        options_.repl != nullptr) {
        handleSubscribe(worker, conn, frame);
        return;
    }

    uint8_t wire_status = static_cast<uint8_t>(WireStatus::Ok);
    Bytes payload;
    uint64_t exec_start_ns = nowNs();
    execOp(conn, frame, wire_status, payload);
    uint64_t exec_end_ns = nowNs();
    op_latency_[idx]->record(exec_end_ns - exec_start_ns);
    if (wire_status != static_cast<uint8_t>(WireStatus::Ok))
        op_errors_[idx]->inc();

    // Semi-sync replication: a successful mutation's response is
    // held until every live follower acked the bytes (or the
    // fail-open timeout fires). Later responses on the connection
    // queue behind it to keep responses strictly FIFO.
    bool defer = false;
    if (options_.repl != nullptr &&
        wire_status == static_cast<uint8_t>(WireStatus::Ok)) {
        Opcode op = static_cast<Opcode>(frame.type);
        defer = (op == Opcode::Put || op == Opcode::Delete ||
                 op == Opcode::Batch) &&
                options_.repl->deferAcks();
    }

    size_t out_before = conn.out.size();
    Bytes held_frame;
    Bytes *sink = (defer || !conn.held.empty()) ? &held_frame
                                                : &conn.out;
    // A traced request gets a traced response (context echoed), so
    // the client can reconcile without per-request client state;
    // v1 requests get v1 responses and never see the revision.
    if (frame.has_trace) {
        appendFrameTraced(*sink, wire_status, frame.request_id,
                          payload, frame.trace);
    } else {
        appendFrame(*sink, wire_status, frame.request_id,
                    payload);
    }
    uint64_t encode_end_ns = nowNs();
    size_t resp_bytes = sink == &conn.out
                            ? conn.out.size() - out_before
                            : held_frame.size();
    if (sink == &conn.out) {
        ++conn.resp_inflight;
        responses_inflight_->add(1);
    } else {
        conn.held.push_back({std::move(held_frame), !defer});
        if (defer) {
            acks_deferred_->inc();
            // The hub's end offset is at or past this write's end:
            // when followers ack it, this write is replicated.
            options_.repl->enqueueAckWaiter(
                options_.repl->endOffset(),
                {worker.index, static_cast<uint64_t>(conn.fd),
                 conn.id});
        }
    }

    uint64_t decode_ns = decode_end_ns - decode_start_ns;
    uint64_t exec_ns = exec_end_ns - exec_start_ns;
    uint64_t encode_ns = encode_end_ns - exec_end_ns;
    uint64_t total_ns = encode_end_ns - decode_start_ns;

    if (stageSampleHit()) {
        stage_decode_ns_->record(decode_ns);
        stage_exec_ns_->record(exec_ns);
        stage_encode_ns_->record(encode_ns);
        stage_total_ns_->record(total_ns);
    }

    if (slow_log_ && total_ns >= slow_op_ns_) {
        obs::SlowOpRecord rec;
        rec.start_us = decode_start_ns / 1000;
        rec.trace_id = frame.has_trace ? frame.trace.id : 0;
        rec.total_ns = total_ns;
        rec.exec_ns = exec_ns;
        rec.decode_ns = decode_ns;
        rec.encode_ns = encode_ns;
        rec.request_bytes =
            static_cast<uint32_t>(frame.payload.size());
        rec.response_bytes = static_cast<uint32_t>(resp_bytes);
        rec.worker = static_cast<uint16_t>(worker.index);
        rec.opcode = frame.type;
        rec.wire_status = wire_status;
        slow_log_->record(rec);
        slow_ops_recorded_->inc();
    }

    if (trace_log_ && (frame.has_trace || traceSampleHit())) {
        traces_emitted_->inc();
        uint32_t tid = worker.index + 1;
        uint64_t now_ns = encode_end_ns;
        uint64_t now_us = trace_log_->nowUs();
        std::string req_name =
            std::string("req.") + opcodeName(frame.type);
        if (frame.has_trace) {
            emitSpan(trace_log_, req_name.c_str(), tid,
                     decode_start_ns, encode_end_ns, now_ns,
                     now_us, "trace_id", frame.trace.id);
        } else {
            emitSpan(trace_log_, req_name.c_str(), tid,
                     decode_start_ns, encode_end_ns, now_ns,
                     now_us);
        }
        emitSpan(trace_log_, "frame.decode", tid, decode_start_ns,
                 decode_end_ns, now_ns, now_us);
        emitSpan(trace_log_, "op.exec", tid, exec_start_ns,
                 exec_end_ns, now_ns, now_us);
        emitSpan(trace_log_, "resp.encode", tid, exec_end_ns,
                 encode_end_ns, now_ns, now_us);
    }
}

void
Server::handleSubscribe(Worker &worker, Connection &conn,
                        const Frame &frame)
{
    ReplicationHub *repl = options_.repl;
    auto respond = [&](WireStatus code, BytesView payload) {
        if (frame.has_trace) {
            appendFrameTraced(conn.out,
                              static_cast<uint8_t>(code),
                              frame.request_id, payload,
                              frame.trace);
        } else {
            appendFrame(conn.out, static_cast<uint8_t>(code),
                        frame.request_id, payload);
        }
        ++conn.resp_inflight;
        responses_inflight_->add(1);
    };
    if (!repl->isPrimary()) {
        respond(WireStatus::NotPrimary, "not primary");
        flushWrites(worker, conn);
        return;
    }
    uint64_t resume = 0;
    Status s = decodeSubscribe(frame.payload, resume);
    if (!s.isOk()) {
        respond(wireStatusOf(s), s.message());
        flushWrites(worker, conn);
        return;
    }
    if (!conn.held.empty()) {
        respond(WireStatus::InvalidArgument,
                "subscribe with responses pending sync-ack");
        flushWrites(worker, conn);
        return;
    }
    uint64_t end = repl->endOffset();
    if (resume > end) {
        // The follower's log is longer than ours: divergent
        // histories (e.g. it was once primary). It must not
        // retry; this error latches its degraded mode.
        respond(WireStatus::InvalidArgument,
                "resume offset past log end: divergent history");
        flushWrites(worker, conn);
        return;
    }
    if (resume < end) {
        Bytes probe;
        s = repl->log().read(resume, 1, probe);
        if (!s.isOk()) {
            respond(WireStatus::InvalidArgument,
                    "resume offset is not a record boundary");
            flushWrites(worker, conn);
            return;
        }
    }

    // Accept: build the Ok response, then migrate the socket to
    // the sender — with any unflushed earlier responses in front
    // so this connection's byte stream stays in order.
    Bytes reply_payload;
    encodeSubscribeResponse(reply_payload, resume, end);
    Bytes first_bytes(BytesView(conn.out).substr(conn.out_pos));
    if (frame.has_trace) {
        appendFrameTraced(first_bytes,
                          static_cast<uint8_t>(WireStatus::Ok),
                          frame.request_id, reply_payload,
                          frame.trace);
    } else {
        appendFrame(first_bytes,
                    static_cast<uint8_t>(WireStatus::Ok),
                    frame.request_id, reply_payload);
    }
    int fd = conn.fd;
    ETHKV_IGNORE_STATUS(net::epollDel(worker.epfd, fd),
                        "fd moves to the sender's epoll");
    conns_closed_->inc(); // keeps accepted == active + closed
    conns_active_->add(-1);
    conn_lifetime_ops_->record(conn.ops);
    write_queue_bytes_->add(
        -static_cast<int64_t>(conn.reported_queue));
    responses_inflight_->add(
        -static_cast<int64_t>(conn.resp_inflight));
    worker.conns.erase(static_cast<uint64_t>(fd));
    // `conn` is dangling from here.
    subscribers_adopted_->inc();
    ETHKV_IGNORE_STATUS(
        repl->adoptSubscriber(fd, resume,
                              std::move(first_bytes)),
        "the hub owns the fd, success or failure");
}

void
Server::deliverAckCompletions(Worker &worker)
{
    std::vector<ReplicationHub::AckWaiter> completions;
    {
        MutexLock lock(worker.mutex);
        completions.swap(worker.completions);
    }
    for (const auto &c : completions) {
        auto it = worker.conns.find(c.conn_tag);
        if (it == worker.conns.end())
            continue; // connection closed while waiting
        Connection &conn = *it->second;
        if (conn.id != c.conn_id)
            continue; // fd reused by a newer connection
        // Completions arrive in enqueue order per connection
        // (targets are monotone offsets), so the first un-ready
        // held response is the one this completion releases.
        for (auto &h : conn.held) {
            if (!h.ready) {
                h.ready = true;
                break;
            }
        }
        while (!conn.held.empty() && conn.held.front().ready) {
            conn.out.append(conn.held.front().bytes);
            ++conn.resp_inflight;
            responses_inflight_->add(1);
            conn.held.pop_front();
        }
        flushWrites(worker, conn);
    }
}

void
Server::reapIdleConnections(Worker &worker, uint64_t now_ms)
{
    if (options_.conn_idle_timeout_ms <= 0)
        return;
    uint64_t timeout =
        static_cast<uint64_t>(options_.conn_idle_timeout_ms);
    uint64_t interval = std::min<uint64_t>(timeout / 2 + 1, 1000);
    if (now_ms - worker.last_idle_sweep_ms < interval)
        return;
    worker.last_idle_sweep_ms = now_ms;
    std::vector<uint64_t> victims;
    for (const auto &[tag, conn] : worker.conns) {
        if (now_ms - conn->last_activity_ms >= timeout)
            victims.push_back(tag);
    }
    for (uint64_t tag : victims) {
        auto it = worker.conns.find(tag);
        if (it == worker.conns.end())
            continue;
        conns_idle_closed_->inc();
        closeConnection(worker, *it->second);
    }
}

void
Server::workerLoop(Worker &worker)
{
#ifdef __linux__
    if (options_.pin_cores) {
        unsigned cores = std::thread::hardware_concurrency();
        if (cores > 0) {
            cpu_set_t set;
            CPU_ZERO(&set);
            CPU_SET(worker.index % cores, &set);
            // Best effort: a restricted cpuset (container) may
            // reject the mask; the worker just stays unpinned.
            (void)pthread_setaffinity_np(pthread_self(),
                                         sizeof(set), &set);
        }
    }
#endif
    net::PollEvent events[64];
    Bytes chunk;
    // Idle reaping needs a periodic timeout; otherwise block.
    int wait_ms = -1;
    if (options_.conn_idle_timeout_ms > 0)
        wait_ms = std::min(
            options_.conn_idle_timeout_ms / 2 + 1, 1000);
    while (running_.load()) {
        auto n =
            net::epollWait(worker.epfd, events, 64, wait_ms);
        if (!n.ok())
            break;
        if (options_.conn_idle_timeout_ms > 0)
            reapIdleConnections(worker, nowMs());
        for (int i = 0; i < n.value(); ++i) {
            uint64_t tag = events[i].tag;
            if (tag == static_cast<uint64_t>(worker.wake_fd)) {
                net::drainEventFd(worker.wake_fd);
                // Adopt handed-off connections.
                std::vector<int> adopted;
                {
                    MutexLock lock(worker.mutex);
                    adopted.swap(worker.pending);
                }
                for (int fd : adopted) {
                    auto conn = std::make_unique<Connection>(
                        fd, options_.max_frame_bytes);
                    Status s = net::epollAdd(
                        worker.epfd, fd, net::kEventRead,
                        static_cast<uint64_t>(fd));
                    if (!s.isOk()) {
                        net::closeFd(fd);
                        conns_closed_->inc();
                        conns_active_->add(-1);
                        continue;
                    }
                    conn->want_write = false;
                    conn->id = next_conn_id_.fetch_add(
                        1, std::memory_order_relaxed);
                    conn->last_activity_ms = nowMs();
                    worker.conns.emplace(
                        static_cast<uint64_t>(fd),
                        std::move(conn));
                }
                deliverAckCompletions(worker);
                continue;
            }

            auto it = worker.conns.find(tag);
            if (it == worker.conns.end())
                continue; // closed earlier in this batch
            Connection &conn = *it->second;

            if (events[i].events & net::kEventWrite)
                flushWrites(worker, conn);
            if (worker.conns.find(tag) == worker.conns.end())
                continue; // flush closed it

            bool peer_gone = false;
            if ((events[i].events & net::kEventRead) &&
                !conn.paused) {
                uint64_t read_start_ns = nowNs();
                size_t read_total = 0;
                while (true) {
                    chunk.clear();
                    size_t got = 0;
                    Status err;
                    net::IoResult r = net::readSome(
                        conn.fd, chunk, kReadChunk, got, err);
                    if (r == net::IoResult::Ok) {
                        bytes_in_->inc(got);
                        read_total += got;
                        conn.reader.feed(chunk);
                        if (got < kReadChunk)
                            break; // drained the socket
                        continue;
                    }
                    if (r == net::IoResult::WouldBlock)
                        break;
                    peer_gone = true; // EOF or error
                    break;
                }
                if (read_total > 0) {
                    conn.last_activity_ms = nowMs();
                    uint64_t read_end_ns = nowNs();
                    if (stageSampleHit())
                        stage_read_ns_->record(read_end_ns -
                                               read_start_ns);
                    if (trace_log_ && traceSampleHit()) {
                        emitSpan(trace_log_, "sock.read",
                                 worker.index + 1, read_start_ns,
                                 read_end_ns, read_end_ns,
                                 trace_log_->nowUs(), "bytes",
                                 read_total);
                    }
                }

                // Decode and serve every complete frame.
                while (true) {
                    Frame frame;
                    uint64_t decode_start_ns = nowNs();
                    Status s = conn.reader.next(frame);
                    if (s.isNotFound())
                        break;
                    if (!s.isOk()) {
                        // Unrecoverable framing: best-effort error
                        // frame, then drop the connection.
                        frames_bad_->inc();
                        appendFrame(
                            conn.out,
                            static_cast<uint8_t>(
                                WireStatus::BadFrame),
                            0, s.message());
                        flushWrites(worker, conn);
                        if (worker.conns.find(tag) !=
                            worker.conns.end()) {
                            closeConnection(worker, conn);
                        }
                        peer_gone = false; // already closed
                        break;
                    }
                    handleFrame(worker, conn, frame,
                                decode_start_ns, nowNs());
                    if (worker.conns.find(tag) ==
                        worker.conns.end()) {
                        // SUBSCRIBE migrated the fd to the
                        // replication sender; conn is gone.
                        peer_gone = false;
                        break;
                    }
                    size_t queued =
                        conn.out.size() - conn.out_pos;
                    if (queued >
                        options_.write_queue_hard_bytes) {
                        backpressure_dropped_->inc();
                        closeConnection(worker, conn);
                        peer_gone = false;
                        break;
                    }
                }
                if (worker.conns.find(tag) == worker.conns.end())
                    continue;
                flushWrites(worker, conn);
                if (worker.conns.find(tag) == worker.conns.end())
                    continue;
            }

            if (peer_gone ||
                ((events[i].events & net::kEventHangup) &&
                 !(events[i].events & net::kEventRead))) {
                closeConnection(worker, conn);
            }
        }
    }

    // Shutdown: best-effort flush of queued responses, then close.
    for (auto &[tag, conn] : worker.conns) {
        if (conn->out_pos < conn->out.size()) {
            size_t n = 0;
            Status err;
            net::IoResult r = net::writeSome(
                conn->fd,
                BytesView(conn->out).substr(conn->out_pos), n,
                err);
            static_cast<void>(r);
        }
        net::closeFd(conn->fd);
        conns_closed_->inc();
        conns_active_->add(-1);
        conn_lifetime_ops_->record(conn->ops);
        write_queue_bytes_->add(
            -static_cast<int64_t>(conn->reported_queue));
        responses_inflight_->add(
            -static_cast<int64_t>(conn->resp_inflight));
    }
    worker.conns.clear();
}

} // namespace ethkv::server
