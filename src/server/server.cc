#include "server/server.hh"

#include <chrono>
#include <unordered_map>

#include "common/logging.hh"
#include "server/net_socket.hh"

namespace ethkv::server
{

namespace
{

/** Monotonic nanoseconds for op latency histograms. */
uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Instrument-array index for an opcode (0 = unknown/other). */
int
opIndex(uint8_t op)
{
    return (op >= 1 && op <= 6) ? op : 0;
}

const char *const kOpNames[7] = {"other",  "get",  "put", "delete",
                                 "batch", "scan", "stats"};

constexpr size_t kReadChunk = 64u << 10;

/** JSON string escape for the tiny STATS payload. */
void
appendJsonString(Bytes &out, BytesView s)
{
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.append("\\u0020");
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
}

} // namespace

/** One client connection, owned by exactly one worker. */
struct Server::Connection
{
    explicit Connection(int fd_arg, size_t max_frame)
        : fd(fd_arg), reader(max_frame)
    {}

    int fd;
    FrameReader reader;
    Bytes out;          //!< Encoded, not-yet-written responses.
    size_t out_pos = 0; //!< Bytes of `out` already written.
    bool paused = false;     //!< Reads off (backpressure).
    bool want_write = false; //!< EPOLLOUT registered.
    uint64_t ops = 0;        //!< Lifetime frames served.
};

/** One event-loop thread plus its handoff queue. */
struct Server::Worker
{
    int epfd = -1;
    int wake_fd = -1;
    Mutex mutex;
    std::vector<int> pending GUARDED_BY(mutex);
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
    std::thread thread;
};

Server::Server(kv::KVStore &store, ServerOptions options)
    : store_(store), options_(std::move(options)),
      metrics_(options_.metrics ? *options_.metrics
                                : obs::MetricsRegistry::global())
{
    if (options_.scan_byte_budget == 0) {
        // Leave headroom for the varint count, per-entry length
        // prefixes, and the truncated byte so the encoded response
        // always fits in one frame.
        size_t headroom = 1024;
        options_.scan_byte_budget =
            options_.max_frame_bytes > headroom
                ? options_.max_frame_bytes - headroom
                : options_.max_frame_bytes;
    }
    conns_accepted_ = &metrics_.counter("server.conns.accepted");
    conns_closed_ = &metrics_.counter("server.conns.closed");
    conns_active_ = &metrics_.gauge("server.conns.active");
    bytes_in_ = &metrics_.counter("server.bytes_in");
    bytes_out_ = &metrics_.counter("server.bytes_out");
    frames_bad_ = &metrics_.counter("server.frames.bad");
    backpressure_paused_ =
        &metrics_.counter("server.backpressure.paused");
    backpressure_dropped_ =
        &metrics_.counter("server.backpressure.dropped");
    for (int i = 0; i < 7; ++i) {
        std::string name = std::string("server.op.") + kOpNames[i];
        op_count_[i] = &metrics_.counter(name);
        op_errors_[i] = &metrics_.counter(name + ".errors");
        op_latency_[i] =
            &metrics_.histogram(name + ".latency_ns");
    }
    conn_lifetime_ops_ =
        &metrics_.histogram("server.conn.lifetime_ops");
}

Server::~Server()
{
    stop();
}

Status
Server::start()
{
    if (started_.exchange(true))
        return Status::invalidArgument("server already started");
    if (options_.workers < 1)
        return Status::invalidArgument("need at least one worker");

    auto listener =
        net::listenTcp(options_.host, options_.port);
    if (!listener.ok())
        return listener.status();
    listen_fd_ = listener.value();
    auto port = net::localPort(listen_fd_);
    if (!port.ok())
        return port.status();
    port_ = port.value();

    auto wake = net::makeEventFd();
    if (!wake.ok())
        return wake.status();
    accept_wake_fd_ = wake.value();

    for (int i = 0; i < options_.workers; ++i) {
        auto worker = std::make_unique<Worker>();
        auto ep = net::epollCreate();
        if (!ep.ok())
            return ep.status();
        worker->epfd = ep.value();
        auto wfd = net::makeEventFd();
        if (!wfd.ok())
            return wfd.status();
        worker->wake_fd = wfd.value();
        Status s = net::epollAdd(
            worker->epfd, worker->wake_fd, net::kEventRead,
            static_cast<uint64_t>(worker->wake_fd));
        if (!s.isOk())
            return s;
        workers_.push_back(std::move(worker));
    }

    running_.store(true);
    for (auto &worker : workers_) {
        Worker *w = worker.get();
        w->thread = std::thread([this, w] { workerLoop(*w); });
    }
    acceptor_ = std::thread([this] { acceptorLoop(); });
    return Status::ok();
}

void
Server::stop()
{
    // Never started, or a second stop(): nothing to do.
    if (!running_.exchange(false))
        return;
    net::signalEventFd(accept_wake_fd_);
    if (acceptor_.joinable())
        acceptor_.join();
    for (auto &worker : workers_) {
        net::signalEventFd(worker->wake_fd);
        if (worker->thread.joinable())
            worker->thread.join();
        net::closeFd(worker->wake_fd);
        net::closeFd(worker->epfd);
    }
    net::closeFd(listen_fd_);
    net::closeFd(accept_wake_fd_);
    listen_fd_ = accept_wake_fd_ = -1;

    // The shutdown contract: every acknowledged write is persisted
    // before the process exits (WAL fdatasync via the Env seam).
    Status s = store_.flush();
    if (!s.isOk()) {
        warn("ethkvd: engine flush on shutdown failed: %s",
             s.toString().c_str());
    }
}

void
Server::acceptorLoop()
{
    auto ep = net::epollCreate();
    if (!ep.ok()) {
        warn("ethkvd acceptor: %s", ep.status().toString().c_str());
        return;
    }
    int epfd = ep.value();
    Status s = net::epollAdd(epfd, listen_fd_, net::kEventRead,
                             static_cast<uint64_t>(listen_fd_));
    if (s.isOk()) {
        s = net::epollAdd(epfd, accept_wake_fd_, net::kEventRead,
                          static_cast<uint64_t>(accept_wake_fd_));
    }
    if (!s.isOk()) {
        warn("ethkvd acceptor: %s", s.toString().c_str());
        net::closeFd(epfd);
        return;
    }

    net::PollEvent events[8];
    while (running_.load()) {
        auto n = net::epollWait(epfd, events, 8, -1);
        if (!n.ok())
            break;
        for (int i = 0; i < n.value(); ++i) {
            if (events[i].tag ==
                static_cast<uint64_t>(accept_wake_fd_)) {
                net::drainEventFd(accept_wake_fd_);
                continue; // running_ re-checked by the loop
            }
            // Drain the accept queue.
            while (true) {
                auto conn = net::acceptOn(listen_fd_);
                if (!conn.ok())
                    break; // NotFound = queue empty
                conns_accepted_->inc();
                conns_active_->add(1);
                Worker &w = *workers_[next_worker_];
                next_worker_ =
                    (next_worker_ + 1) % workers_.size();
                {
                    MutexLock lock(w.mutex);
                    w.pending.push_back(conn.value());
                }
                net::signalEventFd(w.wake_fd);
            }
        }
    }
    net::closeFd(epfd);
}

/** (Re)register the epoll interest matching a connection's state. */
void
Server::applyBackpressure(Worker &worker, Connection &conn)
{
    size_t queued = conn.out.size() - conn.out_pos;
    if (!conn.paused && queued > options_.write_queue_soft_bytes) {
        conn.paused = true;
        backpressure_paused_->inc();
    } else if (conn.paused &&
               queued < options_.write_queue_soft_bytes / 2) {
        conn.paused = false;
    }
    bool want_write = queued > 0;
    uint32_t events = (conn.paused ? 0u : net::kEventRead) |
                      (want_write ? net::kEventWrite : 0u);
    // Level-triggered epoll: always reflect current interest.
    ETHKV_IGNORE_STATUS(
        net::epollMod(worker.epfd, conn.fd, events,
                      static_cast<uint64_t>(conn.fd)),
        "EPOLL_CTL_MOD can only fail on a closing fd");
    conn.want_write = want_write;
}

void
Server::flushWrites(Worker &worker, Connection &conn)
{
    while (conn.out_pos < conn.out.size()) {
        size_t n = 0;
        Status err;
        net::IoResult r = net::writeSome(
            conn.fd,
            BytesView(conn.out).substr(conn.out_pos), n, err);
        if (r == net::IoResult::Ok) {
            conn.out_pos += n;
            bytes_out_->inc(n);
            continue;
        }
        if (r == net::IoResult::WouldBlock)
            break;
        closeConnection(worker, conn);
        return;
    }
    if (conn.out_pos == conn.out.size()) {
        conn.out.clear();
        conn.out_pos = 0;
    } else if (conn.out_pos > (1u << 20)) {
        conn.out.erase(0, conn.out_pos);
        conn.out_pos = 0;
    }
    applyBackpressure(worker, conn);
}

void
Server::closeConnection(Worker &worker, Connection &conn)
{
    ETHKV_IGNORE_STATUS(net::epollDel(worker.epfd, conn.fd),
                        "closing fd is removed from epoll anyway");
    net::closeFd(conn.fd);
    conns_closed_->inc();
    conns_active_->add(-1);
    conn_lifetime_ops_->record(conn.ops);
    worker.conns.erase(static_cast<uint64_t>(conn.fd));
    // `conn` is dangling from here.
}

Bytes
Server::statsJson()
{
    const kv::IOStats &io = store_.stats();
    Bytes out = "{\"schema\":\"ethkv.server.stats.v1\",";
    out += "\"engine\":";
    appendJsonString(out, store_.name());
    auto field = [&out](const char *name, uint64_t v) {
        out += ",\"";
        out += name;
        out += "\":";
        out += std::to_string(v);
    };
    field("user_reads", io.user_reads);
    field("user_writes", io.user_writes);
    field("user_deletes", io.user_deletes);
    field("user_scans", io.user_scans);
    field("bytes_read", io.bytes_read);
    field("bytes_written", io.bytes_written);
    field("flush_bytes", io.flush_bytes);
    field("compaction_bytes", io.compaction_bytes);
    field("gc_bytes", io.gc_bytes);
    field("connections_active",
          static_cast<uint64_t>(conns_active_->value()));
    out += "}";
    return out;
}

void
Server::execOp(Connection &, const Frame &frame,
               uint8_t &wire_status, Bytes &payload)
{
    auto fail = [&](const Status &s) {
        wire_status = static_cast<uint8_t>(wireStatusOf(s));
        payload = s.message();
    };
    switch (static_cast<Opcode>(frame.type)) {
      case Opcode::Get: {
        Bytes key;
        Status s = decodeGet(frame.payload, key);
        if (s.isOk())
            s = store_.get(key, payload);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Put: {
        Bytes key, value;
        Status s = decodePut(frame.payload, key, value);
        if (s.isOk())
            s = store_.put(key, value);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Delete: {
        Bytes key;
        Status s = decodeDelete(frame.payload, key);
        if (s.isOk())
            s = store_.del(key);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Batch: {
        kv::WriteBatch batch;
        Status s = decodeBatch(frame.payload, batch);
        if (s.isOk())
            s = store_.apply(batch);
        if (!s.isOk())
            fail(s);
        return;
      }
      case Opcode::Scan: {
        Bytes start, end;
        uint64_t limit = 0;
        Status s = decodeScan(frame.payload, start, end, limit);
        if (!s.isOk()) {
            fail(s);
            return;
        }
        if (limit == 0 || limit > options_.scan_limit_max)
            limit = options_.scan_limit_max;
        std::vector<ScanEntry> entries;
        // Truncate on whichever cap hits first: the entry-count
        // limit (visit one extra entry to detect it) or the
        // response byte budget. Each entry costs its key + value
        // plus ~10 bytes of varint length prefixes on the wire. An
        // over-budget entry is not stored — the client resumes from
        // the last returned key — but the first entry is always
        // accepted so a giant value can't wedge the scan.
        size_t budget = options_.scan_byte_budget;
        size_t used = 0;
        bool byte_truncated = false;
        s = store_.scan(start, end,
                        [&](BytesView k, BytesView v) {
                            size_t cost =
                                10 + k.size() + v.size();
                            if (!entries.empty() &&
                                used + cost > budget) {
                                byte_truncated = true;
                                return false;
                            }
                            used += cost;
                            entries.push_back(
                                {Bytes(k), Bytes(v)});
                            return entries.size() < limit + 1;
                        });
        if (!s.isOk()) {
            fail(s);
            return;
        }
        bool truncated =
            byte_truncated || entries.size() > limit;
        if (entries.size() > limit)
            entries.pop_back();
        encodeScanResponse(payload, entries, truncated);
        return;
      }
      case Opcode::Stats:
        payload = statsJson();
        return;
    }
    fail(Status::invalidArgument(
        "unknown opcode " + std::to_string(frame.type)));
}

void
Server::handleFrame(Worker &worker, Connection &conn,
                    const Frame &frame)
{
    static_cast<void>(worker);
    int idx = opIndex(frame.type);
    op_count_[idx]->inc();
    ++conn.ops;

    uint8_t wire_status = static_cast<uint8_t>(WireStatus::Ok);
    Bytes payload;
    uint64_t t0 = nowNs();
    execOp(conn, frame, wire_status, payload);
    op_latency_[idx]->record(nowNs() - t0);
    if (wire_status != static_cast<uint8_t>(WireStatus::Ok))
        op_errors_[idx]->inc();

    appendFrame(conn.out, wire_status, frame.request_id, payload);
}

void
Server::workerLoop(Worker &worker)
{
    net::PollEvent events[64];
    Bytes chunk;
    while (running_.load()) {
        auto n = net::epollWait(worker.epfd, events, 64, -1);
        if (!n.ok())
            break;
        for (int i = 0; i < n.value(); ++i) {
            uint64_t tag = events[i].tag;
            if (tag == static_cast<uint64_t>(worker.wake_fd)) {
                net::drainEventFd(worker.wake_fd);
                // Adopt handed-off connections.
                std::vector<int> adopted;
                {
                    MutexLock lock(worker.mutex);
                    adopted.swap(worker.pending);
                }
                for (int fd : adopted) {
                    auto conn = std::make_unique<Connection>(
                        fd, options_.max_frame_bytes);
                    Status s = net::epollAdd(
                        worker.epfd, fd, net::kEventRead,
                        static_cast<uint64_t>(fd));
                    if (!s.isOk()) {
                        net::closeFd(fd);
                        conns_closed_->inc();
                        conns_active_->add(-1);
                        continue;
                    }
                    conn->want_write = false;
                    worker.conns.emplace(
                        static_cast<uint64_t>(fd),
                        std::move(conn));
                }
                continue;
            }

            auto it = worker.conns.find(tag);
            if (it == worker.conns.end())
                continue; // closed earlier in this batch
            Connection &conn = *it->second;

            if (events[i].events & net::kEventWrite)
                flushWrites(worker, conn);
            if (worker.conns.find(tag) == worker.conns.end())
                continue; // flush closed it

            bool peer_gone = false;
            if ((events[i].events & net::kEventRead) &&
                !conn.paused) {
                while (true) {
                    chunk.clear();
                    size_t got = 0;
                    Status err;
                    net::IoResult r = net::readSome(
                        conn.fd, chunk, kReadChunk, got, err);
                    if (r == net::IoResult::Ok) {
                        bytes_in_->inc(got);
                        conn.reader.feed(chunk);
                        if (got < kReadChunk)
                            break; // drained the socket
                        continue;
                    }
                    if (r == net::IoResult::WouldBlock)
                        break;
                    peer_gone = true; // EOF or error
                    break;
                }

                // Decode and serve every complete frame.
                while (true) {
                    Frame frame;
                    Status s = conn.reader.next(frame);
                    if (s.isNotFound())
                        break;
                    if (!s.isOk()) {
                        // Unrecoverable framing: best-effort error
                        // frame, then drop the connection.
                        frames_bad_->inc();
                        appendFrame(
                            conn.out,
                            static_cast<uint8_t>(
                                WireStatus::BadFrame),
                            0, s.message());
                        flushWrites(worker, conn);
                        if (worker.conns.find(tag) !=
                            worker.conns.end()) {
                            closeConnection(worker, conn);
                        }
                        peer_gone = false; // already closed
                        break;
                    }
                    handleFrame(worker, conn, frame);
                    size_t queued =
                        conn.out.size() - conn.out_pos;
                    if (queued >
                        options_.write_queue_hard_bytes) {
                        backpressure_dropped_->inc();
                        closeConnection(worker, conn);
                        peer_gone = false;
                        break;
                    }
                }
                if (worker.conns.find(tag) == worker.conns.end())
                    continue;
                flushWrites(worker, conn);
                if (worker.conns.find(tag) == worker.conns.end())
                    continue;
            }

            if (peer_gone ||
                ((events[i].events & net::kEventHangup) &&
                 !(events[i].events & net::kEventRead))) {
                closeConnection(worker, conn);
            }
        }
    }

    // Shutdown: best-effort flush of queued responses, then close.
    for (auto &[tag, conn] : worker.conns) {
        if (conn->out_pos < conn->out.size()) {
            size_t n = 0;
            Status err;
            net::IoResult r = net::writeSome(
                conn->fd,
                BytesView(conn->out).substr(conn->out_pos), n,
                err);
            static_cast<void>(r);
        }
        net::closeFd(conn->fd);
        conns_closed_->inc();
        conns_active_->add(-1);
        conn_lifetime_ops_->record(conn->ops);
    }
    worker.conns.clear();
}

} // namespace ethkv::server
