/**
 * @file
 * Analysis toolkit tests: store inventory, op distributions, key
 * frequencies, read ratios, and the distance-based correlation
 * analyzer — the latter validated against a brute-force
 * implementation of the paper's definition on small traces.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/class_stats.hh"
#include "analysis/correlation.hh"
#include "analysis/op_distribution.hh"
#include "analysis/report.hh"
#include "common/rand.hh"
#include "kvstore/mem_store.hh"

namespace ethkv::analysis
{
namespace
{

using client::KVClass;
using trace::OpType;
using trace::TraceBuffer;
using trace::TraceRecord;

TraceRecord
rec(OpType op, KVClass cls, uint64_t key, uint32_t vsize = 10)
{
    TraceRecord r;
    r.op = op;
    r.class_id = static_cast<uint16_t>(cls);
    r.key_id = key;
    r.key_size = 33;
    r.value_size = vsize;
    return r;
}

TEST(StoreInventoryTest, ClassifiesAndCounts)
{
    kv::MemStore store;
    ASSERT_TRUE(
        store.put(client::snapshotAccountKey(eth::hashOf("a")),
                  Bytes(16, 'v')).isOk());
    ASSERT_TRUE(
        store.put(client::snapshotAccountKey(eth::hashOf("b")),
                  Bytes(20, 'v')).isOk());
    ASSERT_TRUE(store.put(client::txLookupKey(eth::hashOf("t")),
                          "12345678").isOk());
    ASSERT_TRUE(
        store.put(client::lastBlockKey(), Bytes(32, 'h')).isOk());

    StoreInventory inventory = analyzeStore(store);
    EXPECT_EQ(inventory.total_pairs, 4u);
    EXPECT_EQ(inventory.of(KVClass::SnapshotAccount).pairs, 2u);
    EXPECT_EQ(inventory.of(KVClass::TxLookup).pairs, 1u);
    EXPECT_EQ(inventory.of(KVClass::LastBlock).pairs, 1u);
    EXPECT_EQ(inventory.singletonClasses(), 2);
    EXPECT_DOUBLE_EQ(inventory.share(KVClass::SnapshotAccount),
                     0.5);
    EXPECT_NEAR(
        inventory.of(KVClass::SnapshotAccount).value_size.mean(),
        18.0, 1e-9);
    EXPECT_NEAR(inventory.topShare(1), 0.5, 1e-9);
}

TEST(OpDistributionTest, CountsAndShares)
{
    TraceBuffer trace;
    trace.append(rec(OpType::Read, KVClass::Code, 1));
    trace.append(rec(OpType::Read, KVClass::Code, 2));
    trace.append(rec(OpType::Write, KVClass::Code, 3));
    trace.append(rec(OpType::Delete, KVClass::TxLookup, 4));

    auto ops = OpDistribution::analyze(trace);
    EXPECT_EQ(ops.totalOps(), 4u);
    EXPECT_EQ(ops.classOps(KVClass::Code), 3u);
    EXPECT_DOUBLE_EQ(ops.classShare(KVClass::Code), 0.75);
    EXPECT_DOUBLE_EQ(ops.opShare(KVClass::Code, OpType::Read),
                     2.0 / 3.0);
    EXPECT_EQ(ops.opTotal(OpType::Read), 2u);
    EXPECT_EQ(ops.count(KVClass::TxLookup, OpType::Delete), 1u);
    EXPECT_EQ(ops.classOps(KVClass::BlockBody), 0u);
}

TEST(KeyFrequencyTest, PerKeyCountsAndBands)
{
    TraceBuffer trace;
    // Key 1 read 5x, key 2 read 1x, key 3 read 2x; key 4 written.
    for (int i = 0; i < 5; ++i)
        trace.append(rec(OpType::Read, KVClass::Code, 1));
    trace.append(rec(OpType::Read, KVClass::Code, 2));
    trace.append(rec(OpType::Read, KVClass::Code, 3));
    trace.append(rec(OpType::Read, KVClass::Code, 3));
    trace.append(rec(OpType::Write, KVClass::Code, 4));

    auto freq = KeyFrequency::analyze(trace, OpType::Read);
    EXPECT_EQ(freq.uniqueKeys(KVClass::Code), 3u);
    EXPECT_DOUBLE_EQ(freq.onceFraction(KVClass::Code), 1.0 / 3.0);
    EXPECT_EQ(freq.distribution(KVClass::Code).countOf(5), 1u);
    EXPECT_EQ(freq.distribution(KVClass::Code).countOf(2), 1u);
    // Top 40% of 3 keys = the single hottest key -> 5 ops.
    EXPECT_EQ(freq.topKeyOps(KVClass::Code, 0.34), 5u);
    EXPECT_EQ(freq.bandOps(KVClass::Code, 2, 5), 7u);
    EXPECT_EQ(freq.bandOps(KVClass::Code, 10, 100), 0u);
}

TEST(ReadRatioTest, MatchesDefinition)
{
    kv::MemStore store;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(store.put(client::snapshotAccountKey(
                                  eth::hashOf(encodeBE64(i))),
                              "v").isOk());
    }
    StoreInventory inventory = analyzeStore(store);

    TraceBuffer trace;
    // 3 distinct snapshot-account keys read.
    for (uint64_t k : {1u, 2u, 3u, 1u, 1u})
        trace.append(rec(OpType::Read, KVClass::SnapshotAccount,
                         k));
    auto reads = KeyFrequency::analyze(trace, OpType::Read);
    EXPECT_DOUBLE_EQ(
        readRatio(reads, inventory, KVClass::SnapshotAccount),
        0.3);
}

// --- Correlation analyzer vs brute force -----------------------

/** Brute-force implementation of the paper's definition. */
std::map<ClassPair, uint64_t>
bruteForce(const std::vector<std::pair<uint64_t, uint16_t>> &reads,
           uint32_t d, uint32_t min_occurrences)
{
    size_t gap = d + 1;
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> pair_counts;
    for (size_t i = 0; i + gap < reads.size(); ++i) {
        uint64_t a = reads[i].first, b = reads[i + gap].first;
        pair_counts[{std::min(a, b), std::max(a, b)}] += 1;
    }
    std::map<uint64_t, uint16_t> class_of;
    for (const auto &[key, cls] : reads)
        class_of[key] = cls;

    std::map<ClassPair, uint64_t> out;
    for (const auto &[key_pair, count] : pair_counts) {
        if (count < min_occurrences)
            continue;
        uint16_t ca = class_of[key_pair.first];
        uint16_t cb = class_of[key_pair.second];
        out[{std::min(ca, cb), std::max(ca, cb)}] += count;
    }
    return out;
}

class CorrelationProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CorrelationProperty, MatchesBruteForce)
{
    Rng rng(GetParam());
    TraceBuffer trace;
    std::vector<std::pair<uint64_t, uint16_t>> reads;
    const uint16_t classes[] = {
        static_cast<uint16_t>(KVClass::TrieNodeAccount),
        static_cast<uint16_t>(KVClass::TrieNodeStorage),
        static_cast<uint16_t>(KVClass::Code),
    };
    for (int i = 0; i < 3000; ++i) {
        uint64_t key = rng.nextBounded(60);
        uint16_t cls = classes[key % 3];
        trace.append(
            rec(OpType::Read, static_cast<KVClass>(cls), key));
        reads.emplace_back(key, cls);
        // Noise: other op types must be ignored.
        if (rng.chance(0.3)) {
            trace.append(rec(OpType::Update,
                             KVClass::SnapshotAccount,
                             rng.nextBounded(60)));
        }
    }

    CorrelationConfig config;
    config.distances = {0, 1, 3, 10};
    CorrelationResult result =
        analyzeCorrelation(trace, config);

    for (uint32_t d : config.distances) {
        auto expected = bruteForce(reads, d, 2);
        for (const auto &[pair, count] : expected) {
            EXPECT_EQ(result.count(pair, d), count)
                << "distance " << d << " pair "
                << pair.label();
        }
        // No spurious extra pairs.
        uint64_t expected_total = 0, actual_total = 0;
        for (const auto &[pair, count] : expected)
            expected_total += count;
        for (int a = 0; a < client::num_kv_classes; ++a) {
            for (int b = a; b < client::num_kv_classes; ++b) {
                actual_total += result.count(
                    {static_cast<uint16_t>(a),
                     static_cast<uint16_t>(b)},
                    d);
            }
        }
        EXPECT_EQ(actual_total, expected_total);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationProperty,
                         ::testing::Values(3, 17, 59));

TEST(CorrelationTest, MinOccurrenceFilter)
{
    TraceBuffer trace;
    // Pair (1,2) adjacent twice; pair (3,4) adjacent once.
    for (uint64_t k : {1u, 2u, 9u, 1u, 2u, 9u, 3u, 4u}) {
        trace.append(
            rec(OpType::Read, KVClass::TrieNodeAccount, k));
    }
    CorrelationConfig config;
    config.distances = {0};
    CorrelationResult result = analyzeCorrelation(trace, config);

    ClassPair ta_ta{
        static_cast<uint16_t>(KVClass::TrieNodeAccount),
        static_cast<uint16_t>(KVClass::TrieNodeAccount)};
    // Adjacent pairs: (1,2)x2, (2,9)x2, (9,1)x1, (9,3)x1,
    // (3,4)x1. Only pairs occurring at least twice qualify, so
    // the correlated count is 2 + 2 = 4.
    EXPECT_EQ(result.count(ta_ta, 0), 4u);
}

TEST(CorrelationTest, FrequencyDistributions)
{
    TraceBuffer trace;
    for (int round = 0; round < 5; ++round) {
        trace.append(
            rec(OpType::Read, KVClass::TrieNodeAccount, 1));
        trace.append(
            rec(OpType::Read, KVClass::TrieNodeStorage, 2));
    }
    CorrelationConfig config;
    config.distances = {0};
    config.frequency_distances = {0};
    CorrelationResult result = analyzeCorrelation(trace, config);

    uint16_t ts = static_cast<uint16_t>(KVClass::TrieNodeStorage);
    uint16_t ta = static_cast<uint16_t>(KVClass::TrieNodeAccount);
    ClassPair ta_ts{std::min(ts, ta), std::max(ts, ta)};
    const ExactDistribution &freq = result.frequencies(ta_ts, 0);
    // One qualifying key pair (1,2)... appearing at distance 0
    // nine times (alternating sequence).
    EXPECT_EQ(freq.totalCount(), 1u);
    EXPECT_EQ(freq.maxValue(), 9u);
}

TEST(CorrelationTest, TopPairsOrdering)
{
    TraceBuffer trace;
    // TA-TA pairs dominate, then TA-TS.
    for (int i = 0; i < 20; ++i) {
        trace.append(
            rec(OpType::Read, KVClass::TrieNodeAccount, 1));
        trace.append(
            rec(OpType::Read, KVClass::TrieNodeAccount, 2));
    }
    for (int i = 0; i < 5; ++i) {
        trace.append(
            rec(OpType::Read, KVClass::TrieNodeAccount, 3));
        trace.append(
            rec(OpType::Read, KVClass::TrieNodeStorage, 4));
    }
    CorrelationConfig config;
    config.distances = {0};
    CorrelationResult result = analyzeCorrelation(trace, config);

    auto intra = result.topPairs(0, true, 3);
    ASSERT_FALSE(intra.empty());
    EXPECT_EQ(intra[0].label(), "TA-TA");
    auto cross = result.topPairs(0, false, 3);
    ASSERT_FALSE(cross.empty());
    EXPECT_TRUE(cross[0].label() == "TS-TA" ||
                cross[0].label() == "TA-TS");
}

TEST(ReportTest, TableRendering)
{
    Table table({"A", "Bee"});
    table.addRow({"1", "2"});
    table.addRule();
    table.addRow({"333", "4"});
    std::string out = table.render();
    EXPECT_NE(out.find("A    Bee"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);

    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtShare(0.5), "50.00%");
    EXPECT_EQ(fmtShare(0.0), "-");
}

TEST(ClassAbbrevTest, PaperLabels)
{
    EXPECT_EQ(classAbbrev(KVClass::TrieNodeAccount), "TA");
    EXPECT_EQ(classAbbrev(KVClass::TrieNodeStorage), "TS");
    EXPECT_EQ(classAbbrev(KVClass::SnapshotAccount), "SA");
    EXPECT_EQ(classAbbrev(KVClass::SnapshotStorage), "SS");
    EXPECT_EQ(classAbbrev(KVClass::Code), "C");
    EXPECT_EQ(classAbbrev(KVClass::LastFast), "LF");
    ClassPair pair{
        static_cast<uint16_t>(KVClass::TrieNodeAccount),
        static_cast<uint16_t>(KVClass::TrieNodeStorage)};
    EXPECT_EQ(pair.label(), "TA-TS");
}

} // namespace
} // namespace ethkv::analysis
