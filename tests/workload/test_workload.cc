/**
 * @file
 * Workload generator tests: determinism, chain linkage, tx-mix
 * composition, seed enumeration, and the end-to-end simulation
 * pipeline (small scale).
 */

#include <gtest/gtest.h>

#include "analysis/op_distribution.hh"
#include "client/calldata.hh"
#include "workload/sim.hh"

namespace ethkv::wl
{
namespace
{

WorkloadConfig
smallConfig(uint64_t seed = 1)
{
    WorkloadConfig config;
    config.seed = seed;
    config.initial_accounts = 500;
    config.initial_contracts = 20;
    config.seeded_slots_per_contract = 10;
    config.slots_per_contract = 100;
    config.txs_per_block = 30;
    config.seeded_tx_lookups = 100;
    config.seeded_header_numbers = 50;
    config.seeded_bloom_bits = 20;
    return config;
}

TEST(GeneratorTest, DeterministicAcrossInstances)
{
    ChainGenerator a(smallConfig()), b(smallConfig());
    for (int i = 0; i < 10; ++i) {
        eth::Block ba = a.nextBlock();
        eth::Block bb = b.nextBlock();
        EXPECT_EQ(ba.header.hash(), bb.header.hash());
        EXPECT_EQ(ba.body.transactions.size(),
                  bb.body.transactions.size());
    }
    EXPECT_NE(ChainGenerator(smallConfig(1)).genesisHash(),
              ChainGenerator(smallConfig(2)).genesisHash());
}

TEST(GeneratorTest, ChainLinkage)
{
    ChainGenerator generator(smallConfig());
    eth::Hash256 parent = generator.genesisHash();
    for (int i = 1; i <= 20; ++i) {
        eth::Block block = generator.nextBlock();
        EXPECT_EQ(block.header.number,
                  static_cast<uint64_t>(i));
        EXPECT_EQ(block.header.parent_hash, parent);
        parent = block.header.hash();
    }
}

TEST(GeneratorTest, TransactionMixMatchesConfig)
{
    WorkloadConfig config = smallConfig();
    config.contract_call_fraction = 0.5;
    ChainGenerator generator(config);

    int calls = 0, transfers = 0, total = 0;
    for (int i = 0; i < 50; ++i) {
        eth::Block block = generator.nextBlock();
        for (const eth::Transaction &tx :
             block.body.transactions) {
            ++total;
            if (tx.to && client::isCallProgram(tx.data))
                ++calls;
            else if (tx.to)
                ++transfers;
        }
    }
    double call_share = static_cast<double>(calls) / total;
    EXPECT_NEAR(call_share, 0.5, 0.08);
    EXPECT_GT(transfers, 0);
}

TEST(GeneratorTest, CallProgramsDecodeAndTargetContracts)
{
    ChainGenerator generator(smallConfig());
    int programs = 0;
    for (int i = 0; i < 20; ++i) {
        eth::Block block = generator.nextBlock();
        for (const eth::Transaction &tx :
             block.body.transactions) {
            if (!tx.to || !client::isCallProgram(tx.data))
                continue;
            std::vector<client::SlotOp> ops;
            ASSERT_TRUE(
                client::decodeCallProgram(tx.data, ops).isOk());
            EXPECT_FALSE(ops.empty());
            ++programs;
        }
    }
    EXPECT_GT(programs, 50);
}

TEST(GeneratorTest, SeedEnumerationIsCompleteAndDeterministic)
{
    ChainGenerator generator(smallConfig());
    uint64_t accounts = 0, contracts = 0;
    std::vector<eth::Address> addresses;
    generator.forEachSeedAccount([&](const SeedAccount &seed) {
        if (seed.is_contract)
            ++contracts;
        else
            ++accounts;
        addresses.push_back(seed.address);
    });
    // 500 EOAs + deployer + 20 contracts.
    EXPECT_EQ(accounts, 501u);
    EXPECT_EQ(contracts, 20u);

    std::vector<eth::Address> again;
    generator.forEachSeedAccount(
        [&](const SeedAccount &seed) {
            again.push_back(seed.address);
        });
    EXPECT_EQ(addresses, again);
}

TEST(GeneratorTest, SeedCodeIsStableAndUnique)
{
    ChainGenerator generator(smallConfig());
    Bytes c1 = generator.seedCode(0);
    EXPECT_EQ(c1, generator.seedCode(0));
    EXPECT_NE(c1, generator.seedCode(1));
    EXPECT_GT(c1.size(), 100u);
}

TEST(GeneratorTest, DeploymentAddressesMatchClientDerivation)
{
    // The generator's pre-listed contract addresses must be the
    // ones the client VM derives when executing deployments.
    WorkloadConfig config = smallConfig();
    config.creation_fraction = 0.5; // force frequent deployments
    ChainGenerator generator(config);
    uint64_t before = generator.contractCount();
    for (int i = 0; i < 5; ++i)
        generator.nextBlock();
    EXPECT_GT(generator.contractCount(), before);
}

TEST(SimTest, PipelineProducesTraceAndState)
{
    SimConfig config;
    config.workload = smallConfig();
    config.blocks = 30;
    config.node.caching = true;
    config.node.freezer_dir = "auto";
    config.node.finality_depth = 8;
    config.node.tx_index_window = 12;

    SimResult result = runSimulation(config);
    EXPECT_EQ(result.blocks_processed, 30u);
    EXPECT_GT(result.trace.size(), 1000u);
    EXPECT_GT(result.unique_keys, 100u);
    EXPECT_GT(result.engine->liveKeyCount(), 500u);
    EXPECT_GT(result.cache_stats.hits, 0u);

    // All captured ops classify to known classes.
    for (const trace::TraceRecord &r : result.trace.records()) {
        EXPECT_LT(r.class_id,
                  static_cast<uint16_t>(
                      client::KVClass::Unknown));
    }
}

TEST(SimTest, SeededStateExistsBeforeCapture)
{
    SimConfig config;
    config.workload = smallConfig();
    config.blocks = 5;
    config.node.caching = false;
    config.node.freezer_dir = "auto";

    SimResult result = runSimulation(config);
    // The store holds far more keys than 5 blocks could create:
    // the seeded world state.
    EXPECT_GT(result.engine->liveKeyCount(), 1000u);
    // But the trace contains only capture-phase operations.
    EXPECT_LT(result.trace.size(), 100000u);
}

TEST(SimTest, BareModeHasNoSnapshotOps)
{
    SimConfig config;
    config.workload = smallConfig();
    config.blocks = 20;
    config.node.caching = false;
    config.node.freezer_dir = "auto";

    SimResult result = runSimulation(config);
    auto ops = analysis::OpDistribution::analyze(result.trace);
    EXPECT_EQ(ops.classOps(client::KVClass::SnapshotAccount), 0u);
    EXPECT_EQ(ops.classOps(client::KVClass::SnapshotStorage), 0u);
    EXPECT_GT(ops.classOps(client::KVClass::TrieNodeAccount), 0u);
}

TEST(SimTest, DeterministicTraces)
{
    SimConfig config;
    config.workload = smallConfig(7);
    config.blocks = 15;
    config.node.caching = true;
    config.node.freezer_dir = "auto";

    SimResult a = runSimulation(config);
    SimResult b = runSimulation(config);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace.records()[i].key_id,
                  b.trace.records()[i].key_id);
        EXPECT_EQ(a.trace.records()[i].op,
                  b.trace.records()[i].op);
    }
}

TEST(SimTest, RestartsAppearInTrace)
{
    SimConfig config;
    config.workload = smallConfig();
    config.blocks = 20;
    config.restart_interval = 7;
    config.node.caching = true;
    config.node.freezer_dir = "auto";

    SimResult result = runSimulation(config);
    auto ops = analysis::OpDistribution::analyze(result.trace);
    // Journal classes only appear in the trace via restarts.
    EXPECT_GT(ops.classOps(client::KVClass::TrieJournal), 0u);
    EXPECT_GT(ops.classOps(client::KVClass::SnapshotJournal), 0u);
    EXPECT_GT(ops.classOps(client::KVClass::UncleanShutdown), 0u);
}

} // namespace
} // namespace ethkv::wl
