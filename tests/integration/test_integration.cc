/**
 * @file
 * Cross-module integration tests: the full capture pipeline's
 * invariants (per-class op legality, singleton stability,
 * cache-vs-bare relationships), trace replay through the hybrid
 * store, and an LSM-engined end-to-end run.
 */

#include <gtest/gtest.h>

#include "analysis/class_stats.hh"
#include "analysis/correlation.hh"
#include "analysis/op_distribution.hh"
#include "core/hybrid_store.hh"
#include "kvstore/lsm_store.hh"
#include "workload/sim.hh"
#include "../kvstore/test_util.hh"

namespace ethkv
{
namespace
{

using client::KVClass;
using testutil::ScratchDir;
using trace::OpType;

wl::SimConfig
smallSim(bool caching, uint64_t blocks = 60)
{
    wl::SimConfig config;
    config.workload.seed = 11;
    config.workload.initial_accounts = 2000;
    config.workload.initial_contracts = 50;
    config.workload.seeded_slots_per_contract = 30;
    config.workload.slots_per_contract = 300;
    config.workload.txs_per_block = 40;
    config.workload.seeded_tx_lookups = 2000;
    config.workload.seeded_header_numbers = 500;
    config.workload.seeded_bloom_bits = 200;
    config.blocks = blocks;
    config.node.caching = caching;
    config.node.freezer_dir = "auto";
    config.node.finality_depth = 16;
    config.node.tx_index_window = 24;
    config.node.bloom_section_size = 32;
    config.restart_interval = 25;
    return config;
}

TEST(IntegrationTest, PerClassOpLegality)
{
    wl::SimResult result = wl::runSimulation(smallSim(true));
    auto ops = analysis::OpDistribution::analyze(result.trace);

    // Scans only ever occur in the paper's three scan classes.
    for (int c = 0; c < client::num_kv_classes; ++c) {
        auto cls = static_cast<KVClass>(c);
        if (ops.count(cls, OpType::Scan) == 0)
            continue;
        EXPECT_TRUE(cls == KVClass::SnapshotAccount ||
                    cls == KVClass::SnapshotStorage ||
                    cls == KVClass::BlockHeader)
            << client::kvClassName(cls);
    }

    // TxLookup is never read during sync (paper: zero reads).
    EXPECT_EQ(ops.count(KVClass::TxLookup, OpType::Read), 0u);
    // TxLookup write/delete balance near 50/50 at steady state.
    EXPECT_GT(ops.count(KVClass::TxLookup, OpType::Delete), 0u);

    // No operation lands in the Unknown class.
    EXPECT_EQ(ops.classOps(KVClass::Unknown), 0u);
}

TEST(IntegrationTest, SingletonClassesStaySingleton)
{
    wl::SimResult result = wl::runSimulation(smallSim(true));
    auto inventory = analysis::analyzeStore(*result.engine);

    const KVClass singletons[] = {
        KVClass::DatabaseVersion,    KVClass::LastBlock,
        KVClass::LastHeader,         KVClass::LastFast,
        KVClass::LastStateID,        KVClass::SnapshotRoot,
        KVClass::SnapshotJournal,    KVClass::SnapshotGenerator,
        KVClass::SnapshotRecovery,   KVClass::TrieJournal,
        KVClass::UncleanShutdown,    KVClass::SkeletonSyncStatus,
        KVClass::TransactionIndexTail,
        KVClass::EthereumConfig,     KVClass::EthereumGenesis,
    };
    for (KVClass cls : singletons) {
        EXPECT_EQ(inventory.of(cls).pairs, 1u)
            << client::kvClassName(cls);
    }
    EXPECT_EQ(inventory.singletonClasses(), 15);
}

TEST(IntegrationTest, CacheVsBareRelationships)
{
    wl::SimResult cached = wl::runSimulation(smallSim(true));
    wl::SimResult bare = wl::runSimulation(smallSim(false));

    auto cached_inv = analysis::analyzeStore(*cached.engine);
    auto bare_inv = analysis::analyzeStore(*bare.engine);

    // Snapshot acceleration inflates the store (Finding 7)...
    EXPECT_GT(cached_inv.total_pairs, bare_inv.total_pairs);
    EXPECT_GT(cached_inv.of(KVClass::SnapshotAccount).pairs, 0u);
    EXPECT_EQ(bare_inv.of(KVClass::SnapshotAccount).pairs, 0u);

    // ...while caching reduces world-state reads reaching the
    // interface.
    auto cached_ops =
        analysis::OpDistribution::analyze(cached.trace);
    auto bare_ops = analysis::OpDistribution::analyze(bare.trace);
    uint64_t cached_trie_reads =
        cached_ops.count(KVClass::TrieNodeAccount,
                         OpType::Read) +
        cached_ops.count(KVClass::TrieNodeStorage, OpType::Read);
    uint64_t bare_trie_reads =
        bare_ops.count(KVClass::TrieNodeAccount, OpType::Read) +
        bare_ops.count(KVClass::TrieNodeStorage, OpType::Read);
    EXPECT_LT(cached_trie_reads, bare_trie_reads);

    // Both runs visit the dominant classes.
    for (KVClass cls : {KVClass::TrieNodeAccount,
                        KVClass::TrieNodeStorage,
                        KVClass::TxLookup}) {
        EXPECT_GT(cached_ops.classOps(cls), 0u);
        EXPECT_GT(bare_ops.classOps(cls), 0u);
    }
}

TEST(IntegrationTest, UpdateCorrelationsShowHeadPointerPattern)
{
    wl::SimResult result = wl::runSimulation(smallSim(true));
    analysis::CorrelationConfig config;
    config.op = OpType::Update;
    config.distances = {0, 4};
    auto corr = analysis::analyzeCorrelation(result.trace, config);

    // LastBlock-LastFast and LastFast-LastHeader are written
    // back-to-back every block (Finding 10).
    auto lf = static_cast<uint16_t>(KVClass::LastFast);
    auto lh = static_cast<uint16_t>(KVClass::LastHeader);
    auto lb = static_cast<uint16_t>(KVClass::LastBlock);
    analysis::ClassPair lf_lh{std::min(lf, lh), std::max(lf, lh)};
    analysis::ClassPair lb_lf{std::min(lb, lf), std::max(lb, lf)};
    EXPECT_GT(corr.count(lf_lh, 0), 0u);
    EXPECT_GT(corr.count(lb_lf, 0), 0u);
    // And they decay away from distance 0.
    EXPECT_GE(corr.count(lf_lh, 0), corr.count(lf_lh, 4));
}

TEST(IntegrationTest, TraceReplayThroughHybridStore)
{
    // The end state reached by replaying a captured trace through
    // the hybrid store must match the per-class live-key counts of
    // the classes it stores exactly (snapshot classes are
    // write-through in both paths).
    wl::SimResult result = wl::runSimulation(smallSim(true));

    core::HybridKVStore hybrid;
    Bytes value;
    std::unordered_map<uint64_t, Bytes> key_of;
    for (const trace::TraceRecord &r : result.trace.records()) {
        auto it = key_of.find(r.key_id);
        if (it == key_of.end()) {
            // Synthesize a stable stand-in key per id with the
            // right class prefix via the snapshot of sizes.
            Bytes key = client::kvClassName(
                static_cast<KVClass>(r.class_id));
            appendBE64(key, r.key_id);
            it = key_of.emplace(r.key_id, key).first;
        }
        const Bytes &key = it->second;
        switch (r.op) {
          case OpType::Write:
          case OpType::Update:
            ASSERT_TRUE(
                hybrid.hash().put(key, Bytes(r.value_size, 'v'))
                    .isOk());
            break;
          case OpType::Delete:
            ASSERT_TRUE(hybrid.hash().del(key).isOk());
            break;
          default:
            break;
        }
    }
    // Sanity: the replayed store has a plausible live population.
    EXPECT_GT(hybrid.hash().liveKeyCount(), 1000u);
}

TEST(IntegrationTest, LsmEngineEndToEnd)
{
    // The same pipeline with the real LSM underneath: traces are
    // engine-independent, so class counts must match a MemStore
    // run exactly.
    ScratchDir dir("sim_lsm");
    wl::SimConfig lsm_config = smallSim(true, 30);
    lsm_config.make_engine = [&]() -> std::unique_ptr<kv::KVStore> {
        kv::LSMOptions options;
        options.dir = dir.path();
        options.memtable_bytes = 1u << 20;
        auto store = kv::LSMStore::open(options);
        store.status().expectOk("sim lsm open");
        return store.take();
    };
    wl::SimResult lsm_run = wl::runSimulation(lsm_config);

    wl::SimConfig mem_config = smallSim(true, 30);
    wl::SimResult mem_run = wl::runSimulation(mem_config);

    ASSERT_EQ(lsm_run.trace.size(), mem_run.trace.size());
    auto lsm_ops = analysis::OpDistribution::analyze(lsm_run.trace);
    auto mem_ops = analysis::OpDistribution::analyze(mem_run.trace);
    for (int c = 0; c < client::num_kv_classes; ++c) {
        auto cls = static_cast<KVClass>(c);
        EXPECT_EQ(lsm_ops.classOps(cls), mem_ops.classOps(cls))
            << client::kvClassName(cls);
    }
    // And the LSM's final content agrees with the MemStore's.
    EXPECT_EQ(lsm_run.engine->liveKeyCount(),
              mem_run.engine->liveKeyCount());
}

} // namespace
} // namespace ethkv
