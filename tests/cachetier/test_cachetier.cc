/**
 * @file
 * Unit tests for the server cache tier (DESIGN.md §14): hit/miss
 * accounting, write-path invalidation (put/del/apply and the
 * explicit replication-replay invalidate()), segmented-LRU scan
 * resistance, TinyLFU admission, static-table and online-mined
 * prefetch through the background thread, and the sticky IODegraded
 * pass-through latch driven by a FaultInjectionEnv-backed engine.
 *
 * Every test builds its own MetricsRegistry so counter assertions
 * are exact and independent of other suites in the same binary.
 */

#include "cachetier/cache_tier.hh"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../kvstore/test_util.hh"
#include "cachetier/prefetcher.hh"
#include "common/bytes.hh"
#include "common/env.hh"
#include "common/fault_env.hh"
#include "kvstore/log_store.hh"
#include "kvstore/mem_store.hh"
#include "kvstore/write_batch.hh"
#include "obs/metrics.hh"

namespace ethkv::cachetier
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

uint64_t
ctr(obs::MetricsRegistry &reg, const std::string &name)
{
    return reg.counter(name).value();
}

CacheTierOptions
smallOptions(obs::MetricsRegistry &reg)
{
    CacheTierOptions o;
    o.capacity_bytes = 1u << 20;
    o.shards = 1;
    o.metrics = &reg;
    return o;
}

TEST(CacheTierTest, MissFillsThenHits)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    // put() is write-invalidate-or-update; the first get is a miss
    // that fills the cache from the inner store...
    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_EQ(v, makeValue(1));
    // ...and the second is served from the cache without touching
    // the engine.
    uint64_t engine_reads = inner.stats().user_reads;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_EQ(v, makeValue(1));
    EXPECT_EQ(inner.stats().user_reads, engine_reads);

    EXPECT_EQ(ctr(reg, "cachetier.hits"), 1u);
    EXPECT_EQ(ctr(reg, "cachetier.misses"), 1u);
    EXPECT_EQ(tier.cachedEntries(), 1u);
    EXPECT_GT(tier.cachedBytes(), 0u);
    EXPECT_EQ(reg.gauge("cachetier.entries").value(), 1);
}

TEST(CacheTierTest, NotFoundIsNotCached)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    Bytes v;
    EXPECT_TRUE(tier.get(makeKey(404), v).isNotFound());
    EXPECT_TRUE(tier.get(makeKey(404), v).isNotFound());
    EXPECT_EQ(ctr(reg, "cachetier.misses"), 2u);
    EXPECT_EQ(tier.cachedEntries(), 0u);
}

TEST(CacheTierTest, PutUpdatesCachedValueInPlace)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    ASSERT_TRUE(tier.put(makeKey(1), makeValue(2)).isOk());
    // The overwrite must be visible immediately — from the cache,
    // not by refilling.
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_EQ(v, makeValue(2));
    EXPECT_EQ(ctr(reg, "cachetier.hits"), 1u);
}

TEST(CacheTierTest, DeleteInvalidates)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    ASSERT_TRUE(tier.del(makeKey(1)).isOk());
    EXPECT_FALSE(tier.cachedForTest(makeKey(1)));
    EXPECT_TRUE(tier.get(makeKey(1), v).isNotFound());
}

TEST(CacheTierTest, ApplyInvalidatesEveryBatchKey)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    ASSERT_TRUE(tier.put(makeKey(2), makeValue(2)).isOk());
    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    ASSERT_TRUE(tier.get(makeKey(2), v).isOk());

    kv::WriteBatch batch;
    batch.put(makeKey(1), makeValue(10));
    batch.del(makeKey(2));
    ASSERT_TRUE(tier.apply(batch).isOk());

    EXPECT_FALSE(tier.cachedForTest(makeKey(1)));
    EXPECT_FALSE(tier.cachedForTest(makeKey(2)));
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_EQ(v, makeValue(10));
    EXPECT_TRUE(tier.get(makeKey(2), v).isNotFound());
    EXPECT_GE(ctr(reg, "cachetier.invalidations"), 2u);
}

/**
 * Delegates to a MemStore but fails put() on one poison key, and
 * does not override apply() — so the default per-op loop applies a
 * prefix of the batch and then errors out, exactly the partial
 * state a mid-batch engine failure leaves behind.
 */
class PoisonKeyStore final : public kv::KVStore
{
  public:
    explicit PoisonKeyStore(Bytes poison)
        : poison_(std::move(poison))
    {
    }

    Status
    put(BytesView key, BytesView value) override
    {
        if (Bytes(key) == poison_)
            return Status::corruption("poison key");
        return inner_.put(key, value);
    }
    Status
    get(BytesView key, Bytes &value) override
    {
        return inner_.get(key, value);
    }
    Status
    del(BytesView key) override
    {
        return inner_.del(key);
    }
    Status
    scan(BytesView start, BytesView end,
         const kv::ScanCallback &cb) override
    {
        return inner_.scan(start, end, cb);
    }
    Status
    flush() override
    {
        return inner_.flush();
    }
    const kv::IOStats &
    stats() const override
    {
        return inner_.stats();
    }
    std::string
    name() const override
    {
        return "poison";
    }
    uint64_t
    liveKeyCount() override
    {
        return inner_.liveKeyCount();
    }

  private:
    kv::MemStore inner_;
    Bytes poison_;
};

// Regression: a batch that fails mid-apply may still have moved a
// prefix of its keys in the engine (batches are per-engine atomic,
// not per-batch across an error). The tier must invalidate every
// batch key even though apply() returned an error — the old
// behavior kept the pre-batch cached value for the applied prefix
// and served a stale read.
TEST(CacheTierTest, FailedApplyStillInvalidatesAppliedPrefix)
{
    obs::MetricsRegistry reg;
    PoisonKeyStore inner(makeKey(3));
    CacheTier tier(inner, smallOptions(reg));

    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    ASSERT_TRUE(tier.put(makeKey(2), makeValue(2)).isOk());
    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    ASSERT_TRUE(tier.get(makeKey(2), v).isOk());
    ASSERT_TRUE(tier.cachedForTest(makeKey(1)));
    ASSERT_TRUE(tier.cachedForTest(makeKey(2)));

    kv::WriteBatch batch;
    batch.put(makeKey(1), makeValue(10)); // applied
    batch.put(makeKey(3), makeValue(30)); // fails here
    batch.put(makeKey(2), makeValue(20)); // never applied
    ASSERT_FALSE(tier.apply(batch).isOk());

    // Key 1 moved beneath the cache: the next read must see the
    // new engine value, not the cached pre-batch one.
    EXPECT_FALSE(tier.cachedForTest(makeKey(1)));
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_EQ(v, makeValue(10));
    // Key 2 never applied; invalidating it cost a refill, and the
    // refill reads the (unchanged) engine value.
    ASSERT_TRUE(tier.get(makeKey(2), v).isOk());
    EXPECT_EQ(v, makeValue(2));
}

// The replication-replay hook: a follower's ReplicationHub applies
// batches BENEATH this layer, then calls invalidate() per key. The
// cache must forget the key so the next GET refills from the
// post-replay store.
TEST(CacheTierTest, InvalidateDropsStaleEntryAfterOutOfBandWrite)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());

    // Replayed batch mutates the engine without going through the
    // tier.
    ASSERT_TRUE(inner.put(makeKey(1), makeValue(99)).isOk());
    tier.invalidate(makeKey(1));

    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_EQ(v, makeValue(99));
    EXPECT_EQ(ctr(reg, "cachetier.invalidations"), 1u);
}

// A one-shot sweep over many cold keys must not flush a hot key out
// of the protected segment: the hot key stays served from cache
// (inner reads do not grow) while the flood churns probation.
TEST(CacheTierTest, ScanResistantHotKeySurvivesFlood)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTierOptions o;
    o.capacity_bytes = 8u << 10; // tiny: the flood overflows it
    o.shards = 1;
    o.metrics = &reg;
    CacheTier tier(inner, o);

    ASSERT_TRUE(tier.put(makeKey(0), makeValue(0)).isOk());
    for (uint64_t i = 1; i <= 512; ++i)
        ASSERT_TRUE(inner.put(makeKey(i), makeValue(i)).isOk());

    // Promote key 0 to protected: miss-fill, then repeated hits.
    Bytes v;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(tier.get(makeKey(0), v).isOk());

    // One-shot flood of 512 distinct keys.
    for (uint64_t i = 1; i <= 512; ++i)
        ASSERT_TRUE(tier.get(makeKey(i), v).isOk());

    EXPECT_TRUE(tier.cachedForTest(makeKey(0)));
    uint64_t engine_reads = inner.stats().user_reads;
    ASSERT_TRUE(tier.get(makeKey(0), v).isOk());
    EXPECT_EQ(inner.stats().user_reads, engine_reads);
    EXPECT_GT(ctr(reg, "cachetier.evictions"), 0u);
    EXPECT_LE(tier.cachedBytes(), o.capacity_bytes);
}

// Deterministic admission rejection: a full shard whose probation
// tail has frequency 2 must reject a frequency-1 candidate.
TEST(CacheTierTest, AdmissionRejectsColdCandidateOverWarmVictim)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTierOptions o;
    // Each entry charges key (~10B) + value (100B) + overhead
    // (64B); a 500-byte shard holds two, and a 0.5 protected
    // fraction holds exactly one of them, so promoting the second
    // demotes the first back to probation with frequency 2.
    o.capacity_bytes = 500;
    o.shards = 1;
    o.protected_fraction = 0.5;
    o.metrics = &reg;
    CacheTier tier(inner, o);

    for (uint64_t i = 1; i <= 3; ++i)
        ASSERT_TRUE(inner.put(makeKey(i), makeValue(i, 100)).isOk());

    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk()); // fill, freq 1
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk()); // promote, freq 2
    ASSERT_TRUE(tier.get(makeKey(2), v).isOk()); // fill, freq 1
    ASSERT_TRUE(tier.get(makeKey(2), v).isOk()); // promote; demotes 1

    // Key 3 (frequency 1) would evict key 1 (frequency 2): denied.
    ASSERT_TRUE(tier.get(makeKey(3), v).isOk());
    EXPECT_EQ(v, makeValue(3, 100));
    EXPECT_FALSE(tier.cachedForTest(makeKey(3)));
    EXPECT_TRUE(tier.cachedForTest(makeKey(1)));
    EXPECT_TRUE(tier.cachedForTest(makeKey(2)));
    EXPECT_EQ(ctr(reg, "cachetier.admission_rejects"), 1u);
}

TEST(CacheTierTest, ScanAndContainsPassThrough)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    ASSERT_TRUE(tier.put(makeKey(2), makeValue(2)).isOk());
    size_t seen = 0;
    ASSERT_TRUE(tier.scan(Bytes(), Bytes(),
                          [&](BytesView, BytesView) {
                              ++seen;
                              return true;
                          })
                    .isOk());
    EXPECT_EQ(seen, 2u);
    EXPECT_TRUE(tier.contains(makeKey(1)));
    EXPECT_FALSE(tier.contains(makeKey(9)));
    EXPECT_EQ(tier.liveKeyCount(), 2u);
}

// --- prefetch ---------------------------------------------------

TEST(PrefetcherTest, StaticTableLoadAndMissTriggersPrefetch)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));

    for (uint64_t i = 1; i <= 3; ++i)
        ASSERT_TRUE(inner.put(makeKey(i), makeValue(i)).isOk());

    ScratchDir dir("cachetier_table");
    std::string path = dir.path() + "/corr.txt";
    std::string table = "# comment line\n" + toHex(makeKey(1)) +
                        " " + toHex(makeKey(2)) + " " +
                        toHex(makeKey(3)) + "\n";
    ASSERT_TRUE(Env::defaultEnv()
                    ->writeStringToFile(path, table, false)
                    .isOk());

    PrefetcherOptions po;
    po.top_k = 2;
    po.metrics = &reg;
    CorrelationPrefetcher pf(tier, po);
    ASSERT_TRUE(pf.loadTable(Env::defaultEnv(), path).isOk());
    EXPECT_EQ(pf.tableSize(), 1u);
    tier.setPrefetcher(&pf);
    pf.start();

    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk()); // miss -> enqueue
    pf.drainForTest();

    EXPECT_TRUE(tier.cachedForTest(makeKey(2)));
    EXPECT_TRUE(tier.cachedForTest(makeKey(3)));
    EXPECT_EQ(ctr(reg, "cachetier.prefetch.issued"), 2u);

    // First demand hit on a prefetched entry is credited.
    uint64_t engine_reads = inner.stats().user_reads;
    ASSERT_TRUE(tier.get(makeKey(2), v).isOk());
    EXPECT_EQ(v, makeValue(2));
    EXPECT_EQ(inner.stats().user_reads, engine_reads);
    EXPECT_EQ(ctr(reg, "cachetier.prefetch.hits"), 1u);
    // Only once per fill: the second hit is an ordinary hit.
    ASSERT_TRUE(tier.get(makeKey(2), v).isOk());
    EXPECT_EQ(ctr(reg, "cachetier.prefetch.hits"), 1u);
    pf.stop();
}

TEST(PrefetcherTest, BadHexInTableIsCorruption)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));
    ScratchDir dir("cachetier_badtable");
    std::string path = dir.path() + "/corr.txt";
    ASSERT_TRUE(Env::defaultEnv()
                    ->writeStringToFile(path, "zz not-hex\n", false)
                    .isOk());
    CorrelationPrefetcher pf(tier, PrefetcherOptions{});
    EXPECT_EQ(pf.loadTable(Env::defaultEnv(), path).code(),
              StatusCode::Corruption);
}

TEST(PrefetcherTest, OnlineMinerLearnsFollowerPairs)
{
    obs::MetricsRegistry reg;
    kv::MemStore inner;
    CacheTier tier(inner, smallOptions(reg));
    ASSERT_TRUE(inner.put(makeKey(1), makeValue(1)).isOk());
    ASSERT_TRUE(inner.put(makeKey(2), makeValue(2)).isOk());

    PrefetcherOptions po;
    po.top_k = 2;
    po.min_support = 2;
    po.metrics = &reg;
    CorrelationPrefetcher pf(tier, po);
    tier.setPrefetcher(&pf);
    pf.start();

    // Train the miner on the A-then-B pattern. Hits observe too, so
    // the pair keeps accumulating support after the first fills.
    Bytes v;
    for (int round = 0; round < 6; ++round) {
        ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
        ASSERT_TRUE(tier.get(makeKey(2), v).isOk());
    }
    pf.drainForTest();

    // Forget both; the next miss on A should warm B from the mined
    // association.
    tier.invalidate(makeKey(1));
    tier.invalidate(makeKey(2));
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    pf.drainForTest();
    EXPECT_TRUE(tier.cachedForTest(makeKey(2)));
    pf.stop();
}

// --- degraded pass-through --------------------------------------

TEST(CacheTierTest, IODegradedLatchesStickyPassThrough)
{
    obs::MetricsRegistry reg;
    ScratchDir dir("cachetier_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 7);
    kv::LogStoreOptions lo;
    lo.dir = dir.path();
    lo.env = &fault;
    auto opened = kv::AppendLogStore::open(lo);
    ASSERT_TRUE(opened.ok());
    kv::KVStore &engine = *opened.value();

    CacheTier tier(engine, smallOptions(reg));
    ASSERT_TRUE(tier.put(makeKey(1), makeValue(1)).isOk());
    Bytes v;
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_TRUE(tier.cachedForTest(makeKey(1)));

    // Break the write path; the engine flips to read-only degraded
    // service and the tier must latch pass-through.
    fault.setWriteError(true);
    Status s;
    for (int i = 0; i < 4 && !s.isIODegraded(); ++i)
        s = tier.put(makeKey(2), makeValue(2));
    ASSERT_TRUE(s.isIODegraded());
    EXPECT_TRUE(tier.isDegraded());
    EXPECT_EQ(reg.gauge("cachetier.degraded").value(), 1);

    // Pre-fault cache contents are dropped; reads go straight to
    // the (still readable) engine and are NOT re-cached.
    EXPECT_FALSE(tier.cachedForTest(makeKey(1)));
    EXPECT_EQ(tier.cachedEntries(), 0u);
    uint64_t before = ctr(reg, "cachetier.degraded_passthrough");
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_EQ(v, makeValue(1));
    EXPECT_FALSE(tier.cachedForTest(makeKey(1)));
    EXPECT_GT(ctr(reg, "cachetier.degraded_passthrough"), before);

    // Sticky: clearing the fault does not un-latch the tier (the
    // engine itself stays degraded until reopened anyway).
    fault.setWriteError(false);
    ASSERT_TRUE(tier.get(makeKey(1), v).isOk());
    EXPECT_TRUE(tier.isDegraded());
    EXPECT_FALSE(tier.cachedForTest(makeKey(1)));
}

} // namespace
} // namespace ethkv::cachetier
