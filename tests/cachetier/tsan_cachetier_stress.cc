/**
 * @file
 * ThreadSanitizer stress for the server cache tier (DESIGN.md
 * §14), always built with -fsanitize=thread (see
 * tests/CMakeLists.txt). The shape under test is the live ethkvd
 * one: many workers issuing GET/PUT/DELETE/BATCH through one
 * CacheTier while the online prefetcher fills in the background
 * and the replication-replay hook fires invalidate() from yet
 * another thread.
 *
 * Beyond TSan's race detection, the readers assert the tier's
 * correctness contract directly: no stale read after an acked
 * mutation. Each key has a single writer that bumps a per-key
 * version with every mutation and publishes (version, present)
 * only AFTER the tier call returns — i.e. after the point a server
 * would ack the client. A reader that then observes an older
 * version, or a value at all after an acked delete, has caught the
 * miss-fill/invalidation race the shard-lock-across-inner-read
 * design exists to prevent.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cachetier/cache_tier.hh"
#include "cachetier/prefetcher.hh"
#include "common/rand.hh"
#include "kvstore/locked_store.hh"
#include "kvstore/mem_store.hh"
#include "kvstore/write_batch.hh"
#include "obs/metrics.hh"

using namespace ethkv;

namespace
{

constexpr int kKeys = 64;
constexpr int kWriters = 2;
constexpr int kReaders = 2;
constexpr int kOpsPerWriter = 30000;

std::atomic<int> failures{0};
std::atomic<bool> writers_done{false};

//! Acked state per key, published after the tier call returns:
//! (version << 1) | present. Version 0 = never written.
std::atomic<uint64_t> acked[kKeys];

Bytes
keyOf(int id)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", id);
    return buf;
}

Bytes
valueOf(int id, uint64_t version)
{
    return keyOf(id) + ":" + std::to_string(version) +
           ":payload-padding-padding";
}

uint64_t
versionOf(const Bytes &value)
{
    size_t colon = value.find(':');
    return std::strtoull(value.c_str() + colon + 1, nullptr, 10);
}

void
fail(const char *what, int key, uint64_t got, uint64_t want)
{
    std::fprintf(stderr,
                 "tsan_cachetier_stress: FAILED: %s key=%d "
                 "got-version=%llu acked-version=%llu\n",
                 what, key, static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    ++failures;
}

/**
 * Single writer per key partition (key % kWriters == writer).
 * Mutates through the tier, then publishes the acked state — the
 * order a real server acks in.
 */
void
writerBody(cachetier::CacheTier &tier, int writer)
{
    Rng rng(0x5eed + writer);
    uint64_t version[kKeys] = {};
    for (int i = 0; i < kOpsPerWriter; ++i) {
        int key = static_cast<int>(rng.nextBounded(kKeys / 2)) *
                      kWriters +
                  writer;
        int dice = static_cast<int>(rng.nextBounded(8));
        if (dice == 0) {
            // Acked delete: no reader may see any version <= this
            // one afterwards.
            uint64_t v = ++version[key];
            if (!tier.del(keyOf(key)).isOk())
                fail("del status", key, 0, v);
            acked[key].store(v << 1,
                             std::memory_order_release);
        } else if (dice == 1) {
            // Batch covering two keys of this writer's partition.
            int key2 = (key + kWriters) % kKeys;
            uint64_t v1 = ++version[key];
            uint64_t v2 = ++version[key2];
            kv::WriteBatch batch;
            batch.put(keyOf(key), valueOf(key, v1));
            batch.put(keyOf(key2), valueOf(key2, v2));
            if (!tier.apply(batch).isOk())
                fail("apply status", key, 0, v1);
            acked[key].store((v1 << 1) | 1,
                             std::memory_order_release);
            acked[key2].store((v2 << 1) | 1,
                              std::memory_order_release);
        } else {
            uint64_t v = ++version[key];
            if (!tier.put(keyOf(key), valueOf(key, v)).isOk())
                fail("put status", key, 0, v);
            acked[key].store((v << 1) | 1,
                             std::memory_order_release);
        }
    }
}

/**
 * Readers assert freshness against the acked state loaded BEFORE
 * the get: anything the tier returns must be at least that new.
 * (Newer is always legal — a concurrent unacked mutation may have
 * landed — so only the stale direction is a failure.)
 */
void
readerBody(cachetier::CacheTier &tier, int reader)
{
    Rng rng(0xbeef + reader);
    Bytes value;
    while (!writers_done.load(std::memory_order_acquire)) {
        int key = static_cast<int>(rng.nextBounded(kKeys));
        uint64_t a = acked[key].load(std::memory_order_acquire);
        uint64_t acked_version = a >> 1;
        bool acked_present = (a & 1) != 0;
        Status s = tier.get(keyOf(key), value);
        if (s.isOk()) {
            uint64_t got = versionOf(value);
            if (got < acked_version)
                fail(acked_present
                         ? "stale value after acked put"
                         : "stale value after acked delete",
                     key, got, acked_version);
        } else if (!s.isNotFound()) {
            fail("get status", key, 0, acked_version);
        }
        // NotFound after an acked put is legal only because a
        // newer delete may be in flight; the single-writer version
        // stream means any such delete outranks acked_version, so
        // there is nothing stale to assert on.
    }
}

} // namespace

int
main()
{
    kv::MemStore mem;
    kv::LockedKVStore inner(mem);

    obs::MetricsRegistry metrics;
    cachetier::CacheTierOptions options;
    // Small enough that eviction, admission, and the sketch run
    // constantly; 4 shards keep cross-shard batch invalidation in
    // play.
    options.capacity_bytes = 64u << 10;
    options.shards = 4;
    options.metrics = &metrics;
    cachetier::CacheTier tier(inner, options);

    cachetier::PrefetcherOptions popts;
    popts.top_k = 2;
    popts.metrics = &metrics;
    cachetier::CorrelationPrefetcher prefetcher(tier, popts);
    tier.setPrefetcher(&prefetcher);
    prefetcher.start();

    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w)
        threads.emplace_back([&tier, w] { writerBody(tier, w); });
    for (int r = 0; r < kReaders; ++r)
        threads.emplace_back([&tier, r] { readerBody(tier, r); });

    // The replication-replay path: invalidate() storms from a
    // thread that is neither a reader nor a writer.
    threads.emplace_back([&tier] {
        Rng rng(0x7a11);
        while (!writers_done.load(std::memory_order_acquire)) {
            tier.invalidate(
                keyOf(static_cast<int>(rng.nextBounded(kKeys))));
        }
    });

    // Stats poller: the server's STATS op reads these from any
    // worker.
    threads.emplace_back([&tier] {
        while (!writers_done.load(std::memory_order_acquire)) {
            (void)tier.cachedBytes();
            (void)tier.cachedEntries();
            (void)tier.stats();
            (void)tier.liveKeyCount();
        }
    });

    for (int w = 0; w < kWriters; ++w)
        threads[static_cast<size_t>(w)].join();
    writers_done.store(true, std::memory_order_release);
    for (size_t t = kWriters; t < threads.size(); ++t)
        threads[t].join();
    prefetcher.stop();

    if (failures.load() != 0) {
        std::fprintf(stderr, "tsan_cachetier_stress: %d failures\n",
                     failures.load());
        return 1;
    }
    std::printf("tsan_cachetier_stress: OK (%d writers x %d ops, "
                "%d readers, invalidator, poller, prefetcher)\n",
                kWriters, kOpsPerWriter, kReaders);
    return 0;
}
