/**
 * @file
 * End-to-end server tests: a real ethkv::server::Server on an
 * ephemeral port, driven through the client library over loopback
 * TCP. Covers every opcode, error-frame semantics (NotFound,
 * NotSupported, IODegraded as a distinct wire code), pipelined
 * FIFO completion, multi-connection concurrency, and a hostile
 * peer sending garbage bytes at an intact server.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_env.hh"
#include "kvstore/btree_store.hh"
#include "obs/json.hh"
#include "obs/trace_event.hh"
#include "kvstore/hash_store.hh"
#include "kvstore/locked_store.hh"
#include "kvstore/log_store.hh"
#include "kvstore/sharded_store.hh"
#include "server/client.hh"
#include "server/net_socket.hh"
#include "server/server.hh"
#include "../kvstore/test_util.hh"

namespace ethkv::server
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;
using testutil::ScratchDir;

/**
 * Read from a raw socket until the reader yields one frame.
 * @return false on EOF/error before a frame arrived.
 */
bool
recvRawFrame(int fd, FrameReader &reader, Frame &frame)
{
    for (;;) {
        if (reader.next(frame).isOk())
            return true;
        if (reader.broken())
            return false;
        Bytes buf;
        size_t n = 0;
        Status err;
        net::IoResult r = net::readSome(fd, buf, 4096, n, err);
        if (r == net::IoResult::Eof ||
            r == net::IoResult::Error)
            return false;
        if (n > 0)
            reader.feed(buf);
    }
}

/** A running server over a locked B+-tree, torn down on scope exit. */
class ServerFixture
{
  public:
    explicit ServerFixture(ServerOptions options = {})
        : locked_(store_), server_(locked_, options)
    {
        server_.start().expectOk("test server start");
    }

    ~ServerFixture() { server_.stop(); }

    uint16_t port() const { return server_.port(); }
    kv::BTreeStore &store() { return store_; }

    std::unique_ptr<Client>
    connect()
    {
        auto client = Client::open("127.0.0.1", port());
        EXPECT_TRUE(client.ok()) << client.status().message();
        return client.take();
    }

  private:
    kv::BTreeStore store_;
    kv::LockedKVStore locked_;
    Server server_;
};

TEST(ServerTest, AllFiveOpsRoundTrip)
{
    ServerFixture fx;
    auto client = fx.connect();
    ASSERT_TRUE(client);

    // PUT then GET.
    ASSERT_TRUE(client->put("alpha", "one").isOk());
    Bytes value;
    ASSERT_TRUE(client->get("alpha", value).isOk());
    EXPECT_EQ(value, "one");

    // DELETE; the key is gone.
    ASSERT_TRUE(client->del("alpha").isOk());
    EXPECT_TRUE(client->get("alpha", value).isNotFound());

    // BATCH applies atomically through the wire.
    kv::WriteBatch batch;
    batch.put("b1", "v1");
    batch.put("b2", "v2");
    batch.del("b1");
    ASSERT_TRUE(client->apply(batch).isOk());
    EXPECT_TRUE(client->get("b1", value).isNotFound());
    ASSERT_TRUE(client->get("b2", value).isOk());
    EXPECT_EQ(value, "v2");

    // SCAN over an ordered range.
    for (uint64_t i = 0; i < 20; ++i)
        ASSERT_TRUE(
            client->put(makeKey(i, "s"), makeValue(i)).isOk());
    ScanResult scan;
    ASSERT_TRUE(client
                    ->scan(makeKey(5, "s"), makeKey(15, "s"), 100,
                           scan)
                    .isOk());
    ASSERT_EQ(scan.entries.size(), 10u);
    EXPECT_EQ(scan.entries[0].key, makeKey(5, "s"));
    EXPECT_FALSE(scan.truncated);

    // STATS returns the JSON document.
    Bytes json;
    ASSERT_TRUE(client->stats(json).isOk());
    EXPECT_NE(json.find("ethkv.server.stats.v2"),
              std::string::npos);
    EXPECT_NE(json.find("btree"), std::string::npos);
}

TEST(ServerTest, ScanHonorsServerSideCap)
{
    ServerOptions options;
    options.scan_limit_max = 8;
    ServerFixture fx(options);
    auto client = fx.connect();
    ASSERT_TRUE(client);
    for (uint64_t i = 0; i < 50; ++i)
        ASSERT_TRUE(
            client->put(makeKey(i, "cap"), makeValue(i)).isOk());
    ScanResult scan;
    ASSERT_TRUE(client
                    ->scan(makeKey(0, "cap"), makeKey(49, "cap"),
                           1000, scan)
                    .isOk());
    EXPECT_EQ(scan.entries.size(), 8u);
    EXPECT_TRUE(scan.truncated);
}

TEST(ServerTest, ScanHonorsByteBudget)
{
    // A scan whose entries would blow past the response byte
    // budget must truncate instead of emitting an over-sized
    // frame; the client pages through via the truncated flag.
    ServerOptions options;
    options.scan_byte_budget = 2048;
    ServerFixture fx(options);
    auto client = fx.connect();
    ASSERT_TRUE(client);

    const std::string value(100, 'v');
    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(client->put(makeKey(i, "bb"), value).isOk());

    ScanResult scan;
    ASSERT_TRUE(client
                    ->scan(makeKey(0, "bb"), makeKey(100, "bb"),
                           1000, scan)
                    .isOk());
    EXPECT_TRUE(scan.truncated);
    ASSERT_FALSE(scan.entries.empty());
    // ~130 wire bytes per entry against a 2048-byte budget.
    EXPECT_LT(scan.entries.size(), 20u);

    // Page through the remainder: resume each scan just past the
    // last key returned. Every entry arrives exactly once.
    size_t total = scan.entries.size();
    Bytes cursor = scan.entries.back().key;
    while (scan.truncated) {
        Bytes next_start = cursor + '\0';
        ASSERT_TRUE(client
                        ->scan(next_start, makeKey(100, "bb"),
                               1000, scan)
                        .isOk());
        ASSERT_FALSE(scan.entries.empty());
        total += scan.entries.size();
        cursor = scan.entries.back().key;
    }
    EXPECT_EQ(total, 100u);

    // The connection survived the truncated scans.
    Bytes got;
    ASSERT_TRUE(client->get(makeKey(0, "bb"), got).isOk());
    EXPECT_EQ(got, value);
}

TEST(ServerTest, ShardedScanPagesLosslesslyOverTheWire)
{
    // The wire paging contract over a sharded engine (DESIGN.md
    // §15): truncated responses resume through the k-way merge,
    // and the reassembled stream is every key exactly once, in
    // global order, exactly as a single store would page it.
    std::vector<std::unique_ptr<kv::KVStore>> shards;
    for (int i = 0; i < 4; ++i)
        shards.push_back(std::make_unique<kv::BTreeStore>());
    kv::ShardedOptions sopts;
    sopts.lock_shards = true;
    kv::ShardedKVStore store(std::move(shards), sopts);

    ServerOptions options;
    options.scan_byte_budget = 2048;
    Server server(store, options);
    server.start().expectOk("sharded test server start");
    auto client = Client::open("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().message();

    const std::string value(100, 'v');
    const uint64_t n = 200;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(
            client.value()->put(makeKey(i, "sh"), value).isOk());

    std::vector<Bytes> keys;
    ScanResult scan;
    ASSERT_TRUE(client.value()
                    ->scan(makeKey(0, "sh"), makeKey(n, "sh"),
                           1000, scan)
                    .isOk());
    EXPECT_TRUE(scan.truncated); // the budget forces paging
    for (;;) {
        ASSERT_FALSE(scan.entries.empty());
        for (const auto &e : scan.entries)
            keys.push_back(e.key);
        if (!scan.truncated)
            break;
        Bytes next_start = keys.back() + '\0';
        ASSERT_TRUE(client.value()
                        ->scan(next_start, makeKey(n, "sh"),
                               1000, scan)
                        .isOk());
    }
    ASSERT_EQ(keys.size(), n);
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(keys[i], makeKey(i, "sh"));
    server.stop();
}

TEST(ServerTest, LargeValuesSurviveTheWire)
{
    ServerFixture fx;
    auto client = fx.connect();
    ASSERT_TRUE(client);
    Bytes big(1u << 20, 'q');
    big[12345] = 'Z';
    ASSERT_TRUE(client->put("big", big).isOk());
    Bytes back;
    ASSERT_TRUE(client->get("big", back).isOk());
    EXPECT_EQ(back, big);
}

TEST(ServerTest, ManyConnectionsConcurrently)
{
    ServerFixture fx;
    constexpr int kThreads = 8;
    constexpr uint64_t kOpsEach = 300;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&fx, &failures, t] {
            auto client = fx.connect();
            if (!client) {
                ++failures;
                return;
            }
            std::string salt = "t" + std::to_string(t);
            Bytes value;
            for (uint64_t i = 0; i < kOpsEach; ++i) {
                if (!client->put(makeKey(i, salt), makeValue(i))
                         .isOk() ||
                    !client->get(makeKey(i, salt), value).isOk() ||
                    value != makeValue(i)) {
                    ++failures;
                    return;
                }
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(fx.store().liveKeyCount(), kThreads * kOpsEach);
}

TEST(ServerTest, PipelinedFifoCompletions)
{
    ServerFixture fx;
    std::vector<Opcode> completed;
    std::vector<WireStatus> statuses;
    auto client = PipelinedClient::open(
        "127.0.0.1", fx.port(), 16,
        [&](Opcode op, WireStatus status, uint64_t,
            const Bytes &) {
            completed.push_back(op);
            statuses.push_back(status);
        });
    ASSERT_TRUE(client.ok()) << client.status().message();
    auto &pipe = *client.value();

    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(
            pipe.submitPut(makeKey(i, "p"), makeValue(i)).isOk());
    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(pipe.submitGet(makeKey(i, "p")).isOk());
    ASSERT_TRUE(pipe.submitGet("no-such-key").isOk());
    ASSERT_TRUE(pipe.drain().isOk());

    ASSERT_EQ(completed.size(), 201u);
    for (size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(completed[i], Opcode::Put);
        EXPECT_EQ(statuses[i], WireStatus::Ok);
    }
    for (size_t i = 100; i < 200; ++i) {
        EXPECT_EQ(completed[i], Opcode::Get);
        EXPECT_EQ(statuses[i], WireStatus::Ok);
    }
    EXPECT_EQ(statuses[200], WireStatus::NotFound);
}

TEST(ServerTest, NotSupportedCrossesTheWire)
{
    // Serve an engine without scan support; the client must see
    // NotSupported, not a dropped connection.
    kv::HashStore hash;
    kv::LockedKVStore locked(hash);
    ServerOptions options;
    Server server(locked, options);
    server.start().expectOk("start");
    auto client = Client::open("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()->put("k", "v").isOk());
    ScanResult scan;
    Status s = client.value()->scan("a", "z", 10, scan);
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
    // The session survives the error frame.
    Bytes v;
    ASSERT_TRUE(client.value()->get("k", v).isOk());
    server.stop();
}

TEST(ServerTest, IODegradedSurfacesAsDistinctWireCode)
{
    // A durable engine that degrades mid-session must report
    // IODegraded — not IOError — to every client, while reads
    // keep serving.
    ScratchDir dir("srv_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 5);
    kv::LogStoreOptions log_options;
    log_options.dir = dir.path();
    log_options.sync_appends = true;
    log_options.env = &fault;
    auto opened = kv::AppendLogStore::open(log_options);
    ASSERT_TRUE(opened.ok());
    auto store = opened.take();
    kv::LockedKVStore locked(*store);
    Server server(locked, ServerOptions{});
    server.start().expectOk("start");

    auto client = Client::open("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()->put("healthy", "yes").isOk());

    fault.setSyncError(true);
    // The triggering write surfaces its own I/O error; the store
    // is degraded from then on.
    Status s = client.value()->put("doomed", "write");
    EXPECT_EQ(s.code(), StatusCode::IOError) << s.toString();
    // Degraded is sticky and crosses the wire as its own code.
    EXPECT_TRUE(
        client.value()->del("healthy").isIODegraded());
    EXPECT_TRUE(
        client.value()->put("doomed", "again").isIODegraded());
    Bytes v;
    ASSERT_TRUE(client.value()->get("healthy", v).isOk());
    EXPECT_EQ(v, "yes");
    fault.setSyncError(false);
    server.stop();
}

TEST(ServerTest, GarbageBytesGetBadFrameThenClose)
{
    // A peer speaking noise instead of the protocol: the server
    // answers with a best-effort BadFrame frame and closes. It
    // must never crash, and other connections are unaffected.
    ServerFixture fx;
    auto probe = fx.connect(); // healthy control connection
    ASSERT_TRUE(probe);

    auto fd = net::connectTcp("127.0.0.1", fx.port());
    ASSERT_TRUE(fd.ok());
    Bytes garbage = "this is definitely not an EK frame........";
    ASSERT_TRUE(net::writeAll(fd.value(), garbage).isOk());

    // Read until EOF; the server's parting shot must be a
    // BadFrame response.
    FrameReader reader;
    Frame frame;
    bool saw_bad_frame =
        recvRawFrame(fd.value(), reader, frame) &&
        frame.type == static_cast<uint8_t>(WireStatus::BadFrame);
    net::closeFd(fd.value());
    EXPECT_TRUE(saw_bad_frame);

    // The server is intact: the control connection still works.
    ASSERT_TRUE(probe->put("still", "alive").isOk());
    Bytes v;
    ASSERT_TRUE(probe->get("still", v).isOk());
    EXPECT_EQ(v, "alive");
}

TEST(ServerTest, TruncatedFrameThenDisconnectIsHarmless)
{
    // Half a header then a hangup — the server must just reap the
    // connection.
    ServerFixture fx;
    for (int round = 0; round < 10; ++round) {
        auto fd = net::connectTcp("127.0.0.1", fx.port());
        ASSERT_TRUE(fd.ok());
        Bytes partial("EK", 2);
        partial.push_back(static_cast<char>(kWireVersion));
        ASSERT_TRUE(net::writeAll(fd.value(), partial).isOk());
        net::closeFd(fd.value());
    }
    auto client = fx.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("after", "storm").isOk());
}

TEST(ServerTest, MalformedPayloadKeepsConnectionAlive)
{
    // An intact frame whose payload does not decode (truncated
    // varint) earns InvalidArgument — payload damage inside a good
    // frame never loses framing, so the session continues.
    ServerFixture fx;
    auto fd = net::connectTcp("127.0.0.1", fx.port());
    ASSERT_TRUE(fd.ok());

    Bytes bogus_payload;
    bogus_payload.push_back('\x7f'); // klen=127, no key bytes
    Bytes wire;
    appendFrame(wire, static_cast<uint8_t>(Opcode::Get), 31,
                bogus_payload);
    ASSERT_TRUE(net::writeAll(fd.value(), wire).isOk());

    FrameReader reader;
    Frame frame;
    ASSERT_TRUE(recvRawFrame(fd.value(), reader, frame));
    EXPECT_EQ(frame.type,
              static_cast<uint8_t>(WireStatus::InvalidArgument));
    EXPECT_EQ(frame.request_id, 31u);

    // Same socket still serves well-formed requests.
    Bytes good_payload;
    encodePut(good_payload, "k-after", "v-after");
    wire.clear();
    appendFrame(wire, static_cast<uint8_t>(Opcode::Put), 32,
                good_payload);
    ASSERT_TRUE(net::writeAll(fd.value(), wire).isOk());
    ASSERT_TRUE(recvRawFrame(fd.value(), reader, frame));
    EXPECT_EQ(frame.type, static_cast<uint8_t>(WireStatus::Ok));
    EXPECT_EQ(frame.request_id, 32u);
    net::closeFd(fd.value());
}

/**
 * Forwarding decorator with a hostile engine name — quotes,
 * backslashes, and control characters that must survive STATS JSON
 * emission byte-correct.
 */
class HostileNameStore : public kv::KVStore
{
  public:
    explicit HostileNameStore(kv::KVStore &inner) : inner_(inner) {}

    Status put(BytesView key, BytesView value) override
    {
        return inner_.put(key, value);
    }
    Status get(BytesView key, Bytes &value) override
    {
        return inner_.get(key, value);
    }
    Status del(BytesView key) override { return inner_.del(key); }
    Status scan(BytesView start, BytesView end,
                const kv::ScanCallback &cb) override
    {
        return inner_.scan(start, end, cb);
    }
    Status flush() override { return inner_.flush(); }
    const kv::IOStats &stats() const override
    {
        return inner_.stats();
    }
    std::string name() const override
    {
        return "ev\"il\\engine\n\tname\x01";
    }
    uint64_t liveKeyCount() override
    {
        return inner_.liveKeyCount();
    }

  private:
    kv::KVStore &inner_;
};

TEST(ServerTest, StatsEscapesHostileEngineName)
{
    // Regression: engine names with quotes/control characters used
    // to be spliced into the STATS document verbatim, producing
    // invalid JSON. The shared obs JSON writer must escape them.
    kv::BTreeStore store;
    HostileNameStore hostile(store);
    kv::LockedKVStore locked(hostile);
    Server server(locked, ServerOptions{});
    server.start().expectOk("start");
    auto client = Client::open("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());

    Bytes json;
    ASSERT_TRUE(client.value()->stats(json).isOk());
    server.stop();

    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(json, doc).isOk())
        << "json: " << json;
    const obs::JsonValue *engine = doc.find("engine");
    ASSERT_NE(engine, nullptr);
    ASSERT_TRUE(engine->isString());
    // The parser round-trips the escapes back to the raw bytes.
    EXPECT_EQ(engine->string, "ev\"il\\engine\n\tname\x01");
    // And the wire bytes hold the escaped forms, never raw ctrls.
    EXPECT_NE(json.find("\\\"il\\\\engine\\n\\tname\\u0001"),
              std::string::npos)
        << json;
}

TEST(ServerTest, SlowLogCapturesOpsOverTheWire)
{
    // slow_op_micros = 0 marks every request slow, so a couple of
    // ops must show up in the SLOWLOG response.
    ServerOptions options;
    options.slow_op_micros = 0;
    options.slow_op_capacity = 16;
    ServerFixture fx(options);
    auto client = fx.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("slow", "op").isOk());
    Bytes value;
    ASSERT_TRUE(client->get("slow", value).isOk());

    Bytes json;
    ASSERT_TRUE(client->slowLog(json).isOk());
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(json, doc).isOk()) << json;
    const obs::JsonValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "ethkv.slowops.v1");
    const obs::JsonValue *recorded = doc.find("recorded");
    ASSERT_NE(recorded, nullptr);
    EXPECT_GE(recorded->asU64(), 2u);
    const obs::JsonValue *ops = doc.find("ops");
    ASSERT_NE(ops, nullptr);
    ASSERT_TRUE(ops->isArray());
    ASSERT_FALSE(ops->items.empty());
    bool saw_put = false;
    for (const obs::JsonValue &op : ops->items) {
        const obs::JsonValue *opcode = op.find("opcode");
        ASSERT_NE(opcode, nullptr);
        if (opcode->asU64() ==
            static_cast<uint64_t>(Opcode::Put))
            saw_put = true;
        const obs::JsonValue *total = op.find("total_ns");
        ASSERT_NE(total, nullptr);
    }
    EXPECT_TRUE(saw_put) << json;
}

TEST(ServerTest, SlowLogDisabledReturnsEmptyDocument)
{
    ServerFixture fx; // default: slow_op_micros = -1, off
    auto client = fx.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("k", "v").isOk());
    Bytes json;
    ASSERT_TRUE(client->slowLog(json).isOk());
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(json, doc).isOk()) << json;
    const obs::JsonValue *capacity = doc.find("capacity");
    ASSERT_NE(capacity, nullptr);
    EXPECT_EQ(capacity->asU64(), 0u);
    const obs::JsonValue *ops = doc.find("ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_TRUE(ops->items.empty());
}

TEST(ServerTest, TracedRequestsProduceMatchingServerSpans)
{
    // End to end: a tracing client against a tracing server. The
    // server's TRACEDUMP must hold req.* spans carrying the same
    // trace ids the client generated, so the two logs merge into
    // one attributable timeline.
    obs::TraceEventLog server_log(/*absolute_clock=*/true);
    obs::TraceEventLog client_log(/*absolute_clock=*/true);
    ServerOptions options;
    options.trace_log = &server_log;
    options.trace_sample_shift = 0; // trace every request
    ServerFixture fx(options);
    auto client = fx.connect();
    ASSERT_TRUE(client);
    constexpr uint64_t kBase = 0xAB00000000000000ull;
    client->enableTrace(&client_log, kBase, /*tid=*/1);

    ASSERT_TRUE(client->put("traced", "value").isOk());
    Bytes value;
    ASSERT_TRUE(client->get("traced", value).isOk());
    EXPECT_EQ(value, "value");

    // Client-side spans exist and sit on pid 2.
    ASSERT_GE(client_log.size(), 2u);
    obs::JsonValue client_doc;
    ASSERT_TRUE(
        obs::parseJson(client_log.toJson(), client_doc).isOk());
    for (const obs::JsonValue &ev : client_doc.items) {
        const obs::JsonValue *name = ev.find("name");
        ASSERT_NE(name, nullptr);
        if (name->string.rfind("cli.", 0) != 0)
            continue;
        const obs::JsonValue *pid = ev.find("pid");
        ASSERT_NE(pid, nullptr);
        EXPECT_EQ(pid->asU64(), 2u);
    }

    // Server-side dump: req.* spans on pid 1 whose trace_id args
    // land in the client's id range.
    Bytes dump;
    ASSERT_TRUE(client->traceDump(dump).isOk());
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parseJson(dump, doc).isOk());
    ASSERT_TRUE(doc.isArray());
    size_t matched = 0;
    for (const obs::JsonValue &ev : doc.items) {
        const obs::JsonValue *name = ev.find("name");
        if (name == nullptr ||
            name->string.rfind("req.", 0) != 0)
            continue;
        const obs::JsonValue *pid = ev.find("pid");
        ASSERT_NE(pid, nullptr);
        EXPECT_EQ(pid->asU64(), 1u);
        const obs::JsonValue *args = ev.find("args");
        if (args == nullptr)
            continue;
        const obs::JsonValue *tid = args->find("trace_id");
        if (tid != nullptr && (tid->asU64() & kBase) == kBase)
            ++matched;
    }
    EXPECT_GE(matched, 2u) << dump;
}

TEST(ServerTest, UntracedClientAgainstTracingServerStillWorks)
{
    // Wire v1 traffic at a tracing-enabled server: requests work
    // and no req.* span claims a trace id.
    obs::TraceEventLog server_log(/*absolute_clock=*/true);
    ServerOptions options;
    options.trace_log = &server_log;
    options.trace_sample_shift = 0;
    ServerFixture fx(options);
    auto client = fx.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("plain", "v1").isOk());
    Bytes value;
    ASSERT_TRUE(client->get("plain", value).isOk());
    EXPECT_EQ(value, "v1");
}

TEST(ServerTest, GracefulStopFlushesEngine)
{
    // An orderly stop() must flush the engine: every acked write
    // is on disk when the process would exit.
    ScratchDir dir("srv_flush");
    kv::LogStoreOptions log_options;
    log_options.dir = dir.path();
    log_options.sync_appends = false; // flush() does the sync
    auto opened = kv::AppendLogStore::open(log_options);
    ASSERT_TRUE(opened.ok());
    auto store = opened.take();
    kv::LockedKVStore locked(*store);
    auto server = std::make_unique<Server>(locked,
                                           ServerOptions{});
    server->start().expectOk("start");
    auto client = Client::open("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(client.value()
                        ->put(makeKey(i, "g"), makeValue(i))
                        .isOk());
    client.value()->close();
    server->stop();
    store.reset(); // close without another flush

    auto reopened = kv::AppendLogStore::open(log_options);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value()->liveKeyCount(), 100u);
}

TEST(ServerTest, IdleConnectionsAreReaped)
{
    ServerOptions options;
    obs::MetricsRegistry metrics;
    options.metrics = &metrics;
    options.conn_idle_timeout_ms = 100;
    ServerFixture fx(options);

    // A half-open peer: connects, sends nothing, never reads.
    // Without reaping this socket would pin server memory forever
    // (the kernel never reports a silent peer as dead).
    auto dead = net::connectTcp("127.0.0.1", fx.port());
    ASSERT_TRUE(dead.ok());

    // An active client keeps talking across several idle windows;
    // traffic must reset its clock — only the silent peer dies.
    auto client = fx.connect();
    ASSERT_TRUE(client);
    Bytes value;
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(client->put("tick", "tock").isOk());
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }
    EXPECT_EQ(metrics.counter("server.conns.idle_closed").value(),
              1u);
    ASSERT_TRUE(client->get("tick", value).isOk());

    // The reaped fd really was closed server-side: the peer sees
    // EOF instead of silence.
    Bytes buf;
    size_t n = 0;
    Status err;
    net::IoResult r =
        net::readSome(dead.value(), buf, 64, n, err);
    EXPECT_TRUE(r == net::IoResult::Eof) << static_cast<int>(r);
    net::closeFd(dead.value());
}

TEST(ClientTimeout, ConnectTimesOutOnUnreachablePort)
{
    // A listener with a full backlog nobody drains: SYNs queue
    // but accept() never runs... the closest loopback gets to a
    // black-holed connect. Port 1 (unbound) gives an immediate
    // refusal on loopback, so use the undrained listener for the
    // timeout path and just bound the wait.
    auto listener = net::listenTcp("127.0.0.1", 0, 0);
    ASSERT_TRUE(listener.ok());
    auto lport = net::localPort(listener.value());
    ASSERT_TRUE(lport.ok());

    ClientOptions opts;
    opts.connect_timeout_ms = 200;
    opts.io_timeout_ms = 200;
    auto start = std::chrono::steady_clock::now();
    auto client =
        Client::open("127.0.0.1", lport.value(), opts);
    auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Loopback may accept into the kernel queue (then the get()
    // below times out) or refuse; either way open() must return
    // promptly, never hang.
    EXPECT_LT(elapsed, 5000);
    if (client.ok()) {
        Bytes value;
        start = std::chrono::steady_clock::now();
        Status s = client.value()->get("k", value);
        elapsed = std::chrono::duration_cast<
                      std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        EXPECT_TRUE((s.code() == StatusCode::IOError)) << s.toString();
        EXPECT_NE(s.message().find("timed out"),
                  std::string::npos)
            << s.toString();
        EXPECT_LT(elapsed, 5000);
    }
    net::closeFd(listener.value());
}

TEST(ClientTimeout, ReadTimesOutOnSilentServer)
{
    // A server that accepts and then never says a word.
    auto listener = net::listenTcp("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    auto lport = net::localPort(listener.value());
    ASSERT_TRUE(lport.ok());
    std::atomic<bool> done{false};
    std::thread acceptor([&] {
        while (!done.load()) {
            auto fd = net::acceptOn(listener.value());
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            if (fd.ok()) {
                // Hold the fd open, read nothing, write nothing.
                while (!done.load())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                net::closeFd(fd.value());
            }
        }
    });

    ClientOptions opts;
    opts.connect_timeout_ms = 1000;
    opts.io_timeout_ms = 150;
    auto client = Client::open("127.0.0.1", lport.value(), opts);
    ASSERT_TRUE(client.ok()) << client.status().message();
    Bytes value;
    auto start = std::chrono::steady_clock::now();
    Status s = client.value()->get("k", value);
    auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_TRUE((s.code() == StatusCode::IOError)) << s.toString();
    EXPECT_NE(s.message().find("timed out"), std::string::npos)
        << s.toString();
    EXPECT_GE(elapsed, 100);
    EXPECT_LT(elapsed, 5000);

    // io_timeout_ms = 0 keeps the wait-forever contract; not
    // exercised end-to-end (it would hang), but the option must
    // still produce a working client against a real server.
    done.store(true);
    acceptor.join();
    net::closeFd(listener.value());
}

} // namespace
} // namespace ethkv::server
