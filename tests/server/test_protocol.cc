/**
 * @file
 * Wire-protocol tests: frame codec round-trips, payload codecs,
 * and — the important part — adversarial inputs. A FrameReader fed
 * truncated headers, oversized lengths, corrupt checksums, or plain
 * garbage must never crash, never allocate unboundedly, and must
 * park in its sticky broken state so the owner tears the
 * connection down.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rand.hh"
#include "server/protocol.hh"

namespace ethkv::server
{
namespace
{

Bytes
frameOf(uint8_t type, uint32_t id, BytesView payload)
{
    Bytes out;
    appendFrame(out, type, id, payload);
    return out;
}

TEST(FrameCodecTest, RoundTripSingleFrame)
{
    Bytes wire = frameOf(static_cast<uint8_t>(Opcode::Put), 7,
                         "hello payload");
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_EQ(frame.type, static_cast<uint8_t>(Opcode::Put));
    EXPECT_EQ(frame.request_id, 7u);
    EXPECT_EQ(frame.payload, "hello payload");
    EXPECT_TRUE(reader.next(frame).isNotFound());
    EXPECT_FALSE(reader.broken());
}

TEST(FrameCodecTest, ByteAtATimeDelivery)
{
    // TCP may deliver any fragmentation; one byte at a time is the
    // worst case.
    Bytes wire = frameOf(static_cast<uint8_t>(Opcode::Get), 42,
                         "key-bytes");
    FrameReader reader;
    Frame frame;
    for (size_t i = 0; i + 1 < wire.size(); ++i) {
        reader.feed(BytesView(wire).substr(i, 1));
        EXPECT_TRUE(reader.next(frame).isNotFound());
    }
    reader.feed(BytesView(wire).substr(wire.size() - 1, 1));
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_EQ(frame.request_id, 42u);
    EXPECT_EQ(frame.payload, "key-bytes");
}

TEST(FrameCodecTest, BackToBackFrames)
{
    Bytes wire;
    for (uint32_t id = 1; id <= 5; ++id)
        appendFrame(wire, static_cast<uint8_t>(Opcode::Delete), id,
                    "k" + std::to_string(id));
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    for (uint32_t id = 1; id <= 5; ++id) {
        ASSERT_TRUE(reader.next(frame).isOk());
        EXPECT_EQ(frame.request_id, id);
        EXPECT_EQ(frame.payload, "k" + std::to_string(id));
    }
    EXPECT_TRUE(reader.next(frame).isNotFound());
}

TEST(FrameCodecTest, EmptyPayloadFrame)
{
    Bytes wire = frameOf(static_cast<uint8_t>(Opcode::Stats), 1,
                         BytesView());
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_TRUE(frame.payload.empty());
}

// -- Wire v2 (traced frames) -------------------------------------

TEST(TracedFrameTest, RoundTripCarriesTraceContext)
{
    Bytes wire;
    appendFrameTraced(wire, static_cast<uint8_t>(Opcode::Get), 11,
                      "traced-payload",
                      {0xDEADBEEFCAFE1234ull, kTraceFlagSampled});
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_EQ(frame.request_id, 11u);
    EXPECT_EQ(frame.payload, "traced-payload");
    ASSERT_TRUE(frame.has_trace);
    EXPECT_EQ(frame.trace.id, 0xDEADBEEFCAFE1234ull);
    EXPECT_EQ(frame.trace.flags, kTraceFlagSampled);
}

TEST(TracedFrameTest, OldFramesStillDecodeWithoutTrace)
{
    // Backward compatibility: a v1 frame through a default (traced
    // capable) reader decodes exactly as before, has_trace false.
    Bytes wire = frameOf(static_cast<uint8_t>(Opcode::Put), 3,
                         "legacy");
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_FALSE(frame.has_trace);
    EXPECT_EQ(frame.trace.id, 0u);
    EXPECT_EQ(frame.payload, "legacy");
}

TEST(TracedFrameTest, MixedVersionsOnOneStream)
{
    Bytes wire;
    appendFrame(wire, static_cast<uint8_t>(Opcode::Get), 1, "v1");
    appendFrameTraced(wire, static_cast<uint8_t>(Opcode::Get), 2,
                      "v2", {42, kTraceFlagSampled});
    appendFrame(wire, static_cast<uint8_t>(Opcode::Get), 3, "v1b");
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_FALSE(frame.has_trace);
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_TRUE(frame.has_trace);
    EXPECT_EQ(frame.trace.id, 42u);
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_FALSE(frame.has_trace);
    EXPECT_EQ(frame.payload, "v1b");
}

TEST(TracedFrameTest, V1PinnedReaderRejectsTracedFrames)
{
    // A peer pinned to wire v1 (feature flag off) must reject v2
    // frames cleanly: sticky Corruption naming the reason, not a
    // crash or a misparse.
    Bytes wire;
    appendFrameTraced(wire, static_cast<uint8_t>(Opcode::Get), 5,
                      "p", {7, 0});
    FrameReader reader(kDefaultMaxFrameBytes,
                       /*accept_traced=*/false);
    reader.feed(wire);
    Frame frame;
    Status s = reader.next(frame);
    ASSERT_TRUE(s.code() == StatusCode::Corruption);
    EXPECT_NE(s.toString().find("pinned to wire v1"),
              std::string::npos);
    EXPECT_TRUE(reader.broken());
    // Sticky: a valid v1 frame afterwards never parses either.
    reader.feed(frameOf(1, 6, "ok"));
    EXPECT_TRUE(reader.next(frame).code() == StatusCode::Corruption);
}

TEST(TracedFrameTest, V1PinnedReaderStillTakesV1Frames)
{
    Bytes wire = frameOf(static_cast<uint8_t>(Opcode::Get), 8,
                         "plain");
    FrameReader reader(kDefaultMaxFrameBytes,
                       /*accept_traced=*/false);
    reader.feed(wire);
    Frame frame;
    ASSERT_TRUE(reader.next(frame).isOk());
    EXPECT_EQ(frame.payload, "plain");
}

TEST(TracedFrameTest, TracedBodyTooShortBreaksReader)
{
    // A v2 frame whose body cannot hold the 9-byte trace context
    // is structurally invalid. Hand-build one: header claiming a
    // 4-byte body with a valid checksum over those 4 bytes.
    Bytes wire = frameOf(1, 1, "abcd");
    wire[2] = static_cast<char>(kWireVersionTraced);
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    Status s = reader.next(frame);
    ASSERT_TRUE(s.code() == StatusCode::Corruption);
    EXPECT_NE(s.toString().find("too short"), std::string::npos);
    EXPECT_TRUE(reader.broken());
}

TEST(FrameFuzzTest, BadMagicBreaksReader)
{
    Bytes wire = frameOf(1, 1, "x");
    wire[0] = 'Z';
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    EXPECT_TRUE(reader.next(frame).code() == StatusCode::Corruption);
    EXPECT_TRUE(reader.broken());
    // Sticky: even valid bytes afterwards never parse.
    reader.feed(frameOf(1, 2, "y"));
    EXPECT_TRUE(reader.next(frame).code() == StatusCode::Corruption);
}

TEST(FrameFuzzTest, BadVersionBreaksReader)
{
    // Version 2 is the (valid) traced revision, so the first
    // unsupported version is kWireVersionTraced + 1.
    Bytes wire = frameOf(1, 1, "x");
    wire[2] = static_cast<char>(kWireVersionTraced + 1);
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    EXPECT_TRUE(reader.next(frame).code() == StatusCode::Corruption);
    EXPECT_TRUE(reader.broken());
}

TEST(FrameFuzzTest, OversizedLengthRejectedBeforeAllocation)
{
    // Declared payload length above the cap must break the reader
    // immediately — before it buffers (or allocates) 4 GiB.
    Bytes wire = frameOf(1, 1, "x");
    wire[8] = '\xff';
    wire[9] = '\xff';
    wire[10] = '\xff';
    wire[11] = '\xff';
    FrameReader reader(1 << 20);
    reader.feed(BytesView(wire).substr(0, kFrameHeaderBytes));
    Frame frame;
    EXPECT_TRUE(reader.next(frame).code() == StatusCode::Corruption);
    EXPECT_TRUE(reader.broken());
}

TEST(FrameFuzzTest, ChecksumMismatchBreaksReader)
{
    Bytes wire = frameOf(static_cast<uint8_t>(Opcode::Put), 9,
                         "payload-to-corrupt");
    wire[wire.size() - 3] ^= 0x40; // flip a payload bit
    FrameReader reader;
    reader.feed(wire);
    Frame frame;
    EXPECT_TRUE(reader.next(frame).code() == StatusCode::Corruption);
    EXPECT_TRUE(reader.broken());
}

TEST(FrameFuzzTest, TruncatedHeaderJustWaits)
{
    // A short read is not corruption — more bytes may arrive.
    Bytes wire = frameOf(1, 1, "x");
    FrameReader reader;
    reader.feed(BytesView(wire).substr(0, kFrameHeaderBytes - 1));
    Frame frame;
    EXPECT_TRUE(reader.next(frame).isNotFound());
    EXPECT_FALSE(reader.broken());
}

TEST(FrameFuzzTest, RandomGarbageNeverCrashes)
{
    // 200 streams of pure noise: every outcome must be NotFound
    // (still waiting) or sticky Corruption — never a crash, never
    // a bogus accepted frame (the checksum makes a false positive
    // astronomically unlikely).
    Rng rng(0xF00D);
    for (int round = 0; round < 200; ++round) {
        FrameReader reader(1 << 16);
        Bytes noise;
        size_t len = 1 + rng.nextBounded(512);
        for (size_t i = 0; i < len; ++i)
            noise.push_back(
                static_cast<char>(rng.nextBounded(256)));
        reader.feed(noise);
        Frame frame;
        Status s = reader.next(frame);
        EXPECT_TRUE(s.isNotFound() || s.code() == StatusCode::Corruption);
    }
}

TEST(FrameFuzzTest, BitFlippedValidFramesNeverCrash)
{
    // Take a valid frame and flip every single bit position in
    // turn. Each mutation must decode cleanly, wait for more
    // bytes, or break the reader — checksum catches payload
    // damage, header validation catches the rest.
    Bytes base = frameOf(static_cast<uint8_t>(Opcode::Scan), 3,
                         "start\x01end\x02limit");
    for (size_t byte = 0; byte < base.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            Bytes mutated = base;
            mutated[byte] ^= static_cast<char>(1 << bit);
            FrameReader reader;
            reader.feed(mutated);
            Frame frame;
            Status s = reader.next(frame);
            if (s.isOk()) {
                // Only the type and request-id bytes are outside
                // the checksum; damage there still frames
                // correctly.
                EXPECT_TRUE(byte == 3 ||
                            (byte >= 4 && byte < 8))
                    << "byte " << byte << " bit " << bit
                    << " decoded despite damage";
            }
        }
    }
}

// -- Payload codecs on hostile input -----------------------------

TEST(PayloadCodecTest, RoundTrips)
{
    Bytes buf;
    encodePut(buf, "the-key", "the-value");
    Bytes key;
    Bytes value;
    ASSERT_TRUE(decodePut(buf, key, value).isOk());
    EXPECT_EQ(key, "the-key");
    EXPECT_EQ(value, "the-value");

    buf.clear();
    encodeScan(buf, "aaa", "zzz", 77);
    Bytes start;
    Bytes end;
    uint64_t limit = 0;
    ASSERT_TRUE(decodeScan(buf, start, end, limit).isOk());
    EXPECT_EQ(start, "aaa");
    EXPECT_EQ(end, "zzz");
    EXPECT_EQ(limit, 77u);

    buf.clear();
    kv::WriteBatch batch;
    batch.put("a", "1");
    batch.del("b");
    batch.put("c", "3");
    encodeBatch(buf, batch);
    kv::WriteBatch decoded;
    ASSERT_TRUE(decodeBatch(buf, decoded).isOk());
    ASSERT_EQ(decoded.entries().size(), 3u);
    EXPECT_EQ(decoded.entries()[1].key, "b");
    EXPECT_EQ(decoded.entries()[1].op, kv::BatchOp::Delete);
}

TEST(PayloadCodecTest, TruncationsReturnInvalidArgument)
{
    // Every proper prefix of a valid payload must decode to
    // InvalidArgument — truncated varint, short key, short value —
    // without crashing or reading past the buffer.
    Bytes put;
    encodePut(put, "some-key-material", "some-value-material");
    for (size_t cut = 0; cut < put.size(); ++cut) {
        Bytes key;
        Bytes value;
        Status s =
            decodePut(BytesView(put).substr(0, cut), key, value);
        EXPECT_TRUE(s.code() == StatusCode::InvalidArgument) << "cut=" << cut;
    }

    Bytes scan;
    encodeScan(scan, "start-key", "end-key", 123456789);
    for (size_t cut = 0; cut < scan.size(); ++cut) {
        Bytes start;
        Bytes end;
        uint64_t limit = 0;
        Status s = decodeScan(BytesView(scan).substr(0, cut),
                              start, end, limit);
        EXPECT_TRUE(s.code() == StatusCode::InvalidArgument) << "cut=" << cut;
    }

    kv::WriteBatch batch;
    batch.put("key-one", "value-one");
    batch.del("key-two");
    Bytes enc;
    encodeBatch(enc, batch);
    for (size_t cut = 0; cut < enc.size(); ++cut) {
        kv::WriteBatch decoded;
        Status s =
            decodeBatch(BytesView(enc).substr(0, cut), decoded);
        EXPECT_TRUE(s.code() == StatusCode::InvalidArgument) << "cut=" << cut;
    }
}

TEST(PayloadCodecTest, TrailingGarbageRejected)
{
    Bytes buf;
    encodeGet(buf, "k");
    buf += "extra";
    Bytes key;
    EXPECT_TRUE(decodeGet(buf, key).code() == StatusCode::InvalidArgument);
}

TEST(PayloadCodecTest, LengthOverrunRejected)
{
    // A varint length that claims more bytes than the payload has.
    Bytes buf;
    buf.push_back('\x7f'); // klen = 127, but only 3 bytes follow
    buf += "abc";
    Bytes key;
    EXPECT_TRUE(decodeGet(buf, key).code() == StatusCode::InvalidArgument);
}

TEST(PayloadCodecTest, ScanResponseRoundTrip)
{
    std::vector<ScanEntry> entries;
    entries.push_back({"k1", "v1"});
    entries.push_back({"k2", Bytes(300, 'x')});
    Bytes buf;
    encodeScanResponse(buf, entries, true);
    std::vector<ScanEntry> decoded;
    bool truncated = false;
    ASSERT_TRUE(
        decodeScanResponse(buf, decoded, truncated).isOk());
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[1].value, Bytes(300, 'x'));
    EXPECT_TRUE(truncated);
}

TEST(WireStatusTest, StatusMappingIsLossless)
{
    // Engine statuses must cross the wire and come back as the
    // same code — IODegraded in particular must stay distinct from
    // IOError so clients can tell "retry elsewhere" from "broken".
    const Status statuses[] = {
        Status::ok(),
        Status::notFound(),
        Status::corruption("c"),
        Status::ioError("io"),
        Status::invalidArgument("bad"),
        Status::notSupported("no"),
        Status::ioDegraded("degraded"),
    };
    for (const Status &s : statuses) {
        WireStatus wire = wireStatusOf(s);
        Status back = statusOfWire(wire, "msg");
        EXPECT_EQ(back.code(), s.code());
    }
    EXPECT_EQ(wireStatusOf(Status::ioDegraded("d")),
              WireStatus::IODegraded);
}

} // namespace
} // namespace ethkv::server
