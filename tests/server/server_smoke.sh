#!/usr/bin/env bash
# End-to-end ethkvd smoke drills, run by ctest.
#
#   server_smoke.sh smoke <ethkvd> <bench_server_load> <scratch>
#       Start the server on an ephemeral port, push a short mixed
#       burst through it, SIGTERM, and require a clean exit. The
#       ctest entry points <ethkvd> at the ASan build, so any
#       leak/overflow in the accept/frame/op/response path fails
#       the suite.
#
#   server_smoke.sh crash <ethkvd> <bench_server_load> <scratch> \
#       [engine [extra-flags...]]
#       The acceptance drill: fill a durable sync engine (default
#       log; "lsm" exercises kill -9 while background flushes and
#       compactions are mid-flight), kill -9 the server mid-load,
#       restart on the same directory, and verify that every
#       acknowledged write survived (zero acked-synced data loss).
set -u

MODE=$1
ETHKVD=$2
LOADGEN=$3
SCRATCH=$4
ENGINE=${5:-log}
shift 4
[ $# -gt 0 ] && shift
EXTRA_FLAGS=("$@")

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH/data"
SERVER_PID=""

cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -9 "$SERVER_PID" 2>/dev/null
        wait "$SERVER_PID" 2>/dev/null
    fi
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

fail() {
    echo "server_smoke($MODE): FAILED: $1" >&2
    exit 1
}

wait_port_file() {
    for _ in $(seq 1 500); do
        [ -s "$1" ] && return 0
        sleep 0.02
    done
    fail "port file $1 never appeared"
}

case "$MODE" in
  smoke)
    "$ETHKVD" --engine hybrid --port 0 \
        --port-file "$SCRATCH/port" --workers 4 &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port"

    "$LOADGEN" --port-file "$SCRATCH/port" --connections 8 \
        --threads 2 --ops 20000 --keys 4000 --read-pct 50 \
        || fail "load burst (rc=$?)"

    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
    RC=$?
    SERVER_PID=""
    [ "$RC" -eq 0 ] || fail "server exit code $RC after SIGTERM"
    ;;

  crash)
    "$ETHKVD" --engine "$ENGINE" --dir "$SCRATCH/data" --sync \
        ${EXTRA_FLAGS[@]+"${EXTRA_FLAGS[@]}"} \
        --port 0 --port-file "$SCRATCH/port" --workers 2 &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port"

    # Fill in the background; every acked key id lands in the
    # acked file as its response arrives.
    "$LOADGEN" --port-file "$SCRATCH/port" --mode fill \
        --keys 200000 --connections 4 --threads 2 \
        --acked-file "$SCRATCH/acked" &
    LOAD_PID=$!

    # Let some writes through, then pull the plug.
    sleep 0.5
    kill -9 "$SERVER_PID"
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=""

    wait "$LOAD_PID"
    LOAD_RC=$?
    # 0 = fill finished before the kill (raise --keys); 75 = died
    # mid-load as intended. Anything else is a load-gen bug.
    [ "$LOAD_RC" -eq 0 ] || [ "$LOAD_RC" -eq 75 ] \
        || fail "fill exit code $LOAD_RC"
    [ -s "$SCRATCH/acked" ] || fail "no writes were acked"
    ACKED=$(wc -l < "$SCRATCH/acked")
    echo "server_smoke(crash): $ACKED writes acked before kill -9"

    # Restart on the same directory; recovery must surface every
    # acked (therefore synced) write.
    "$ETHKVD" --engine "$ENGINE" --dir "$SCRATCH/data" --sync \
        ${EXTRA_FLAGS[@]+"${EXTRA_FLAGS[@]}"} \
        --port 0 --port-file "$SCRATCH/port2" --workers 2 &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port2"

    "$LOADGEN" --port-file "$SCRATCH/port2" --mode verify \
        --acked-file "$SCRATCH/acked" \
        || fail "acked-synced data lost across kill -9"

    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
    SERVER_PID=""
    ;;

  *)
    fail "unknown mode $MODE"
    ;;
esac

echo "server_smoke($MODE): PASS"
exit 0
