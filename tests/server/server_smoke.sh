#!/usr/bin/env bash
# End-to-end ethkvd smoke drills, run by ctest.
#
#   server_smoke.sh smoke <ethkvd> <bench_server_load> <scratch>
#       Start the server on an ephemeral port, push a short mixed
#       burst through it, SIGTERM, and require a clean exit. The
#       ctest entry points <ethkvd> at the ASan build, so any
#       leak/overflow in the accept/frame/op/response path fails
#       the suite.
#
#   server_smoke.sh crash <ethkvd> <bench_server_load> <scratch> \
#       [engine [extra-flags...]]
#       The acceptance drill: fill a durable sync engine (default
#       log; "lsm" exercises kill -9 while background flushes and
#       compactions are mid-flight), kill -9 the server mid-load,
#       restart on the same directory, and verify that every
#       acknowledged write survived (zero acked-synced data loss).
#
#   server_smoke.sh trace <ethkvd> <bench_server_load> <scratch> \
#       <ethkv_mon> <ethkv_trace_check>
#       The observability drill: run a traced load burst against a
#       fully instrumented server, then check every output surface —
#       merged client+server Chrome trace (with matching trace ids
#       and nested server stage spans), the combined metrics JSON,
#       the live dashboard over the wire and from the snapshot
#       file, and the SIGUSR1 slow-op dump on stderr.
#
#   server_smoke.sh cachetier <ethkvd> <bench_server_load> <scratch>
#       The cache-tier drill (DESIGN.md §14): generate a static
#       correlation table, start the server with the cache tier and
#       correlation prefetcher enabled, fill a working set, drive a
#       Zipf + correlated read mix, and require the run report to
#       show a >50% cache hit rate with prefetch fills issued —
#       then a clean SIGTERM exit. The ASan ctest entry points
#       <ethkvd> at the sanitized build, so shard eviction, the
#       prefetch thread, and the invalidation paths run checked
#       under real concurrent load.
#
#   server_smoke.sh failover <ethkvd> <bench_server_load> \
#       <scratch> <ethkv_ctl>
#       The replication drill (DESIGN.md §13): a semi-sync primary
#       streams its WAL to a live follower; a steady-state fill
#       must drain the follower's lag to zero; then kill -9 the
#       primary mid-load, PROMOTE the follower, and verify that
#       every acknowledged write (both phases) is served by the
#       promoted node — zero acked-synced loss across failover —
#       and that it now accepts writes and shuts down cleanly.
set -u

MODE=$1
ETHKVD=$2
LOADGEN=$3
SCRATCH=$4
shift 4

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH/data"
SERVER_PID=""
FOLLOWER_PID=""

cleanup() {
    for PID in "$SERVER_PID" "$FOLLOWER_PID"; do
        if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
            kill -9 "$PID" 2>/dev/null
            wait "$PID" 2>/dev/null
        fi
    done
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

fail() {
    echo "server_smoke($MODE): FAILED: $1" >&2
    exit 1
}

wait_port_file() {
    for _ in $(seq 1 500); do
        [ -s "$1" ] && return 0
        sleep 0.02
    done
    fail "port file $1 never appeared"
}

case "$MODE" in
  smoke)
    "$ETHKVD" --engine hybrid --port 0 \
        --port-file "$SCRATCH/port" --workers 4 &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port"

    "$LOADGEN" --port-file "$SCRATCH/port" --connections 8 \
        --threads 2 --ops 20000 --keys 4000 --read-pct 50 \
        || fail "load burst (rc=$?)"

    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
    RC=$?
    SERVER_PID=""
    [ "$RC" -eq 0 ] || fail "server exit code $RC after SIGTERM"
    ;;

  crash)
    ENGINE=${1:-log}
    [ $# -gt 0 ] && shift
    EXTRA_FLAGS=("$@")
    "$ETHKVD" --engine "$ENGINE" --dir "$SCRATCH/data" --sync \
        ${EXTRA_FLAGS[@]+"${EXTRA_FLAGS[@]}"} \
        --port 0 --port-file "$SCRATCH/port" --workers 2 &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port"

    # Fill in the background; every acked key id lands in the
    # acked file as its response arrives.
    "$LOADGEN" --port-file "$SCRATCH/port" --mode fill \
        --keys 200000 --connections 4 --threads 2 \
        --acked-file "$SCRATCH/acked" &
    LOAD_PID=$!

    # Let some writes through, then pull the plug.
    sleep 0.5
    kill -9 "$SERVER_PID"
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=""

    wait "$LOAD_PID"
    LOAD_RC=$?
    # 0 = fill finished before the kill (raise --keys); 75 = died
    # mid-load as intended. Anything else is a load-gen bug.
    [ "$LOAD_RC" -eq 0 ] || [ "$LOAD_RC" -eq 75 ] \
        || fail "fill exit code $LOAD_RC"
    [ -s "$SCRATCH/acked" ] || fail "no writes were acked"
    ACKED=$(wc -l < "$SCRATCH/acked")
    echo "server_smoke(crash): $ACKED writes acked before kill -9"

    # Restart on the same directory; recovery must surface every
    # acked (therefore synced) write.
    "$ETHKVD" --engine "$ENGINE" --dir "$SCRATCH/data" --sync \
        ${EXTRA_FLAGS[@]+"${EXTRA_FLAGS[@]}"} \
        --port 0 --port-file "$SCRATCH/port2" --workers 2 &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port2"

    "$LOADGEN" --port-file "$SCRATCH/port2" --mode verify \
        --acked-file "$SCRATCH/acked" \
        || fail "acked-synced data lost across kill -9"

    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
    SERVER_PID=""
    ;;

  trace)
    MON=$1
    TRACE_CHECK=$2

    # Everything on: full-rate tracing + stage stats, slow-op log
    # that records every request, live metrics snapshots.
    "$ETHKVD" --engine btree --port 0 \
        --port-file "$SCRATCH/port" --workers 2 \
        --trace "$SCRATCH/server_trace.json" \
        --trace-sample-shift 0 --stage-sample-shift 0 \
        --slow-op-micros 0 \
        --metrics-interval 100 \
        --metrics-file "$SCRATCH/live.json" \
        2> "$SCRATCH/server.err" &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port"

    # Traced load: client spans + server TRACEDUMP merge into one
    # timeline, and the combined metrics doc scrapes STATS.
    "$LOADGEN" --port-file "$SCRATCH/port" --connections 4 \
        --threads 2 --ops 20000 --keys 2000 --read-pct 50 \
        --trace-out "$SCRATCH/merged_trace.json" \
        --metrics-out "$SCRATCH/combined.json" \
        || fail "traced load burst (rc=$?)"

    # Merged trace: client spans, server spans, shared trace ids,
    # stage spans nested inside request spans.
    [ -s "$SCRATCH/merged_trace.json" ] \
        || fail "merged trace not written"
    "$TRACE_CHECK" "$SCRATCH/merged_trace.json" \
        --require-server --require-client --require-match \
        || fail "merged trace validation"

    # Combined metrics doc: bench schema, client histograms, and
    # the server's per-stage latency attribution via STATS.
    [ -s "$SCRATCH/combined.json" ] \
        || fail "combined metrics doc not written"
    grep -q "ethkv.bench_server_load.v1" "$SCRATCH/combined.json" \
        || fail "combined doc schema missing"
    grep -q "op.server.exec_ns" "$SCRATCH/combined.json" \
        || fail "server stage histograms missing from combined doc"
    grep -q "p999" "$SCRATCH/combined.json" \
        || fail "percentile gauges missing from combined doc"

    # Live dashboard: one frame over the wire and one from the
    # periodic snapshot file.
    "$MON" --port-file "$SCRATCH/port" --once \
        > "$SCRATCH/mon_wire.txt" \
        || fail "ethkv_mon wire poll (rc=$?)"
    grep -q "get" "$SCRATCH/mon_wire.txt" \
        || fail "mon wire output missing per-op table"
    for _ in $(seq 1 100); do
        [ -s "$SCRATCH/live.json" ] && break
        sleep 0.05
    done
    [ -s "$SCRATCH/live.json" ] \
        || fail "live metrics file never appeared"
    "$MON" --file "$SCRATCH/live.json" --once \
        > "$SCRATCH/mon_file.txt" \
        || fail "ethkv_mon file poll (rc=$?)"

    # SIGUSR1: slow-op dump lands on stderr as one JSON document.
    kill -USR1 "$SERVER_PID"
    for _ in $(seq 1 100); do
        grep -q "ethkv.slowops.v1" "$SCRATCH/server.err" && break
        sleep 0.05
    done
    grep -q "ethkv.slowops.v1" "$SCRATCH/server.err" \
        || fail "SIGUSR1 slow-op dump missing from stderr"

    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
    RC=$?
    SERVER_PID=""
    [ "$RC" -eq 0 ] || fail "server exit code $RC after SIGTERM"

    # The server wrote its own trace file on shutdown; it must be
    # a valid Chrome trace with request spans.
    [ -s "$SCRATCH/server_trace.json" ] \
        || fail "server trace file not written"
    "$TRACE_CHECK" "$SCRATCH/server_trace.json" --require-server \
        || fail "server trace file validation"
    ;;

  cachetier)
    # Static correlation table over the key groups the correlated
    # read mode walks (--corr-follow reads from the same group).
    "$LOADGEN" --corr-table-out "$SCRATCH/corr.txt" \
        --keys 2000 --corr-follow 3 \
        || fail "correlation table generation (rc=$?)"
    [ -s "$SCRATCH/corr.txt" ] || fail "correlation table empty"

    "$ETHKVD" --engine hybrid --port 0 \
        --port-file "$SCRATCH/port" --workers 4 \
        --cache-tier-bytes 67108864 --cache-shards 8 \
        --prefetch-k 4 --corr-table "$SCRATCH/corr.txt" &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/port"

    # Fill the working set, then drive the Zipf + correlated read
    # mix the cache tier is built for.
    "$LOADGEN" --port-file "$SCRATCH/port" --mode fill \
        --keys 2000 --connections 2 --threads 1 \
        || fail "fill (rc=$?)"
    "$LOADGEN" --port-file "$SCRATCH/port" --connections 8 \
        --threads 2 --ops 30000 --zipf-accounts 2000 \
        --zipf 1.1 --read-pct 90 --corr-follow 3 \
        --metrics-out "$SCRATCH/load.json" \
        || fail "correlated load burst (rc=$?)"

    # The acceptance bar: the run report must show the cache
    # absorbing most GETs and the prefetcher actually working.
    [ -s "$SCRATCH/load.json" ] || fail "metrics doc not written"
    HIT_RATE=$(grep -o '"cachetier_hit_rate":[0-9.eE+-]*' \
        "$SCRATCH/load.json" | cut -d: -f2)
    [ -n "$HIT_RATE" ] || fail "cachetier_hit_rate missing"
    awk -v h="$HIT_RATE" 'BEGIN { exit !(h > 0.5) }' \
        || fail "cache hit rate $HIT_RATE is below the 50% bar"
    grep -q '"cachetier.prefetch.issued": *[1-9]' \
        "$SCRATCH/load.json" \
        || fail "prefetcher issued no fills"
    echo "server_smoke(cachetier): hit rate $HIT_RATE"

    kill -TERM "$SERVER_PID"
    wait "$SERVER_PID"
    RC=$?
    SERVER_PID=""
    [ "$RC" -eq 0 ] || fail "server exit code $RC after SIGTERM"
    ;;

  failover)
    CTL=$1

    # Primary: durable sync log engine, replication on, semi-sync
    # acks — an acked write is on every live follower, which is
    # exactly the guarantee the zero-loss check below leans on.
    "$ETHKVD" --engine log --dir "$SCRATCH/data" --sync \
        --repl --repl-sync \
        --port 0 --port-file "$SCRATCH/pport" --workers 2 &
    SERVER_PID=$!
    wait_port_file "$SCRATCH/pport"
    PPORT=$(cat "$SCRATCH/pport")

    mkdir -p "$SCRATCH/fdata"
    "$ETHKVD" --engine log --dir "$SCRATCH/fdata" --sync \
        --follower-of "127.0.0.1:$PPORT" \
        --port 0 --port-file "$SCRATCH/fport" --workers 2 &
    FOLLOWER_PID=$!
    wait_port_file "$SCRATCH/fport"

    ROLE=$("$CTL" role --port-file "$SCRATCH/fport") \
        || fail "role query on the follower"
    [ "$ROLE" = "follower" ] \
        || fail "expected role=follower, got '$ROLE'"

    # Phase 1: steady-state fill, then require the follower's lag
    # gauges to drain to zero while the primary is alive.
    "$LOADGEN" --port-file "$SCRATCH/pport" --mode fill \
        --keys 3000 --connections 2 --threads 1 \
        --acked-file "$SCRATCH/acked1" \
        || fail "phase-1 fill (rc=$?)"
    "$CTL" wait-caught-up --port-file "$SCRATCH/fport" \
        --timeout-ms 15000 \
        || fail "follower lag never drained to zero"

    # Phase 2: fill in the background and pull the plug on the
    # primary mid-stream.
    "$LOADGEN" --port-file "$SCRATCH/pport" --mode fill \
        --keys 200000 --connections 4 --threads 2 \
        --acked-file "$SCRATCH/acked2" &
    LOAD_PID=$!
    sleep 0.5
    kill -9 "$SERVER_PID"
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=""

    wait "$LOAD_PID"
    LOAD_RC=$?
    [ "$LOAD_RC" -eq 0 ] || [ "$LOAD_RC" -eq 75 ] \
        || fail "fill exit code $LOAD_RC"
    [ -s "$SCRATCH/acked2" ] \
        || fail "no phase-2 writes were acked"
    ACKED=$(cat "$SCRATCH/acked1" "$SCRATCH/acked2" | wc -l)
    echo "server_smoke(failover): $ACKED writes acked before" \
        "kill -9"

    # Failover: promote the follower and check the role flipped.
    "$CTL" promote --port-file "$SCRATCH/fport" \
        || fail "PROMOTE on the surviving follower"
    ROLE=$("$CTL" role --port-file "$SCRATCH/fport") \
        || fail "role query after promote"
    [ "$ROLE" = "primary" ] \
        || fail "expected role=primary after promote, got '$ROLE'"

    # Zero acked-synced loss: every write acknowledged by the dead
    # primary — in either phase — must be served by the promoted
    # node (semi-sync put it there before the ack went out).
    cat "$SCRATCH/acked1" "$SCRATCH/acked2" > "$SCRATCH/acked"
    "$LOADGEN" --port-file "$SCRATCH/fport" --mode verify \
        --acked-file "$SCRATCH/acked" \
        || fail "acked-synced data lost across failover"

    # The promoted node is a real primary: it takes new writes...
    "$LOADGEN" --port-file "$SCRATCH/fport" --mode fill \
        --keys 500 --connections 2 --threads 1 \
        --acked-file "$SCRATCH/acked3" \
        || fail "post-promote fill rejected (rc=$?)"

    # ...and SIGTERM still exits cleanly (send queues flushed).
    kill -TERM "$FOLLOWER_PID"
    wait "$FOLLOWER_PID"
    RC=$?
    FOLLOWER_PID=""
    [ "$RC" -eq 0 ] || fail "promoted node exit code $RC"
    ;;

  *)
    fail "unknown mode $MODE"
    ;;
esac

echo "server_smoke($MODE): PASS"
exit 0
