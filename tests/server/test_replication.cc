/**
 * @file
 * In-process primary/backup replication tests (DESIGN.md §13):
 * two real Servers over loopback, one ReplicationHub each, driven
 * through the client library. Covers live streaming, catch-up from
 * sealed segments, reconnect + resume after a dropped subscriber,
 * semi-sync acks (with and without a live follower), sticky
 * degraded mode on fault-injected replay errors, PROMOTE, the
 * NotPrimary role check, SUBSCRIBE handshake validation, and the
 * shutdown ordering that flushes send queues before exit.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/fault_env.hh"
#include "kvstore/btree_store.hh"
#include "kvstore/locked_store.hh"
#include "kvstore/log_store.hh"
#include "obs/metrics.hh"
#include "server/client.hh"
#include "server/net_socket.hh"
#include "server/protocol.hh"
#include "server/replication.hh"
#include "server/server.hh"
#include "../kvstore/test_util.hh"

namespace ethkv::server
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;
using testutil::ScratchDir;

/** Poll `pred` until true or ~5s elapsed. */
bool
waitFor(const std::function<bool()> &pred, int timeout_ms = 5000)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(5));
    }
    return pred();
}

/** Tuning for one node of a two-node cluster. */
struct NodeConfig
{
    std::string dir;
    std::string primary_host; //!< Non-empty = follower.
    uint16_t primary_port = 0;
    bool sync_acks = false;
    int ack_timeout_ms = 5000;
    uint64_t segment_bytes = 4u << 20;
    Env *env = nullptr; //!< Engine AND repl log env.
    int conn_idle_timeout_ms = 0;
};

NodeConfig
makeConfig(const std::string &dir)
{
    NodeConfig config;
    config.dir = dir;
    return config;
}

/**
 * One replicated node: engine (+ optional fault env), hub, server.
 * Each node gets a private MetricsRegistry so two nodes in one
 * process don't share gauges.
 */
class ReplNode
{
  public:
    explicit ReplNode(const NodeConfig &config)
    {
        kv::LogStoreOptions engine_options;
        engine_options.dir = config.dir + "/engine";
        engine_options.env = config.env;
        auto engine = kv::AppendLogStore::open(engine_options);
        engine.status().expectOk("engine open");
        engine_ = engine.take();
        locked_ =
            std::make_unique<kv::LockedKVStore>(*engine_);

        ReplicationOptions ropts;
        ropts.dir = config.dir + "/repl";
        ropts.segment_bytes = config.segment_bytes;
        ropts.sync_acks = config.sync_acks;
        ropts.ack_timeout_ms = config.ack_timeout_ms;
        ropts.primary_host = config.primary_host;
        ropts.primary_port = config.primary_port;
        ropts.backoff_min_ms = 10;
        ropts.backoff_max_ms = 100;
        ropts.seed = 42;
        ropts.env = config.env;
        ropts.metrics = &metrics_;
        auto hub = ReplicationHub::open(ropts);
        hub.status().expectOk("hub open");
        hub_ = hub.take();

        ServerOptions options;
        options.port = 0;
        options.workers = 2;
        options.metrics = &metrics_;
        options.slow_op_micros = -1;
        options.repl = hub_.get();
        options.conn_idle_timeout_ms =
            config.conn_idle_timeout_ms;
        server_ = std::make_unique<Server>(
            hub_->wrap(*locked_), options);
        server_->start().expectOk("server start");
        hub_->start().expectOk("hub start");
    }

    ~ReplNode() { stop(); }

    void
    stop()
    {
        if (server_)
            server_->stop(); // flushAndStop()s the hub inside
    }

    uint16_t port() const { return server_->port(); }
    ReplicationHub &hub() { return *hub_; }
    kv::KVStore &engine() { return *locked_; }
    obs::MetricsRegistry &metrics() { return metrics_; }

    uint64_t
    gauge(const std::string &name)
    {
        return static_cast<uint64_t>(
            metrics_.gauge(name).value());
    }

    std::unique_ptr<Client>
    connect()
    {
        auto client = Client::open("127.0.0.1", port());
        EXPECT_TRUE(client.ok()) << client.status().message();
        return client.take();
    }

    /** True once `key` -> `value` is visible in the engine. */
    bool
    has(const Bytes &key, const Bytes &value)
    {
        Bytes got;
        return engine().get(key, got).isOk() && got == value;
    }

  private:
    obs::MetricsRegistry metrics_;
    std::unique_ptr<kv::KVStore> engine_;
    std::unique_ptr<kv::LockedKVStore> locked_;
    std::unique_ptr<ReplicationHub> hub_;
    std::unique_ptr<Server> server_;
};

TEST(Replication, StreamsLiveWritesToFollower)
{
    ScratchDir dir("repl_live");
    ReplNode primary(makeConfig(dir.path() + "/p"));
    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary.port();
    ReplNode follower(fc);

    auto client = primary.connect();
    ASSERT_TRUE(client);
    for (uint64_t i = 0; i < 50; ++i)
        ASSERT_TRUE(
            client->put(makeKey(i), makeValue(i)).isOk());
    kv::WriteBatch batch;
    batch.put("batched", "value");
    batch.del(makeKey(0));
    ASSERT_TRUE(client->apply(batch).isOk());

    EXPECT_TRUE(waitFor([&] {
        return follower.has("batched", "value") &&
               !follower.engine().contains(makeKey(0));
    })) << "follower never replayed the stream";
    for (uint64_t i = 1; i < 50; ++i)
        EXPECT_TRUE(follower.has(makeKey(i), makeValue(i)));

    // Follower-side gauges drain to zero once caught up.
    EXPECT_TRUE(waitFor([&] {
        return follower.gauge("repl.lag_bytes") == 0 &&
               follower.gauge("repl.follower_connected") == 1;
    }));
    EXPECT_EQ(primary.hub().subscriberCount(), 1u);

    // Reads are served by the follower; mutations are not.
    auto fclient = follower.connect();
    ASSERT_TRUE(fclient);
    Bytes value;
    ASSERT_TRUE(fclient->get("batched", value).isOk());
    EXPECT_EQ(value, "value");
    Status s = fclient->put("nope", "x");
    EXPECT_TRUE(s.code() == StatusCode::NotSupported)
        << s.toString();
    EXPECT_NE(s.message().find("not primary"), std::string::npos)
        << s.toString();
    EXPECT_TRUE(fclient->del("batched").code() ==
                StatusCode::NotSupported);
}

TEST(Replication, FollowerCatchesUpFromSealedSegments)
{
    ScratchDir dir("repl_catchup");
    // Tiny segments: the backlog the follower fetches spans many
    // sealed segments, not just the active tail.
    NodeConfig pc = makeConfig(dir.path() + "/p");
    pc.segment_bytes = 1024;
    ReplNode primary(pc);

    auto client = primary.connect();
    ASSERT_TRUE(client);
    for (uint64_t i = 0; i < 200; ++i)
        ASSERT_TRUE(
            client->put(makeKey(i), makeValue(i, 48)).isOk());

    // Follower starts AFTER the writes: pure catch-up from disk.
    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary.port();
    ReplNode follower(fc);

    EXPECT_TRUE(waitFor([&] {
        return follower.has(makeKey(199), makeValue(199, 48));
    })) << "follower never caught up";
    for (uint64_t i = 0; i < 200; ++i)
        EXPECT_TRUE(follower.has(makeKey(i), makeValue(i, 48)));
    EXPECT_TRUE(waitFor(
        [&] { return follower.gauge("repl.lag_bytes") == 0; }));
}

TEST(Replication, FollowerReconnectsAndResumes)
{
    ScratchDir dir("repl_reconnect");
    ReplNode primary(makeConfig(dir.path() + "/p"));
    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary.port();
    ReplNode follower(fc);

    auto client = primary.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("before", "drop").isOk());
    ASSERT_TRUE(
        waitFor([&] { return follower.has("before", "drop"); }));

    // Tear down every subscriber socket; the follower must
    // reconnect with a resume offset and miss nothing.
    primary.hub().dropSubscribersForTest();
    ASSERT_TRUE(client->put("after", "reconnect").isOk());

    EXPECT_TRUE(waitFor([&] {
        return follower.has("after", "reconnect");
    })) << "follower did not resume after the drop";
    EXPECT_TRUE(waitFor([&] {
        return follower.metrics()
                   .counter("repl.reconnects")
                   .value() >= 1;
    }));
    EXPECT_TRUE(waitFor(
        [&] { return primary.hub().subscriberCount() == 1; }));
}

TEST(Replication, SemiSyncAcksWaitForFollower)
{
    ScratchDir dir("repl_semisync");
    NodeConfig pc = makeConfig(dir.path() + "/p");
    pc.sync_acks = true;
    ReplNode primary(pc);

    // With no follower attached, semi-sync degenerates to async:
    // acks must not hang.
    auto client = primary.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("solo", "ok").isOk());

    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary.port();
    ReplNode follower(fc);
    ASSERT_TRUE(
        waitFor([&] { return follower.has("solo", "ok"); }));

    // With a live follower, an acked write is already ON the
    // follower when the ack returns — that is the semi-sync
    // contract the drill's zero-loss check leans on.
    for (uint64_t i = 0; i < 30; ++i) {
        ASSERT_TRUE(
            client->put(makeKey(i, "ss"), makeValue(i)).isOk());
        EXPECT_TRUE(follower.has(makeKey(i, "ss"), makeValue(i)))
            << "acked write " << i << " not on the follower";
    }
    EXPECT_GE(primary.metrics()
                  .counter("server.repl.acks_deferred")
                  .value(),
              30u);
}

TEST(Replication, SemiSyncFailsOpenOnAckTimeout)
{
    ScratchDir dir("repl_failopen");
    NodeConfig pc = makeConfig(dir.path() + "/p");
    pc.sync_acks = true;
    pc.ack_timeout_ms = 200;
    ReplNode primary(pc);

    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary.port();
    ReplNode follower(fc);

    auto client = primary.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("warm", "up").isOk());
    ASSERT_TRUE(
        waitFor([&] { return follower.has("warm", "up"); }));

    // Stop the follower entirely: its socket goes away, but a
    // half-dead follower is modeled below by the timeout window —
    // the write must complete within the fail-open deadline
    // rather than hang for the full client timeout.
    follower.stop();
    auto start = std::chrono::steady_clock::now();
    ASSERT_TRUE(client->put("laggard", "dropped").isOk());
    auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed, 5000) << "ack did not fail open";
}

TEST(Replication, ReplayIOErrorLatchesDegraded)
{
    ScratchDir dir("repl_degraded");
    ReplNode primary(makeConfig(dir.path() + "/p"));

    FaultInjectionEnv fault(Env::defaultEnv(), /*seed=*/3);
    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary.port();
    fc.env = &fault;
    ReplNode follower(fc);

    auto client = primary.connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("healthy", "yes").isOk());
    ASSERT_TRUE(
        waitFor([&] { return follower.has("healthy", "yes"); }));

    // Kill the follower's disk: the next replayed batch fails
    // with IOError and degraded mode latches.
    fault.setWriteError(true);
    ASSERT_TRUE(client->put("poison", "pill").isOk());
    EXPECT_TRUE(waitFor([&] {
        return follower.hub().isDegraded();
    })) << "replay IOError did not latch degraded mode";
    EXPECT_TRUE(waitFor([&] {
        return follower.gauge("repl.follower_degraded") == 1;
    }));
    EXPECT_GE(
        follower.metrics().counter("repl.replay_errors").value(),
        1u);

    // Sticky: healing the disk does not clear it, and PROMOTE
    // refuses — the node may hold a torn prefix.
    fault.setWriteError(false);
    auto fclient = follower.connect();
    ASSERT_TRUE(fclient);
    uint64_t end = 0;
    Status s = fclient->promote(end);
    EXPECT_TRUE(s.isIODegraded()) << s.toString();

    // Reads still work (stale is better than down)...
    Bytes value;
    ASSERT_TRUE(fclient->get("healthy", value).isOk());
    // ...and the poisoned write never half-applied.
    EXPECT_FALSE(follower.has("poison", "pill"));
}

TEST(Replication, PromoteFlipsRoleAndAcceptsWrites)
{
    ScratchDir dir("repl_promote");
    auto primary =
        std::make_unique<ReplNode>(makeConfig(dir.path() + "/p"));
    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary->port();
    ReplNode follower(fc);

    auto client = primary->connect();
    ASSERT_TRUE(client);
    for (uint64_t i = 0; i < 25; ++i)
        ASSERT_TRUE(
            client->put(makeKey(i), makeValue(i)).isOk());
    ASSERT_TRUE(waitFor([&] {
        return follower.has(makeKey(24), makeValue(24));
    }));
    ASSERT_TRUE(waitFor(
        [&] { return follower.gauge("repl.lag_bytes") == 0; }));
    uint64_t primary_end = primary->hub().endOffset();

    // Primary dies hard; promote the follower.
    client.reset();
    primary.reset();
    auto fclient = follower.connect();
    ASSERT_TRUE(fclient);
    uint64_t end = 0;
    ASSERT_TRUE(fclient->promote(end).isOk());
    EXPECT_EQ(end, primary_end)
        << "promoted log end != old primary's (lost records)";
    EXPECT_TRUE(follower.hub().isPrimary());
    EXPECT_EQ(follower.gauge("repl.follower_connected"), 0u);
    EXPECT_GE(
        follower.metrics().counter("repl.promotions").value(),
        1u);

    // Promote is idempotent, and the new primary takes writes.
    ASSERT_TRUE(fclient->promote(end).isOk());
    ASSERT_TRUE(fclient->put("post", "failover").isOk());
    Bytes value;
    ASSERT_TRUE(fclient->get("post", value).isOk());
    EXPECT_EQ(value, "failover");
    for (uint64_t i = 0; i < 25; ++i)
        EXPECT_TRUE(follower.has(makeKey(i), makeValue(i)));
}

TEST(Replication, SubscribeHandshakeValidation)
{
    ScratchDir dir("repl_handshake");
    ReplNode primary(makeConfig(dir.path() + "/p"));
    auto client = primary.connect();
    ASSERT_TRUE(client);
    for (uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(
            client->put(makeKey(i), makeValue(i)).isOk());
    uint64_t end = primary.hub().endOffset();

    // Raw SUBSCRIBE with a resume offset past the log end: the
    // history diverged, and the server must say so instead of
    // streaming garbage.
    auto probe = [&](uint64_t resume) -> uint8_t {
        auto fd = net::connectTcp("127.0.0.1", primary.port());
        EXPECT_TRUE(fd.ok());
        Bytes payload;
        encodeSubscribe(payload, resume);
        Bytes frame;
        appendFrame(frame, static_cast<uint8_t>(Opcode::Subscribe),
                    1, payload);
        EXPECT_TRUE(net::writeAll(fd.value(), frame).isOk());
        FrameReader reader;
        Frame reply;
        for (;;) {
            if (reader.next(reply).isOk())
                break;
            Bytes buf;
            size_t n = 0;
            Status err;
            auto r = net::readSome(fd.value(), buf, 4096, n, err);
            if (r == net::IoResult::Eof ||
                r == net::IoResult::Error) {
                reply.type = 0xff;
                break;
            }
            if (n > 0)
                reader.feed(buf);
        }
        net::closeFd(fd.value());
        return reply.type;
    };

    EXPECT_EQ(probe(end + 100),
              static_cast<uint8_t>(WireStatus::InvalidArgument));
    EXPECT_EQ(probe(3), // mid-record
              static_cast<uint8_t>(WireStatus::InvalidArgument));

    // A follower that sends SUBSCRIBE at a non-replicated server
    // gets NotSupported, not a hang.
    kv::BTreeStore plain_store;
    kv::LockedKVStore plain_locked(plain_store);
    ServerOptions plain_options;
    plain_options.port = 0;
    plain_options.workers = 1;
    obs::MetricsRegistry plain_metrics;
    plain_options.metrics = &plain_metrics;
    plain_options.slow_op_micros = -1;
    Server plain(plain_locked, plain_options);
    ASSERT_TRUE(plain.start().isOk());
    auto fd = net::connectTcp("127.0.0.1", plain.port());
    ASSERT_TRUE(fd.ok());
    Bytes payload;
    encodeSubscribe(payload, 0);
    Bytes frame;
    appendFrame(frame, static_cast<uint8_t>(Opcode::Subscribe), 1,
                payload);
    ASSERT_TRUE(net::writeAll(fd.value(), frame).isOk());
    FrameReader reader;
    Frame reply;
    for (;;) {
        if (reader.next(reply).isOk())
            break;
        Bytes buf;
        size_t n = 0;
        Status err;
        auto r = net::readSome(fd.value(), buf, 4096, n, err);
        ASSERT_TRUE(r != net::IoResult::Eof &&
                    r != net::IoResult::Error);
        if (n > 0)
            reader.feed(buf);
    }
    EXPECT_EQ(reply.type,
              static_cast<uint8_t>(WireStatus::NotSupported));
    net::closeFd(fd.value());
    plain.stop();
}

TEST(Replication, ShutdownFlushesSendQueues)
{
    ScratchDir dir("repl_shutdown");
    auto primary =
        std::make_unique<ReplNode>(makeConfig(dir.path() + "/p"));
    NodeConfig fc = makeConfig(dir.path() + "/f");
    fc.primary_host = "127.0.0.1";
    fc.primary_port = primary->port();
    ReplNode follower(fc);

    auto client = primary->connect();
    ASSERT_TRUE(client);
    ASSERT_TRUE(client->put("warm", "up").isOk());
    ASSERT_TRUE(
        waitFor([&] { return follower.has("warm", "up"); }));

    // Burst of writes, then IMMEDIATE graceful stop: the SIGTERM
    // contract (server.stop() -> hub.flushAndStop()) must push
    // every acknowledged record out the subscriber sockets before
    // the process exits, so a planned failover loses nothing.
    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(
            client->put(makeKey(i, "sd"), makeValue(i)).isOk());
    client.reset();
    primary->stop();

    EXPECT_TRUE(waitFor([&] {
        return follower.has(makeKey(499, "sd"), makeValue(499));
    })) << "graceful shutdown dropped queued replication bytes";
    for (uint64_t i = 0; i < 500; ++i)
        EXPECT_TRUE(follower.has(makeKey(i, "sd"), makeValue(i)));

    // And the follower survives the primary's death: still
    // serving reads, counting reconnect attempts.
    auto fclient = follower.connect();
    ASSERT_TRUE(fclient);
    Bytes value;
    EXPECT_TRUE(fclient->get("warm", value).isOk());
}

} // namespace
} // namespace ethkv::server
