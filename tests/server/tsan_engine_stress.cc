/**
 * @file
 * ThreadSanitizer stress for the engine stacks ethkvd serves
 * concurrently, always built with -fsanitize=thread (see
 * tests/CMakeLists.txt). Eight threads — the shape of an 8-worker
 * server — hammer one shared store through the same wrappers
 * ethkvd uses:
 *
 *  - HybridKVStore bare (per-route shard locks),
 *  - CachingKVStore over HybridKVStore (--engine cached),
 *  - LockedKVStore over BTreeStore (every single-threaded engine).
 *
 * Readers run stats()/liveKeyCount()/cacheStats() concurrently
 * with writers, since those are what the server's STATS op calls
 * from any worker. A data race in the hybrid shard locking, the
 * cache mutex, or the big-lock decorator fails `ctest` on every
 * build.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "client/class_cache.hh"
#include "core/hybrid_store.hh"
#include "kvstore/btree_store.hh"
#include "kvstore/locked_store.hh"

using namespace ethkv;

namespace
{

std::atomic<int> failures{0};

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "tsan_engine_stress: FAILED: %s\n",
                      what);
        ++failures;
    }
}

constexpr int num_threads = 8;
constexpr int ops_per_thread = 3000;

/**
 * A key classify() maps to a real class, covering all four hybrid
 * routes. Sizes must match the schema (33/41/65 bytes).
 */
Bytes
routedKey(int thread, int i)
{
    struct Shape
    {
        char prefix;
        size_t size;
    };
    // 'a' -> Ordered, 'b' -> Log, 'A'/'c' -> LazyLog,
    // 'H'/'L' -> Hash.
    static const Shape shapes[] = {
        {'a', 33}, {'b', 41}, {'A', 33},
        {'c', 33}, {'H', 33}, {'L', 33},
    };
    const Shape &shape = shapes[i % 6];
    Bytes key(1, shape.prefix);
    key += "t" + std::to_string(thread) + "-" +
           std::to_string(i % 131) + "-";
    key.resize(shape.size, 'x');
    return key;
}

/** The server-worker body: mixed ops against one shared store. */
void
workerBody(kv::KVStore &store, int thread)
{
    Bytes value;
    for (int i = 0; i < ops_per_thread; ++i) {
        Bytes key = routedKey(thread, i);
        switch (i % 5) {
          case 0:
          case 1:
            check(store.put(key, "v" + std::to_string(i)).isOk(),
                  "put");
            break;
          case 2: {
            Status s = store.get(key, value);
            check(s.isOk() || s.isNotFound(), "get");
            break;
          }
          case 3: {
            kv::WriteBatch batch;
            batch.put(key, "batched");
            batch.del(routedKey(thread, i + 7));
            check(store.apply(batch).isOk(), "apply");
            break;
          }
          default: {
            // Ordered route only ('a' snapshot keys scan).
            Bytes start(1, 'a');
            start.resize(33, '\0');
            Bytes end(1, 'a');
            end.resize(33, '\xff');
            uint64_t seen = 0;
            Status s = store.scan(
                start, end, [&seen](BytesView, BytesView) {
                    return ++seen < 32;
                });
            check(s.isOk() ||
                      s.code() == StatusCode::NotSupported,
                  "scan");
            break;
          }
        }
    }
}

/** The STATS-op body: concurrent whole-store readers. */
void
statsBody(kv::KVStore &store)
{
    for (int i = 0; i < 400; ++i) {
        kv::IOStats snapshot = store.stats();
        check(snapshot.user_writes <=
                  static_cast<uint64_t>(num_threads) *
                      ops_per_thread * 2,
              "stats snapshot sane");
        store.liveKeyCount();
    }
}

void
stressStore(kv::KVStore &store, const char *label)
{
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t)
        threads.emplace_back(
            [&store, t] { workerBody(store, t); });
    threads.emplace_back([&store] { statsBody(store); });
    for (std::thread &t : threads)
        t.join();
    check(store.flush().isOk(), label);
    std::fprintf(stderr, "tsan_engine_stress: %s done (%llu live)\n",
                 label,
                 static_cast<unsigned long long>(
                     store.liveKeyCount()));
}

} // namespace

int
main()
{
    {
        core::HybridKVStore hybrid;
        stressStore(hybrid, "hybrid");
    }
    {
        // --engine cached: the cache's own mutex over the hybrid's
        // shard locks; scan passes through to the (locked) hybrid.
        core::HybridKVStore hybrid;
        client::CachingKVStore cached(hybrid,
                                      client::CacheConfig{});
        std::thread cache_reader([&cached] {
            for (int i = 0; i < 400; ++i) {
                cached.cacheStats();
                cached.writeBackBytes();
                cached.cachedBytes();
            }
        });
        stressStore(cached, "cached(hybrid)");
        cache_reader.join();
    }
    {
        kv::BTreeStore btree;
        kv::LockedKVStore locked(btree);
        stressStore(locked, "locked(btree)");
    }

    if (failures) {
        std::fprintf(stderr, "tsan_engine_stress: %d failures\n",
                      failures.load());
        return 1;
    }
    std::fprintf(stderr, "tsan_engine_stress: PASS\n");
    return 0;
}
