/**
 * @file
 * Core-module tests: lazy-index store semantics (promotion, GC,
 * shadowing), hybrid routing, the correlation miner, and the
 * cache-policy simulator.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rand.hh"
#include "core/corr_cache.hh"
#include "core/hybrid_store.hh"
#include "../kvstore/test_util.hh"

namespace ethkv::core
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;

TEST(LazyIndexTest, PutGetDelete)
{
    LazyIndexStore store;
    EXPECT_TRUE(store.put("k", "v").isOk());
    Bytes value;
    ASSERT_TRUE(store.get("k", value).isOk());
    EXPECT_EQ(value, "v");
    EXPECT_TRUE(store.del("k").isOk());
    EXPECT_TRUE(store.get("k", value).isNotFound());
}

TEST(LazyIndexTest, IndexOnlyGrowsOnRead)
{
    LazyIndexStore store;
    for (uint64_t i = 0; i < 1000; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());
    // Finding 3's design: writes never build per-key index state.
    EXPECT_EQ(store.promotedKeyCount(), 0u);

    Bytes value;
    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(store.get(makeKey(i), value).isOk());
    EXPECT_EQ(store.promotedKeyCount(), 10u);

    // Promoted reads are index hits (no further chunk scans).
    uint64_t scan_bytes = store.chunkScanBytes();
    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(store.get(makeKey(i), value).isOk());
    EXPECT_EQ(store.chunkScanBytes(), scan_bytes);
}

TEST(LazyIndexTest, OverwriteReturnsNewest)
{
    LazyIndexStore store;
    ASSERT_TRUE(store.put("k", "old").isOk());
    ASSERT_TRUE(store.put("k", "new").isOk());
    Bytes value;
    ASSERT_TRUE(store.get("k", value).isOk());
    EXPECT_EQ(value, "new");

    // Promoted key overwritten again: index follows.
    ASSERT_TRUE(store.put("k", "newest").isOk());
    ASSERT_TRUE(store.get("k", value).isOk());
    EXPECT_EQ(value, "newest");
}

TEST(LazyIndexTest, TombstoneShadowsOldVersions)
{
    LazyIndexOptions options;
    options.chunk_bytes = 512; // many chunks
    LazyIndexStore store(options);
    for (uint64_t i = 0; i < 50; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());
    ASSERT_TRUE(store.del(makeKey(7)).isOk());
    // More writes push the tombstone into older chunks.
    for (uint64_t i = 50; i < 100; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());
    Bytes value;
    EXPECT_TRUE(store.get(makeKey(7), value).isNotFound());
    // Re-insert resurrects.
    ASSERT_TRUE(store.put(makeKey(7), "back").isOk());
    ASSERT_TRUE(store.get(makeKey(7), value).isOk());
    EXPECT_EQ(value, "back");
}

TEST(LazyIndexTest, GcReclaimsDeletedSpace)
{
    LazyIndexOptions options;
    options.chunk_bytes = 2048;
    options.gc_dead_ratio = 0.4;
    LazyIndexStore store(options);

    // Promote everything so deletes account dead bytes exactly.
    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i, 48)).isOk());
    Bytes value;
    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(store.get(makeKey(i), value).isOk());
    uint64_t before = store.residentBytes();

    for (uint64_t i = 0; i < 500; ++i)
        if (i % 4 != 0)
            ASSERT_TRUE(store.del(makeKey(i)).isOk());

    EXPECT_GT(store.stats().gc_runs, 0u);
    EXPECT_LT(store.residentBytes(), before);
    // Survivors intact.
    for (uint64_t i = 0; i < 500; i += 4) {
        ASSERT_TRUE(store.get(makeKey(i), value).isOk()) << i;
        EXPECT_EQ(value, makeValue(i, 48));
    }
    EXPECT_EQ(store.liveKeyCount(), 125u);
}

TEST(LazyIndexTest, MatchesReferenceUnderRandomOps)
{
    Rng rng(77);
    LazyIndexOptions options;
    options.chunk_bytes = 4096;
    LazyIndexStore store(options);
    std::map<Bytes, Bytes> ref;

    for (int step = 0; step < 6000; ++step) {
        Bytes key = makeKey(rng.nextBounded(400));
        int op = static_cast<int>(rng.nextBounded(10));
        if (op < 5) {
            Bytes value = makeValue(rng.next(), 16);
            ASSERT_TRUE(store.put(key, value).isOk());
            ref[key] = value;
        } else if (op < 7) {
            ASSERT_TRUE(store.del(key).isOk());
            ref.erase(key);
        } else {
            Bytes value;
            Status s = store.get(key, value);
            auto it = ref.find(key);
            if (it == ref.end()) {
                ASSERT_TRUE(s.isNotFound()) << "step " << step;
            } else {
                ASSERT_TRUE(s.isOk()) << "step " << step;
                ASSERT_EQ(value, it->second);
            }
        }
    }
    EXPECT_EQ(store.liveKeyCount(), ref.size());
}

TEST(LazyIndexTest, ScanUnsupported)
{
    LazyIndexStore store;
    Status s = store.scan(BytesView(), BytesView(),
                          [](BytesView, BytesView) {
                              return true;
                          });
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
}

TEST(HybridRouteTest, RoutingPolicy)
{
    using client::KVClass;
    EXPECT_EQ(routeOf(KVClass::BlockHeader), Route::Ordered);
    EXPECT_EQ(routeOf(KVClass::SnapshotAccount), Route::Ordered);
    EXPECT_EQ(routeOf(KVClass::SnapshotStorage), Route::Ordered);
    EXPECT_EQ(routeOf(KVClass::TxLookup), Route::Log);
    EXPECT_EQ(routeOf(KVClass::BlockBody), Route::Log);
    EXPECT_EQ(routeOf(KVClass::BlockReceipts), Route::Log);
    EXPECT_EQ(routeOf(KVClass::TrieNodeAccount), Route::LazyLog);
    EXPECT_EQ(routeOf(KVClass::TrieNodeStorage), Route::LazyLog);
    EXPECT_EQ(routeOf(KVClass::Code), Route::LazyLog);
    EXPECT_EQ(routeOf(KVClass::LastBlock), Route::Hash);
    EXPECT_EQ(routeOf(KVClass::StateID), Route::Hash);
}

TEST(HybridStoreTest, RoutesAndRetrieves)
{
    HybridKVStore store;
    Bytes header_key = client::headerKey(5, eth::hashOf("b"));
    Bytes lookup_key = client::txLookupKey(eth::hashOf("t"));
    Bytes trie_key = client::trieNodeAccountKey(Bytes{1, 2});
    Bytes state_key = Bytes(client::lastBlockKey());

    ASSERT_TRUE(store.put(header_key, "header").isOk());
    ASSERT_TRUE(store.put(lookup_key, "lookup").isOk());
    ASSERT_TRUE(store.put(trie_key, "node").isOk());
    ASSERT_TRUE(store.put(state_key, "head").isOk());

    // Each engine received exactly its class.
    EXPECT_EQ(store.ordered().liveKeyCount(), 1u);
    EXPECT_EQ(store.log().liveKeyCount(), 1u);
    EXPECT_EQ(store.lazyLog().liveKeyCount(), 1u);
    EXPECT_EQ(store.hash().liveKeyCount(), 1u);
    EXPECT_EQ(store.liveKeyCount(), 4u);

    Bytes value;
    ASSERT_TRUE(store.get(header_key, value).isOk());
    EXPECT_EQ(value, "header");
    ASSERT_TRUE(store.get(lookup_key, value).isOk());
    EXPECT_EQ(value, "lookup");
    ASSERT_TRUE(store.get(trie_key, value).isOk());
    EXPECT_EQ(value, "node");

    ASSERT_TRUE(store.del(lookup_key).isOk());
    EXPECT_TRUE(store.get(lookup_key, value).isNotFound());
    EXPECT_EQ(store.log().stats().tombstones_written, 0u);
}

TEST(HybridStoreTest, ScansWorkOnlyForScanClasses)
{
    HybridKVStore store;
    for (uint64_t n = 1; n <= 10; ++n) {
        ASSERT_TRUE(
            store.put(client::headerKey(n,
                                        eth::hashOf(encodeBE64(n))),
                      "h").isOk());
    }
    int visited = 0;
    ASSERT_TRUE(store
                    .scan(client::headerKey(3, eth::Hash256()),
                          client::headerKey(7, eth::Hash256()),
                          [&](BytesView, BytesView) {
                              ++visited;
                              return true;
                          })
                    .isOk());
    EXPECT_EQ(visited, 4);

    Status s = store.scan(
        client::txLookupKey(eth::hashOf("t")), BytesView(),
        [](BytesView, BytesView) { return true; });
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
}

TEST(CorrelationMinerTest, LearnsAdjacentFollowers)
{
    CorrelationMiner miner(/*window=*/2);
    // Pattern: 1 is always followed by 2.
    for (int i = 0; i < 20; ++i) {
        miner.observe(1);
        miner.observe(2);
        miner.observe(100 + i); // noise
    }
    auto followers = miner.followers(1);
    ASSERT_FALSE(followers.empty());
    EXPECT_EQ(followers[0], 2u);
    // Noise keys never repeat: below min support.
    EXPECT_TRUE(miner.followers(100).empty());
}

TEST(CorrelationMinerTest, BoundedCandidates)
{
    CorrelationMiner miner(1, 2);
    for (uint64_t i = 0; i < 1000; ++i) {
        miner.observe(5);
        miner.observe(i % 100); // many distinct followers
    }
    EXPECT_LE(miner.followers(5, 1).size(), 2u);
}

TEST(CachePolicyTest, LruBasics)
{
    std::unordered_map<uint64_t, uint32_t> sizes;
    for (uint64_t i = 0; i < 10; ++i)
        sizes[i] = 100;
    CachePolicySimulator cache(350, nullptr, sizes);

    cache.access(1);
    cache.access(2);
    cache.access(3); // fits exactly 3 entries
    cache.access(1); // hit
    cache.access(4); // evicts LRU (2)
    cache.access(2); // miss again

    const CachePolicyStats &stats = cache.stats();
    EXPECT_EQ(stats.accesses, 6u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.demand_fetches, 5u);
    EXPECT_GT(stats.evictions, 0u);
}

TEST(CachePolicyTest, PrefetchingBeatsLruOnCorrelatedStream)
{
    // Stream: pairs (k, k+1000) always accessed together, with
    // enough distinct pairs to overflow the cache between
    // repetitions (pure LRU keeps missing; prefetch pairs win).
    std::vector<uint64_t> stream;
    Rng rng(5);
    for (int round = 0; round < 400; ++round) {
        uint64_t k = rng.nextBounded(300);
        stream.push_back(k);
        stream.push_back(k + 1000);
    }
    std::unordered_map<uint64_t, uint32_t> sizes;
    for (uint64_t k = 0; k < 300; ++k) {
        sizes[k] = 100;
        sizes[k + 1000] = 100;
    }

    CorrelationMiner miner(4);
    size_t half = stream.size() / 2;
    for (size_t i = 0; i < half; ++i)
        miner.observe(stream[i]);

    CachePolicySimulator lru(8000, nullptr, sizes);
    CachePolicySimulator corr(8000, &miner, sizes);
    for (size_t i = half; i < stream.size(); ++i) {
        lru.access(stream[i]);
        corr.access(stream[i]);
    }
    EXPECT_GT(corr.stats().hitRate(), lru.stats().hitRate());
    EXPECT_GT(corr.stats().prefetch_hits, 0u);
}

TEST(CachePolicyTest, CompareHelperSplitsTrace)
{
    trace::TraceBuffer trace;
    Rng rng(9);
    for (int i = 0; i < 2000; ++i) {
        trace::TraceRecord r{};
        r.op = trace::OpType::Read;
        r.key_id = rng.nextBounded(50);
        r.key_size = 33;
        r.value_size = 50;
        trace.append(r);
        // Writes must be ignored by the comparison.
        r.op = trace::OpType::Write;
        trace.append(r);
    }
    CacheComparison cmp =
        compareCachePolicies(trace, 4096, 0.5, 4);
    EXPECT_EQ(cmp.train_reads, 1000u);
    EXPECT_EQ(cmp.eval_reads, 1000u);
    EXPECT_EQ(cmp.lru.accesses, 1000u);
    EXPECT_EQ(cmp.correlated.accesses, 1000u);
}

} // namespace
} // namespace ethkv::core
