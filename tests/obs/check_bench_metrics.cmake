# Runs a bench binary with --metrics-out and validates the dump
# with CMake's real JSON parser: the file must parse, carry the
# ethkv.metrics.v1 schema tag, and contain at least one histogram
# with a nonzero count.
#
# Invoked by ctest (see tests/CMakeLists.txt) as:
#   cmake -DBENCH=<bench binary> -DARGS=<extra args> -DOUT=<json>
#         -P check_bench_metrics.cmake

separate_arguments(bench_args UNIX_COMMAND "${ARGS}")
execute_process(
    COMMAND ${BENCH} ${bench_args} --metrics-out=${OUT}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench exited with ${rc}")
endif()

file(READ ${OUT} doc)

string(JSON schema ERROR_VARIABLE err GET "${doc}" schema)
if(NOT err STREQUAL "NOTFOUND" OR NOT schema STREQUAL
   "ethkv.metrics.v1")
    message(FATAL_ERROR
            "bad or missing schema tag: '${schema}' (${err})")
endif()

string(JSON nhist ERROR_VARIABLE err LENGTH "${doc}" histograms)
if(NOT err STREQUAL "NOTFOUND" OR nhist EQUAL 0)
    message(FATAL_ERROR "no histograms in dump (${err})")
endif()

# Every histogram object must expose a parseable count; at least
# one must be nonzero.
set(nonzero 0)
math(EXPR last "${nhist} - 1")
foreach(i RANGE ${last})
    string(JSON name MEMBER "${doc}" histograms ${i})
    string(JSON count GET "${doc}" histograms "${name}" count)
    if(count GREATER 0)
        math(EXPR nonzero "${nonzero} + 1")
    endif()
endforeach()
if(nonzero EQUAL 0)
    message(FATAL_ERROR "all histogram counts are zero")
endif()
message(STATUS
        "metrics dump ok: ${nhist} histograms, ${nonzero} nonzero")
