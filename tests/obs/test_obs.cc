/**
 * @file
 * Tests for the obs/ telemetry layer: histogram bucket math and
 * percentiles, registry snapshot/merge, the RAII timer's
 * record-exactly-once contract (including early returns), the
 * InstrumentedKVStore decorator, and validity of the JSON exports
 * (checked with a tiny recursive-descent parser rather than by eye).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "kvstore/mem_store.hh"
#include "kvstore/instrumented_store.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/metrics_writer.hh"
#include "obs/scoped_timer.hh"
#include "obs/slow_op_log.hh"
#include "obs/trace_event.hh"

namespace ethkv::obs
{
namespace
{

/**
 * Minimal JSON syntax validator. Accepts exactly the value grammar
 * of RFC 8259 (objects, arrays, strings, numbers, true/false/null);
 * enough to prove the exporters emit parseable documents.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        size_t digits = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == digits)
            return false;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            digits = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == digits)
                return false;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            digits = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == digits)
                return false;
        }
        return pos_ > start;
    }

    bool
    members(char close, bool with_keys)
    {
        ++pos_; // opening brace/bracket
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == close) {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (with_keys) {
                if (pos_ >= text_.size() || !string())
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return false;
                ++pos_;
            }
            if (!value())
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == close) {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{':
            return members('}', true);
        case '[':
            return members(']', false);
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

TEST(JsonCheckerTest, SelfCheck)
{
    EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e2],"b":"x"})")
                    .valid());
    EXPECT_TRUE(JsonChecker("[]").valid());
    EXPECT_FALSE(JsonChecker(R"({"a":1,})").valid());
    EXPECT_FALSE(JsonChecker(R"({"a" 1})").valid());
    EXPECT_FALSE(JsonChecker("{").valid());
    EXPECT_FALSE(JsonChecker("01abc").valid());
}

TEST(LatencyHistogramTest, SmallValuesAreExact)
{
    for (uint64_t v = 0; v < LatencyHistogram::sub_count; ++v)
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
}

TEST(LatencyHistogramTest, BucketBoundariesRoundTrip)
{
    // The lower bound of every bucket must map back to that bucket,
    // and one-less-than-it must map strictly before it.
    for (size_t i = 0; i < 600; ++i) {
        uint64_t lo = LatencyHistogram::bucketLowerBound(i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), i)
            << "bucket " << i;
        if (lo > 0) {
            EXPECT_EQ(LatencyHistogram::bucketIndex(lo - 1), i - 1)
                << "bucket " << i;
        }
    }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotone)
{
    // Spot-check monotonicity across octave crossings.
    uint64_t probes[] = {15,
                         16,
                         17,
                         31,
                         32,
                         33,
                         1023,
                         1024,
                         1025,
                         uint64_t(1) << 20,
                         uint64_t(1000000000),
                         uint64_t(1000000000000),
                         uint64_t(1000000000000000),
                         UINT64_MAX / 2,
                         UINT64_MAX};
    size_t prev = 0;
    for (uint64_t v : probes) {
        size_t idx = LatencyHistogram::bucketIndex(v);
        EXPECT_GE(idx, prev) << "value " << v;
        EXPECT_LT(idx, LatencyHistogram::num_buckets);
        prev = idx;
    }
}

TEST(LatencyHistogramTest, CountSumMinMax)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    h.record(100);
    h.record(300);
    h.record(200);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 600u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketResolution)
{
    LatencyHistogram h;
    for (uint64_t v = 1; v <= 10000; ++v)
        h.record(v);
    // Log bucketing guarantees ~6% relative resolution.
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 5000.0,
                0.07 * 5000.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.9)), 9000.0,
                0.07 * 9000.0);
    // Extremes clamp to the exact observed range.
    EXPECT_EQ(h.percentile(0.0), 1u);
    EXPECT_EQ(h.percentile(1.0), 10000u);
}

TEST(LatencyHistogramTest, PercentileOnEmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LatencyHistogramTest, SingleValuePercentiles)
{
    LatencyHistogram h;
    h.record(777);
    for (double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(h.percentile(p), 777u) << "p=" << p;
}

TEST(LatencyHistogramTest, ResetClears)
{
    LatencyHistogram h;
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(HistogramSnapshotTest, MergeMatchesCombinedStream)
{
    LatencyHistogram a, b, all;
    for (uint64_t v = 1; v <= 3000; ++v) {
        (v % 2 ? a : b).record(v * 7);
        all.record(v * 7);
    }
    HistogramSnapshot sa = a.snapshot("a");
    sa.merge(b.snapshot("b"));
    HistogramSnapshot expect = all.snapshot();
    EXPECT_EQ(sa.count, expect.count);
    EXPECT_EQ(sa.sum, expect.sum);
    EXPECT_EQ(sa.min, expect.min);
    EXPECT_EQ(sa.max, expect.max);
    EXPECT_EQ(sa.percentile(0.5), expect.percentile(0.5));
    EXPECT_EQ(sa.percentile(0.999), expect.percentile(0.999));
}

TEST(HistogramSnapshotTest, MergeWithEmpty)
{
    LatencyHistogram a;
    a.record(10);
    HistogramSnapshot sa = a.snapshot("a");
    sa.merge(HistogramSnapshot{});
    EXPECT_EQ(sa.count, 1u);
    EXPECT_EQ(sa.min, 10u);

    HistogramSnapshot empty;
    empty.merge(a.snapshot());
    EXPECT_EQ(empty.count, 1u);
    EXPECT_EQ(empty.min, 10u);
    EXPECT_EQ(empty.max, 10u);
}

TEST(MetricsRegistryTest, LookupIsStableAndShared)
{
    MetricsRegistry reg;
    Counter &c1 = reg.counter("x");
    Counter &c2 = reg.counter("x");
    EXPECT_EQ(&c1, &c2);
    c1.inc(3);
    EXPECT_EQ(c2.value(), 3u);
    EXPECT_NE(&reg.counter("y"), &c1);
}

TEST(MetricsRegistryTest, SnapshotCapturesEverything)
{
    MetricsRegistry reg;
    reg.counter("ops").inc(7);
    reg.gauge("depth").set(-4);
    reg.histogram("lat_ns").record(1000);

    MetricsSnapshot snap = reg.snapshot();
    ASSERT_NE(snap.findCounter("ops"), nullptr);
    EXPECT_EQ(*snap.findCounter("ops"), 7u);
    EXPECT_EQ(snap.findCounter("nope"), nullptr);
    // The explicit gauge plus the synthesized percentile gauges
    // (lat_ns.p50/.p99/.p999) of the one nonempty histogram.
    ASSERT_EQ(snap.gauges.size(), 4u);
    EXPECT_EQ(snap.gauges[0].second, -4);
    const HistogramSnapshot *h = snap.findHistogram("lat_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
    EXPECT_EQ(snap.findHistogram("nope"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotMergeAddsDisjointAndShared)
{
    MetricsRegistry a, b;
    a.counter("shared").inc(1);
    b.counter("shared").inc(2);
    b.counter("only_b").inc(5);
    a.histogram("h").record(10);
    b.histogram("h").record(30);

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(*merged.findCounter("shared"), 3u);
    EXPECT_EQ(*merged.findCounter("only_b"), 5u);
    const HistogramSnapshot *h = merged.findHistogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->min, 10u);
    EXPECT_EQ(h->max, 30u);
}

TEST(MetricsRegistryTest, ResetZeroesInstruments)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("c");
    c.inc(9);
    reg.gauge("g").set(9);
    reg.histogram("h").record(9);
    reg.reset();
    // References stay valid; values go back to zero.
    EXPECT_EQ(c.value(), 0u);
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(*snap.findCounter("c"), 0u);
    EXPECT_EQ(snap.gauges[0].second, 0);
    EXPECT_EQ(snap.findHistogram("h")->count, 0u);
}

TEST(ScopedTimerTest, RecordsOnceAtScopeExit)
{
    LatencyHistogram h;
    {
        ScopedTimer timer(h);
        EXPECT_EQ(h.count(), 0u); // nothing until destruction
    }
    EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimerTest, RecordsOnEveryExitPath)
{
    LatencyHistogram h;
    // Early returns must record too — that is the whole point of
    // RAII timing over hand-rolled stop() calls.
    auto work = [&h](bool bail_early) {
        ScopedTimer timer(h);
        if (bail_early)
            return 1;
        return 2;
    };
    EXPECT_EQ(work(true), 1);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(work(false), 2);
    EXPECT_EQ(h.count(), 2u);
}

TEST(ScopedTimerTest, StopRecordsExactlyOnce)
{
    LatencyHistogram h;
    {
        ScopedTimer timer(h);
        timer.stop();
        EXPECT_EQ(h.count(), 1u);
        timer.stop(); // second stop is a no-op
        EXPECT_EQ(h.count(), 1u);
    } // destructor must not record again
    EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimerTest, DismissRecordsNothing)
{
    LatencyHistogram h;
    {
        ScopedTimer timer(h);
        timer.dismiss();
    }
    EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedTimerTest, ElapsedIsMonotone)
{
    LatencyHistogram h;
    ScopedTimer timer(h);
    uint64_t first = timer.elapsedNs();
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i)
        sink = sink + i;
    EXPECT_GE(timer.elapsedNs(), first);
    timer.dismiss();
}

/** All decorator tests use a private registry: no global state. */
class InstrumentedStoreTest : public ::testing::Test
{
  protected:
    MetricsRegistry registry;
    kv::MemStore inner;
};

TEST_F(InstrumentedStoreTest, CountsAndTimesEveryOp)
{
    // sample_shift 0: every op is timed, so counts are exact.
    kv::InstrumentedKVStore store(inner, registry, "", 0);
    EXPECT_EQ(store.scope(), inner.name());
    EXPECT_EQ(store.name(), "obs(" + inner.name() + ")");

    ASSERT_TRUE(store.put("alpha", "12345678").isOk());
    ASSERT_TRUE(store.put("beta", "x").isOk());
    Bytes value;
    ASSERT_TRUE(store.get("alpha", value).isOk());
    EXPECT_EQ(value, "12345678");
    EXPECT_TRUE(store.get("ghost", value).isNotFound());
    ASSERT_TRUE(store.del("beta").isOk());
    int visited = 0;
    ASSERT_TRUE(store
                    .scan(BytesView(), BytesView(),
                          [&](BytesView, BytesView) {
                              ++visited;
                              return true;
                          })
                    .isOk());
    EXPECT_EQ(visited, 1);
    kv::WriteBatch batch;
    batch.put("gamma", "yy");
    ASSERT_TRUE(store.apply(batch).isOk());
    ASSERT_TRUE(store.flush().isOk());

    MetricsSnapshot snap = registry.snapshot();
    const std::string scope = store.scope();
    auto counter = [&](const std::string &leaf) {
        const uint64_t *v =
            snap.findCounter("op." + scope + "." + leaf);
        return v ? *v : UINT64_MAX;
    };
    auto histCount = [&](const std::string &leaf) {
        const HistogramSnapshot *h =
            snap.findHistogram("op." + scope + "." + leaf);
        return h ? h->count : UINT64_MAX;
    };
    EXPECT_EQ(counter("puts"), 2u);
    EXPECT_EQ(counter("gets"), 2u);
    EXPECT_EQ(counter("get_misses"), 1u);
    EXPECT_EQ(counter("dels"), 1u);
    EXPECT_EQ(counter("scans"), 1u);
    EXPECT_EQ(counter("applies"), 1u);
    EXPECT_EQ(counter("flushes"), 1u);
    EXPECT_EQ(histCount("put_ns"), 2u);
    EXPECT_EQ(histCount("get_ns"), 2u);
    EXPECT_EQ(histCount("del_ns"), 1u);
    EXPECT_EQ(histCount("scan_ns"), 1u);
    EXPECT_EQ(histCount("apply_ns"), 1u);
    EXPECT_EQ(histCount("flush_ns"), 1u);

    // Byte-size histograms see payload sizes, not timings.
    const HistogramSnapshot *put_bytes =
        snap.findHistogram("op." + scope + ".put_bytes");
    ASSERT_NE(put_bytes, nullptr);
    EXPECT_EQ(put_bytes->count, 2u);
    EXPECT_EQ(put_bytes->max,
              std::string("alpha").size() +
                  std::string("12345678").size());
    const HistogramSnapshot *get_bytes =
        snap.findHistogram("op." + scope + ".get_bytes");
    ASSERT_NE(get_bytes, nullptr);
    EXPECT_EQ(get_bytes->count, 1u); // misses record no bytes
}

TEST_F(InstrumentedStoreTest, SamplingThinsHistogramsNotCounters)
{
    // shift 2 = time 1 op in 4: with 8 puts the deterministic
    // op sequence samples #0 and #4.
    kv::InstrumentedKVStore store(inner, registry, "sampled", 2);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(store.put("k" + std::to_string(i), "v").isOk());
    Bytes value;
    EXPECT_TRUE(store.get("missing", value).isNotFound());

    MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(*snap.findCounter("op.sampled.puts"), 8u);
    EXPECT_EQ(snap.findHistogram("op.sampled.put_ns")->count, 2u);
    EXPECT_EQ(snap.findHistogram("op.sampled.put_bytes")->count,
              2u);
    // Outcome counters stay exact on unsampled ops too.
    EXPECT_EQ(*snap.findCounter("op.sampled.get_misses"), 1u);
}

TEST_F(InstrumentedStoreTest, ForwardsFaithfully)
{
    kv::InstrumentedKVStore store(inner, registry, "custom");
    EXPECT_EQ(store.scope(), "custom");
    ASSERT_TRUE(store.put("k", "v").isOk());
    // Data lands in the inner engine, stats are the inner's.
    Bytes value;
    EXPECT_TRUE(inner.get("k", value).isOk());
    EXPECT_EQ(store.liveKeyCount(), 1u);
    EXPECT_TRUE(store.contains("k"));
    EXPECT_FALSE(store.contains("zz"));
    EXPECT_EQ(&store.stats(), &inner.stats());
}

TEST(MetricsJsonTest, ExportIsValidJsonWithSchema)
{
    MetricsRegistry reg;
    reg.counter("kv.ops").inc(12);
    reg.gauge("kv.depth").set(-3);
    for (uint64_t v = 1; v <= 500; ++v)
        reg.histogram("op.mem.put_ns").record(v * 100);

    std::string json = reg.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"ethkv.metrics.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"kv.ops\""), std::string::npos);
    EXPECT_NE(json.find("\"op.mem.put_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsJsonTest, WriteMetricsJsonRoundTrips)
{
    MetricsRegistry reg;
    reg.counter("c").inc(1);
    std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        "ethkv_test_metrics.json";
    ASSERT_TRUE(writeMetricsJson(reg, path.string()).isOk());
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_TRUE(JsonChecker(buf.str()).valid());
    std::filesystem::remove(path);
}

TEST(MetricsFlagTest, ConsumesSeparateForm)
{
    const char *argv_init[] = {"prog", "--foo", "--metrics-out",
                               "m.json", "--bar", nullptr};
    char *argv[6];
    for (int i = 0; i < 6; ++i)
        argv[i] = const_cast<char *>(argv_init[i]);
    int argc = 5;
    EXPECT_EQ(consumeMetricsOutFlag(&argc, argv), "m.json");
    EXPECT_EQ(argc, 3);
    EXPECT_STREQ(argv[1], "--foo");
    EXPECT_STREQ(argv[2], "--bar");
    EXPECT_EQ(argv[3], nullptr);
}

TEST(MetricsFlagTest, ConsumesEqualsFormAndLeavesRestAlone)
{
    const char *argv_init[] = {"prog", "--metrics-out=x.json",
                               "positional", nullptr};
    char *argv[4];
    for (int i = 0; i < 4; ++i)
        argv[i] = const_cast<char *>(argv_init[i]);
    int argc = 3;
    EXPECT_EQ(consumeMetricsOutFlag(&argc, argv), "x.json");
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "positional");
}

TEST(MetricsFlagTest, NoFlagMeansEmptyPath)
{
    unsetenv("ETHKV_METRICS_OUT");
    const char *argv_init[] = {"prog", "arg", nullptr};
    char *argv[3];
    for (int i = 0; i < 3; ++i)
        argv[i] = const_cast<char *>(argv_init[i]);
    int argc = 2;
    EXPECT_EQ(consumeMetricsOutFlag(&argc, argv), "");
    EXPECT_EQ(argc, 2);
}

TEST(TraceEventLogTest, SpansRenderAsValidChromeTrace)
{
    TraceEventLog log;
    log.addSpan("download", "pipeline", 10, 25);
    log.addSpan("commit", "pipeline", 40, 5, /*arg=*/1234);
    EXPECT_EQ(log.size(), 2u);
    std::string json = log.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"download\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("1234"), std::string::npos);
}

TEST(TraceEventLogTest, ScopedSpanAppendsOnDestruction)
{
    TraceEventLog log;
    {
        ScopedSpan span(&log, "verify");
        span.setArg(7);
        EXPECT_EQ(log.size(), 0u);
    }
    EXPECT_EQ(log.size(), 1u);
    EXPECT_NE(log.toJson().find("\"verify\""), std::string::npos);
}

TEST(TraceEventLogTest, NullLogIsNoOp)
{
    ScopedSpan span(nullptr, "ignored");
    span.setArg(1); // must not crash
}

// -- obs/json: writer and parser ---------------------------------

TEST(JsonWriterTest, NestedStructureWithCommas)
{
    JsonWriter w;
    w.beginObject();
    w.key("a");
    w.value(uint64_t{1});
    w.key("b");
    w.beginArray();
    w.value("x");
    w.value(int64_t{-2});
    w.value(true);
    w.null();
    w.endArray();
    w.key("c");
    w.beginObject();
    w.endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              R"({"a":1,"b":["x",-2,true,null],"c":{}})");
}

TEST(JsonWriterTest, EscapesHostileStrings)
{
    JsonWriter w;
    w.beginObject();
    w.key("k\"ey");
    w.value("line\nbreak\ttab\x01\\");
    w.endObject();
    const std::string &out = w.str();
    EXPECT_TRUE(JsonChecker(out).valid()) << out;
    EXPECT_NE(out.find("\\u0001"), std::string::npos);
    EXPECT_NE(out.find("\\n"), std::string::npos);
    // Round trip through the parser restores the raw bytes.
    JsonValue doc;
    ASSERT_TRUE(parseJson(out, doc).isOk());
    const JsonValue *v = doc.find("k\"ey");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->string, "line\nbreak\ttab\x01\\");
}

TEST(JsonWriterTest, RawValueSplicesVerbatim)
{
    JsonWriter w;
    w.beginObject();
    w.key("nested");
    w.rawValue("{\"x\":1}\n");
    w.key("after");
    w.value(uint64_t{2});
    w.endObject();
    EXPECT_EQ(w.str(), R"({"nested":{"x":1},"after":2})");
}

TEST(JsonParseTest, ScalarsAndContainers)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson(
                    R"({"s":"hi","n":-12.5,"t":true,"f":false,)"
                    R"("z":null,"a":[1,2,3]})",
                    doc)
                    .isOk());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("s")->string, "hi");
    EXPECT_DOUBLE_EQ(doc.find("n")->number, -12.5);
    EXPECT_TRUE(doc.find("t")->boolean);
    EXPECT_FALSE(doc.find("f")->boolean);
    EXPECT_TRUE(doc.find("z")->isNull());
    const JsonValue *a = doc.find("a");
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_EQ(a->items[2].asU64(), 3u);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapesIncludingUnicode)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson(
                    R"(["a\"b", "c\\d", "e\nf", "Aé"])",
                    doc)
                    .isOk());
    ASSERT_EQ(doc.items.size(), 4u);
    EXPECT_EQ(doc.items[0].string, "a\"b");
    EXPECT_EQ(doc.items[1].string, "c\\d");
    EXPECT_EQ(doc.items[2].string, "e\nf");
    EXPECT_EQ(doc.items[3].string, "A\xc3\xa9"); // UTF-8 e-acute
}

TEST(JsonParseTest, RejectsGarbage)
{
    JsonValue doc;
    EXPECT_FALSE(parseJson("", doc).isOk());
    EXPECT_FALSE(parseJson("{", doc).isOk());
    EXPECT_FALSE(parseJson("{\"a\":}", doc).isOk());
    EXPECT_FALSE(parseJson("[1,2,]", doc).isOk());
    EXPECT_FALSE(parseJson("treu", doc).isOk());
    EXPECT_FALSE(parseJson("{} trailing", doc).isOk());
    EXPECT_FALSE(parseJson("\"unterminated", doc).isOk());
}

TEST(JsonParseTest, U64ClampsNegatives)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson("[-5, 7]", doc).isOk());
    EXPECT_EQ(doc.items[0].asU64(), 0u);
    EXPECT_EQ(doc.items[1].asU64(), 7u);
}

// -- percentile gauges vs the histogram's own percentile ---------

TEST(MetricsRegistryTest, PercentileGaugesMatchHistogram)
{
    // The snapshot synthesizes <hist>.p50/.p99/.p999 gauges for
    // remote scrapers; they must agree with the histogram's own
    // percentile() on the very same snapshot.
    MetricsRegistry reg;
    LatencyHistogram &h = reg.histogram("stage_ns");
    for (uint64_t v = 1; v <= 20000; ++v)
        h.record(v * 13);

    MetricsSnapshot snap = reg.snapshot();
    const HistogramSnapshot *hs = snap.findHistogram("stage_ns");
    ASSERT_NE(hs, nullptr);
    auto gauge = [&](const std::string &name) -> int64_t {
        for (const auto &g : snap.gauges)
            if (g.first == name)
                return g.second;
        ADD_FAILURE() << "missing gauge " << name;
        return -1;
    };
    EXPECT_EQ(gauge("stage_ns.p50"),
              static_cast<int64_t>(hs->percentile(0.5)));
    EXPECT_EQ(gauge("stage_ns.p99"),
              static_cast<int64_t>(hs->percentile(0.99)));
    EXPECT_EQ(gauge("stage_ns.p999"),
              static_cast<int64_t>(hs->percentile(0.999)));

    // And the JSON export carries the same numbers.
    JsonValue doc;
    ASSERT_TRUE(parseJson(reg.toJson(), doc).isOk());
    const JsonValue *hists = doc.find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *exported = hists->find("stage_ns");
    ASSERT_NE(exported, nullptr);
    EXPECT_EQ(exported->find("p50")->asU64(), hs->percentile(0.5));
    EXPECT_EQ(exported->find("p999")->asU64(),
              hs->percentile(0.999));
}

TEST(MetricsRegistryTest, EmptyHistogramSynthesizesNoGauges)
{
    MetricsRegistry reg;
    reg.histogram("quiet_ns");
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.gauges.empty());
}

// -- slow-op ring ------------------------------------------------

TEST(SlowOpLogTest, KeepsNewestUpToCapacity)
{
    SlowOpLog log(4);
    EXPECT_EQ(log.capacity(), 4u);
    for (uint64_t i = 1; i <= 10; ++i) {
        SlowOpRecord rec;
        rec.start_us = i;
        rec.total_ns = i * 100;
        rec.opcode = 1;
        log.record(rec);
    }
    EXPECT_EQ(log.recorded(), 10u);
    EXPECT_EQ(log.dropped(), 0u);
    std::vector<SlowOpRecord> snap = log.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    // Newest first: records 10, 9, 8, 7.
    EXPECT_EQ(snap[0].start_us, 10u);
    EXPECT_EQ(snap[3].start_us, 7u);
}

TEST(SlowOpLogTest, JsonExportParsesAndCountsMatch)
{
    SlowOpLog log(8);
    SlowOpRecord rec;
    rec.trace_id = 0xfeedbeef;
    rec.total_ns = 4242;
    rec.exec_ns = 4000;
    rec.opcode = 2;
    log.record(rec);

    JsonValue doc;
    ASSERT_TRUE(parseJson(log.toJson(), doc).isOk());
    EXPECT_EQ(doc.find("schema")->string, "ethkv.slowops.v1");
    EXPECT_EQ(doc.find("capacity")->asU64(), 8u);
    EXPECT_EQ(doc.find("recorded")->asU64(), 1u);
    const JsonValue *ops = doc.find("ops");
    ASSERT_NE(ops, nullptr);
    ASSERT_EQ(ops->items.size(), 1u);
    EXPECT_EQ(ops->items[0].find("trace_id")->asU64(),
              0xfeedbeefu);
    EXPECT_EQ(ops->items[0].find("total_ns")->asU64(), 4242u);
    EXPECT_EQ(ops->items[0].find("opcode")->asU64(), 2u);
}

TEST(SlowOpLogTest, ConcurrentWritersNeverTearRecords)
{
    SlowOpLog log(16);
    constexpr int kThreads = 4;
    constexpr uint64_t kEach = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&log, t] {
            for (uint64_t i = 0; i < kEach; ++i) {
                SlowOpRecord rec;
                // total_ns encodes the writer so a torn record
                // (mixed fields) is detectable below.
                rec.total_ns = static_cast<uint64_t>(t) + 1;
                rec.exec_ns = (static_cast<uint64_t>(t) + 1) * 10;
                log.record(rec);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(log.recorded() + log.dropped(), kThreads * kEach);
    for (const SlowOpRecord &rec : log.snapshot()) {
        ASSERT_GE(rec.total_ns, 1u);
        ASSERT_LE(rec.total_ns, 4u);
        EXPECT_EQ(rec.exec_ns, rec.total_ns * 10);
    }
}

// -- periodic metrics writer delta math --------------------------

TEST(PeriodicMetricsWriterTest, RenderOnceComputesDeltasAndRates)
{
    MetricsRegistry reg;
    Counter &ops = reg.counter("srv.ops");
    ops.inc(100);

    PeriodicMetricsWriter::Options options;
    options.registry = &reg;
    PeriodicMetricsWriter writer(options);

    // First render: baseline, no deltas yet.
    JsonValue first;
    ASSERT_TRUE(parseJson(writer.renderOnce(1000), first).isOk());
    EXPECT_EQ(first.find("schema")->string,
              "ethkv.metrics.live.v1");

    // 150 more ops over a simulated 500 ms → delta 150, 300/s.
    ops.inc(150);
    JsonValue second;
    ASSERT_TRUE(parseJson(writer.renderOnce(500), second).isOk());
    const JsonValue *deltas = second.find("deltas");
    ASSERT_NE(deltas, nullptr);
    EXPECT_EQ(deltas->find("srv.ops")->asU64(), 150u);
    const JsonValue *rates = second.find("rates_per_sec");
    ASSERT_NE(rates, nullptr);
    EXPECT_NEAR(rates->find("srv.ops")->number, 300.0, 0.5);
    // Full snapshot rides along for absolute values.
    const JsonValue *metrics = second.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const JsonValue *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("srv.ops")->asU64(), 250u);
}

TEST(PeriodicMetricsWriterTest, StopWritesFinalSnapshot)
{
    MetricsRegistry reg;
    reg.counter("final.ops").inc(3);
    std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        "ethkv_test_live_metrics.json";
    std::filesystem::remove(path);

    PeriodicMetricsWriter::Options options;
    options.path = path.string();
    options.interval_ms = 60000; // only the final write matters
    options.registry = &reg;
    PeriodicMetricsWriter writer(options);
    writer.start();
    writer.stop();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    JsonValue doc;
    ASSERT_TRUE(parseJson(buf.str(), doc).isOk()) << buf.str();
    EXPECT_EQ(doc.find("schema")->string, "ethkv.metrics.live.v1");
    std::filesystem::remove(path);
}

// -- trace merging -----------------------------------------------

TEST(TraceEventLogTest, MergeSplicesTwoArrays)
{
    TraceEventLog a(/*absolute_clock=*/true);
    TraceEventLog b(/*absolute_clock=*/true);
    a.setProcessLabel(1, "server");
    b.setProcessLabel(2, "client");
    a.addSpan("srv.op", "pipeline", 100, 10);
    b.addSpan("cli.op", "pipeline", 90, 30);

    std::string merged = mergeTraceJson(a.toJson(), b.toJson());
    JsonValue doc;
    ASSERT_TRUE(parseJson(merged, doc).isOk()) << merged;
    ASSERT_TRUE(doc.isArray());
    // Two spans + two process_name metadata records.
    ASSERT_EQ(doc.items.size(), 4u);
    size_t spans = 0, meta = 0;
    for (const JsonValue &ev : doc.items) {
        const JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "X")
            ++spans;
        else if (ph->string == "M")
            ++meta;
    }
    EXPECT_EQ(spans, 2u);
    EXPECT_EQ(meta, 2u);
}

TEST(TraceEventLogTest, MergeToleratesEmptyInputs)
{
    TraceEventLog a;
    a.addSpan("only", "pipeline", 1, 2);
    std::string only_a = mergeTraceJson(a.toJson(), "");
    JsonValue doc;
    ASSERT_TRUE(parseJson(only_a, doc).isOk()) << only_a;
    ASSERT_EQ(doc.items.size(), 1u);
    std::string none = mergeTraceJson("", "");
    ASSERT_TRUE(parseJson(none, doc).isOk()) << none;
    EXPECT_TRUE(doc.items.empty());
}

TEST(TraceEventLogTest, MaxSpansDropsAndCounts)
{
    TraceEventLog log(/*absolute_clock=*/false, /*max_spans=*/3);
    for (int i = 0; i < 10; ++i)
        log.addSpan("s" + std::to_string(i), "c", i, 1);
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.dropped(), 7u);
}

} // namespace
} // namespace ethkv::obs
