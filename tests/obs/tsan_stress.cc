/**
 * @file
 * ThreadSanitizer stress binary, always built with
 * -fsanitize=thread (see tests/CMakeLists.txt). It hammers the
 * shared telemetry state — one MetricsRegistry and one
 * TraceEventLog used by several threads at once — the way a
 * multi-engine benchmark run would, and takes concurrent
 * snapshots while writers are live. Any data race in the
 * annotated obs/ locking (src/common/mutex.hh capability
 * wrappers) fails `ctest` on every build.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/mem_store.hh"
#include "kvstore/instrumented_store.hh"
#include "obs/metrics.hh"
#include "obs/scoped_timer.hh"
#include "obs/trace_event.hh"

using namespace ethkv;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "tsan_stress: FAILED: %s\n", what);
        ++failures;
    }
}

constexpr int num_writers = 4;
constexpr int ops_per_writer = 4000;

/** One engine thread: a private store, the shared registry/log. */
void
writerBody(int id, obs::MetricsRegistry &registry,
           obs::TraceEventLog &log)
{
    kv::MemStore inner;
    kv::InstrumentedKVStore store(
        inner, registry, "w" + std::to_string(id));
    // Shared instruments: every thread bumps the same counter and
    // histogram objects, racing creation on first touch.
    obs::Counter &shared_ops = registry.counter("stress.ops");
    obs::LatencyHistogram &shared_lat =
        registry.histogram("stress.latency_ns");
    for (int i = 0; i < ops_per_writer; ++i) {
        std::string key = "key-" + std::to_string(i % 97);
        store.put(key, std::string(1 + i % 64, 'v'))
            .expectOk("put");
        Bytes value;
        store.get(key, value).expectOk("get");
        shared_ops.inc();
        shared_lat.record(static_cast<uint64_t>(i));
        registry.gauge("stress.gauge").set(i);
        if (i % 64 == 0) {
            obs::ScopedSpan span(&log, "stress-op");
            span.setArg(static_cast<uint64_t>(i));
        }
    }
}

} // namespace

int
main()
{
    obs::MetricsRegistry registry;
    obs::TraceEventLog log;

    std::vector<std::thread> writers;
    writers.reserve(num_writers);
    for (int id = 0; id < num_writers; ++id)
        writers.emplace_back(writerBody, id, std::ref(registry),
                             std::ref(log));

    // Reader thread: snapshot + serialize while writers are live.
    std::thread reader([&] {
        for (int i = 0; i < 50; ++i) {
            obs::MetricsSnapshot snap = registry.snapshot();
            check(!snap.toJson().empty(), "snapshot json");
            check(!log.toJson().empty() || log.size() == 0,
                  "trace json");
        }
    });

    for (std::thread &t : writers)
        t.join();
    reader.join();

    obs::MetricsSnapshot final_snap = registry.snapshot();
    const uint64_t *ops = final_snap.findCounter("stress.ops");
    check(ops != nullptr, "shared counter present");
    check(ops && *ops == static_cast<uint64_t>(num_writers) *
                             ops_per_writer,
          "shared counter total");

    if (failures == 0)
        std::printf("tsan_stress: ok\n");
    return failures ? 1 : 0;
}
