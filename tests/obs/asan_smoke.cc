/**
 * @file
 * AddressSanitizer smoke binary, always built with
 * -fsanitize=address regardless of ETHKV_SANITIZE (see
 * tests/CMakeLists.txt). It compiles the obs/ sources and the
 * header-only engine hot path under ASan and drives them hard
 * enough that heap-buffer-overflow or use-after-free in the
 * telemetry layer fails `ctest` on every build, not just
 * sanitizer-flagged ones.
 */

#include <cstdio>
#include <string>

#include "kvstore/mem_store.hh"
#include "kvstore/instrumented_store.hh"
#include "obs/metrics.hh"
#include "obs/scoped_timer.hh"
#include "obs/trace_event.hh"

using namespace ethkv;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "asan_smoke: FAILED: %s\n", what);
        ++failures;
    }
}

} // namespace

int
main()
{
    obs::MetricsRegistry registry;
    kv::MemStore inner;
    kv::InstrumentedKVStore store(inner, registry, "smoke");

    // Churn the full op surface, including miss and delete paths.
    for (int i = 0; i < 20000; ++i) {
        std::string key = "key-" + std::to_string(i % 500);
        store.put(key, std::string(1 + i % 128, 'v'))
            .expectOk("put");
        Bytes value;
        store.get(key, value).expectOk("get");
        Status miss =
            store.get("missing-" + std::to_string(i), value);
        check(miss.isNotFound(), "missing key lookup");
        if (i % 7 == 0)
            store.del(key).expectOk("del");
    }
    int visited = 0;
    store
        .scan(BytesView(), BytesView(),
              [&](BytesView, BytesView) { return ++visited < 50; })
        .expectOk("scan");

    // Histogram edges: bucket 0, the octave seams, and UINT64_MAX.
    obs::LatencyHistogram &edges = registry.histogram("edges");
    for (uint64_t v : {uint64_t(0), uint64_t(15), uint64_t(16),
                       uint64_t(1) << 33, UINT64_MAX})
        edges.record(v);
    check(edges.count() == 5, "edge record count");
    check(edges.max() == UINT64_MAX, "edge max");

    {
        obs::ScopedTimer timer(registry.histogram("timer_ns"));
    }
    obs::TraceEventLog log;
    {
        obs::ScopedSpan span(&log, "smoke");
        span.setArg(42);
    }
    check(log.size() == 1, "span count");
    check(!log.toJson().empty(), "trace json");

    // Snapshot + merge + export stress the copy paths ASan watches.
    obs::MetricsSnapshot snap = registry.snapshot();
    snap.merge(registry.snapshot());
    const uint64_t *puts = snap.findCounter("op.smoke.puts");
    check(puts && *puts == 40000, "merged put count");
    check(snap.toJson().find("ethkv.metrics.v1") !=
              std::string::npos,
          "json schema tag");

    if (failures == 0)
        std::printf("asan_smoke: ok\n");
    return failures ? 1 : 0;
}
