/**
 * @file
 * Keccak-256 known-answer tests (Ethereum's pre-FIPS padding).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/keccak.hh"

namespace ethkv
{
namespace
{

std::string
hashHex(BytesView data)
{
    return toHex(keccak256Bytes(data));
}

TEST(KeccakTest, EmptyString)
{
    // The famous constant: hash of the empty string, used all over
    // Ethereum (empty code hash, empty trie marker derivation).
    EXPECT_EQ(
        hashHex(""),
        "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d"
        "85a470");
}

TEST(KeccakTest, Abc)
{
    EXPECT_EQ(
        hashHex("abc"),
        "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa1"
        "2d6c45");
}

TEST(KeccakTest, QuickBrownFox)
{
    EXPECT_EQ(
        hashHex("The quick brown fox jumps over the lazy dog"),
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b"
        "28aa15");
}

TEST(KeccakTest, ExactlyOneRateBlock)
{
    // 136 bytes == the 1088-bit rate: exercises the full-block
    // absorb path plus an all-padding final block.
    Bytes data(136, 'a');
    EXPECT_EQ(
        hashHex(data),
        "a6c4d403279fe3e0af03729caada8374b5ca54d8065329a3ebcaeb4b60"
        "aa386e");
}

TEST(KeccakTest, MultiBlock)
{
    Bytes data(1000, 'x');
    Digest256 d1 = keccak256(data);
    Digest256 d2 = keccak256(data);
    EXPECT_EQ(d1, d2);
    data[999] = 'y';
    EXPECT_NE(keccak256(data), d1);
}

TEST(KeccakTest, LengthExtensionOfInputChangesDigest)
{
    Bytes a(135, 'q');
    Bytes b(136, 'q');
    Bytes c(137, 'q');
    EXPECT_NE(keccak256(a), keccak256(b));
    EXPECT_NE(keccak256(b), keccak256(c));
}

TEST(KeccakTest, BytesFormMatchesArrayForm)
{
    Bytes data = "ethkv";
    Digest256 d = keccak256(data);
    Bytes b = keccak256Bytes(data);
    ASSERT_EQ(b.size(), 32u);
    EXPECT_EQ(0, std::memcmp(b.data(), d.data(), 32));
}

} // namespace
} // namespace ethkv
