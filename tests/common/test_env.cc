/**
 * @file
 * PosixEnv tests: file lifecycle, append/sync/read-back, rename,
 * truncation, the whole-file helpers, and torn-tail quarantine.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/env.hh"
#include "../kvstore/test_util.hh"

namespace ethkv
{
namespace
{

using testutil::ScratchDir;

TEST(EnvTest, WriteSyncReadBack)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/data.bin";

    auto file = env->newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("hello ").isOk());
    ASSERT_TRUE(file.value()->append("world").isOk());
    ASSERT_TRUE(file.value()->sync().isOk());
    ASSERT_TRUE(file.value()->close().isOk());

    Bytes out;
    ASSERT_TRUE(env->readFileToString(path, out).isOk());
    EXPECT_EQ(out, "hello world");
    auto size = env->fileSize(path);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(size.value(), 11u);
}

TEST(EnvTest, WritableFileTruncatesExisting)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/data.bin";
    ASSERT_TRUE(
        env->writeStringToFile(path, "old content", false).isOk());

    auto file = env->newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("new").isOk());
    ASSERT_TRUE(file.value()->close().isOk());

    Bytes out;
    ASSERT_TRUE(env->readFileToString(path, out).isOk());
    EXPECT_EQ(out, "new");
}

TEST(EnvTest, AppendableFilePreservesExisting)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/log.bin";
    ASSERT_TRUE(env->writeStringToFile(path, "first|", false).isOk());

    auto file = env->newAppendableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("second").isOk());
    ASSERT_TRUE(file.value()->close().isOk());

    Bytes out;
    ASSERT_TRUE(env->readFileToString(path, out).isOk());
    EXPECT_EQ(out, "first|second");
}

TEST(EnvTest, RandomAccessPositionedReads)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/data.bin";
    ASSERT_TRUE(
        env->writeStringToFile(path, "0123456789", false).isOk());

    auto file = env->newRandomAccessFile(path);
    ASSERT_TRUE(file.ok());
    Bytes out;
    ASSERT_TRUE(file.value()->read(3, 4, out).isOk());
    EXPECT_EQ(out, "3456");
    ASSERT_TRUE(file.value()->read(0, 10, out).isOk());
    EXPECT_EQ(out, "0123456789");
    // Short reads are errors, not silent truncation.
    EXPECT_EQ(file.value()->read(8, 5, out).code(),
              StatusCode::IOError);
}

TEST(EnvTest, SequentialReadToEof)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/data.bin";
    ASSERT_TRUE(
        env->writeStringToFile(path, "abcdefgh", false).isOk());

    auto file = env->newSequentialFile(path);
    ASSERT_TRUE(file.ok());
    Bytes out;
    ASSERT_TRUE(file.value()->read(5, out).isOk());
    EXPECT_EQ(out, "abcde");
    ASSERT_TRUE(file.value()->read(5, out).isOk());
    EXPECT_EQ(out, "fgh");
    ASSERT_TRUE(file.value()->read(5, out).isOk());
    EXPECT_TRUE(out.empty()); // EOF
}

TEST(EnvTest, FileExistsAndRemove)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/victim.bin";
    EXPECT_FALSE(env->fileExists(path));
    ASSERT_TRUE(env->writeStringToFile(path, "x", false).isOk());
    EXPECT_TRUE(env->fileExists(path));
    ASSERT_TRUE(env->removeFile(path).isOk());
    EXPECT_FALSE(env->fileExists(path));
    // Removing an absent file is an error, not a silent no-op.
    EXPECT_FALSE(env->removeFile(path).isOk());
}

TEST(EnvTest, MissingFileErrors)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/nope.bin";
    EXPECT_FALSE(env->newRandomAccessFile(path).ok());
    EXPECT_FALSE(env->newSequentialFile(path).ok());
    EXPECT_FALSE(env->fileSize(path).ok());
    Bytes out;
    EXPECT_FALSE(env->readFileToString(path, out).isOk());
}

TEST(EnvTest, CreateDirsNested)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string nested = dir.path() + "/a/b/c";
    ASSERT_TRUE(env->createDirs(nested).isOk());
    // Idempotent.
    ASSERT_TRUE(env->createDirs(nested).isOk());
    ASSERT_TRUE(
        env->writeStringToFile(nested + "/f", "x", false).isOk());
    EXPECT_TRUE(env->fileExists(nested + "/f"));
}

TEST(EnvTest, RenameReplacesAndSyncDirSucceeds)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string from = dir.path() + "/manifest.tmp";
    std::string to = dir.path() + "/manifest";
    ASSERT_TRUE(env->writeStringToFile(to, "old", true).isOk());
    ASSERT_TRUE(env->writeStringToFile(from, "new", true).isOk());

    ASSERT_TRUE(env->renameFile(from, to).isOk());
    ASSERT_TRUE(env->syncDir(dir.path()).isOk());

    EXPECT_FALSE(env->fileExists(from));
    Bytes out;
    ASSERT_TRUE(env->readFileToString(to, out).isOk());
    EXPECT_EQ(out, "new");
}

TEST(EnvTest, TruncateFile)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/data.bin";
    ASSERT_TRUE(
        env->writeStringToFile(path, "0123456789", false).isOk());
    ASSERT_TRUE(env->truncateFile(path, 4).isOk());
    Bytes out;
    ASSERT_TRUE(env->readFileToString(path, out).isOk());
    EXPECT_EQ(out, "0123");
}

TEST(EnvTest, QuarantineTailSalvagesAndTruncates)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/wal.log";
    std::string quarantine = dir.path() + "/quarantine";
    ASSERT_TRUE(
        env->writeStringToFile(path, "intactTORNTAIL", false).isOk());

    uint64_t salvaged = 0;
    ASSERT_TRUE(
        env->quarantineTail(path, 6, quarantine, &salvaged).isOk());
    EXPECT_EQ(salvaged, 8u);

    // The torn bytes moved, byte for byte, into quarantine/ ...
    Bytes tail;
    ASSERT_TRUE(
        env->readFileToString(quarantine + "/wal.log.6.tail", tail)
            .isOk());
    EXPECT_EQ(tail, "TORNTAIL");
    // ... and the file shrank back to its intact prefix.
    Bytes head;
    ASSERT_TRUE(env->readFileToString(path, head).isOk());
    EXPECT_EQ(head, "intact");
}

TEST(EnvTest, QuarantineTailNoOpWhenNothingTorn)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/wal.log";
    std::string quarantine = dir.path() + "/quarantine";
    ASSERT_TRUE(
        env->writeStringToFile(path, "intact", false).isOk());

    uint64_t salvaged = 99;
    ASSERT_TRUE(
        env->quarantineTail(path, 6, quarantine, &salvaged).isOk());
    EXPECT_EQ(salvaged, 0u);
    EXPECT_FALSE(env->fileExists(quarantine + "/wal.log.6.tail"));
    Bytes out;
    ASSERT_TRUE(env->readFileToString(path, out).isOk());
    EXPECT_EQ(out, "intact");
}

TEST(EnvTest, WriteStringToFileSyncVariant)
{
    ScratchDir dir("env");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/synced.bin";
    ASSERT_TRUE(env->writeStringToFile(path, "durable", true).isOk());
    Bytes out;
    ASSERT_TRUE(env->readFileToString(path, out).isOk());
    EXPECT_EQ(out, "durable");
}

} // namespace
} // namespace ethkv
