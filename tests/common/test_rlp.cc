/**
 * @file
 * RLP codec tests: Ethereum specification vectors plus random
 * round-trip property sweeps.
 */

#include <gtest/gtest.h>

#include "common/rand.hh"
#include "common/rlp.hh"

namespace ethkv
{
namespace
{

TEST(RlpTest, SpecVectors)
{
    // Canonical vectors from the Ethereum wiki / yellow paper.
    EXPECT_EQ(toHex(rlpEncodeString("dog")), "83646f67");
    EXPECT_EQ(toHex(rlpEncodeString("")), "80");
    EXPECT_EQ(toHex(rlpEncodeUint(0)), "80");
    EXPECT_EQ(toHex(rlpEncodeUint(15)), "0f");
    EXPECT_EQ(toHex(rlpEncodeUint(1024)), "820400");
    EXPECT_EQ(toHex(rlpEncodeListPayload("")), "c0");

    RlpItem cat_dog = RlpItem::list({RlpItem::string("cat"),
                                     RlpItem::string("dog")});
    EXPECT_EQ(toHex(rlpEncode(cat_dog)), "c88363617483646f67");

    // Set-theoretic representation of [ [], [[]], [ [], [[]] ] ].
    RlpItem empty = RlpItem::list({});
    RlpItem nested1 = RlpItem::list({empty});
    RlpItem nested2 = RlpItem::list({empty, nested1});
    RlpItem all = RlpItem::list({empty, nested1, nested2});
    EXPECT_EQ(toHex(rlpEncode(all)), "c7c0c1c0c3c0c1c0");
}

TEST(RlpTest, LongString)
{
    Bytes lorem =
        "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
    Bytes enc = rlpEncodeString(lorem);
    EXPECT_EQ(static_cast<uint8_t>(enc[0]), 0xb8);
    EXPECT_EQ(static_cast<uint8_t>(enc[1]), lorem.size());

    auto dec = rlpDecode(enc);
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec.value().str, lorem);
}

TEST(RlpTest, SingleByteBelow0x80IsItsOwnEncoding)
{
    Bytes enc = rlpEncodeString("a");
    ASSERT_EQ(enc.size(), 1u);
    EXPECT_EQ(enc[0], 'a');
}

TEST(RlpTest, UintRoundTrip)
{
    for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 256ull, 65535ull,
                       1ull << 40, ~0ull}) {
        auto dec = rlpDecode(rlpEncodeUint(v));
        ASSERT_TRUE(dec.ok());
        EXPECT_EQ(dec.value().toUint(), v);
    }
}

TEST(RlpTest, DecodeRejectsMalformed)
{
    // Trailing bytes after a complete item.
    EXPECT_FALSE(rlpDecode(mustFromHex("83646f6700")).ok());
    // Truncated string.
    EXPECT_FALSE(rlpDecode(mustFromHex("83646f")).ok());
    // Truncated list payload.
    EXPECT_FALSE(rlpDecode(mustFromHex("c883636174")).ok());
    // Non-canonical single byte ("a" wrapped in a length prefix).
    EXPECT_FALSE(rlpDecode(mustFromHex("8161")).ok());
    // Non-canonical long length (length <= 55 via long form).
    EXPECT_FALSE(rlpDecode(mustFromHex("b803646f67")).ok());
    // Empty input.
    EXPECT_FALSE(rlpDecode("").ok());
}

TEST(RlpTest, DecodeRejectsLeadingZeroLength)
{
    // 0xb9 = long string, 2 length bytes; leading zero is invalid.
    Bytes data = mustFromHex("b90038");
    data += Bytes(56, 'x');
    EXPECT_FALSE(rlpDecode(data).ok());
}

namespace
{

RlpItem
randomItem(Rng &rng, int depth)
{
    if (depth >= 3 || rng.chance(0.6)) {
        size_t len = rng.nextBounded(80);
        return RlpItem::string(rng.nextBytes(len));
    }
    size_t n = rng.nextBounded(5);
    std::vector<RlpItem> children;
    children.reserve(n);
    for (size_t i = 0; i < n; ++i)
        children.push_back(randomItem(rng, depth + 1));
    return RlpItem::list(std::move(children));
}

} // namespace

class RlpRoundTripTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RlpRoundTripTest, RandomTreeRoundTrips)
{
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        RlpItem item = randomItem(rng, 0);
        Bytes enc = rlpEncode(item);
        auto dec = rlpDecode(enc);
        ASSERT_TRUE(dec.ok()) << dec.status().toString();
        EXPECT_EQ(dec.value(), item);
        // Re-encoding the decoded tree is byte-identical
        // (canonical encoding).
        EXPECT_EQ(rlpEncode(dec.value()), enc);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlpRoundTripTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

TEST(RlpTest, BigEndianHelpers)
{
    EXPECT_TRUE(uintToBigEndian(0).empty());
    EXPECT_EQ(toHex(uintToBigEndian(0x1234)), "1234");
    EXPECT_EQ(bigEndianToUint(mustFromHex("1234")), 0x1234u);
    EXPECT_EQ(bigEndianToUint(""), 0u);
}

} // namespace
} // namespace ethkv
