/**
 * @file
 * Status/Result tests: construction, codes, messages, value
 * passing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/status.hh"

namespace ethkv
{
namespace
{

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_FALSE(s.isNotFound());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "Ok");
}

TEST(StatusTest, FactoryCodesAndMessages)
{
    EXPECT_TRUE(Status::notFound().isNotFound());
    EXPECT_EQ(Status::corruption("bad").code(),
              StatusCode::Corruption);
    EXPECT_EQ(Status::ioError().code(), StatusCode::IOError);
    EXPECT_EQ(Status::invalidArgument().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(Status::notSupported().code(),
              StatusCode::NotSupported);

    Status s = Status::corruption("checksum mismatch");
    EXPECT_EQ(s.toString(), "Corruption: checksum mismatch");
    EXPECT_EQ(s.message(), "checksum mismatch");
}

TEST(StatusTest, CodeNames)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "Ok");
    EXPECT_STREQ(statusCodeName(StatusCode::NotFound), "NotFound");
    EXPECT_STREQ(statusCodeName(StatusCode::NotSupported),
                 "NotSupported");
}

TEST(ResultTest, ValueAccess)
{
    Result<int> ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);
    EXPECT_EQ(ok.take(), 42);

    Result<int> err(Status::notFound("nope"));
    EXPECT_FALSE(err.ok());
    EXPECT_TRUE(err.status().isNotFound());
}

TEST(ResultTest, MoveOnlyValues)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> taken = r.take();
    EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, MutableValue)
{
    Result<std::string> r(std::string("abc"));
    r.value() += "def";
    EXPECT_EQ(r.value(), "abcdef");
}

} // namespace
} // namespace ethkv
