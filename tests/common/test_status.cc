/**
 * @file
 * Status/Result tests: construction, codes, messages, value
 * passing.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/status.hh"

namespace ethkv
{
namespace
{

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.isOk());
    EXPECT_FALSE(s.isNotFound());
    EXPECT_EQ(s.code(), StatusCode::Ok);
    EXPECT_EQ(s.toString(), "Ok");
}

TEST(StatusTest, FactoryCodesAndMessages)
{
    EXPECT_TRUE(Status::notFound().isNotFound());
    EXPECT_EQ(Status::corruption("bad").code(),
              StatusCode::Corruption);
    EXPECT_EQ(Status::ioError().code(), StatusCode::IOError);
    EXPECT_EQ(Status::invalidArgument().code(),
              StatusCode::InvalidArgument);
    EXPECT_EQ(Status::notSupported().code(),
              StatusCode::NotSupported);

    Status s = Status::corruption("checksum mismatch");
    EXPECT_EQ(s.toString(), "Corruption: checksum mismatch");
    EXPECT_EQ(s.message(), "checksum mismatch");
}

TEST(StatusTest, IODegraded)
{
    Status s = Status::ioDegraded("read-only after EIO");
    EXPECT_TRUE(s.isIODegraded());
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::IODegraded);
    EXPECT_EQ(s.toString(), "IODegraded: read-only after EIO");
    EXPECT_STREQ(statusCodeName(StatusCode::IODegraded),
                 "IODegraded");
    // The plain IOError that triggers degradation is a distinct
    // code, so callers can tell root cause from aftermath.
    EXPECT_FALSE(Status::ioError("root cause").isIODegraded());
}

TEST(StatusTest, CodeNames)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "Ok");
    EXPECT_STREQ(statusCodeName(StatusCode::NotFound), "NotFound");
    EXPECT_STREQ(statusCodeName(StatusCode::NotSupported),
                 "NotSupported");
}

TEST(ResultTest, ValueAccess)
{
    Result<int> ok(42);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);
    EXPECT_EQ(ok.take(), 42);

    Result<int> err(Status::notFound("nope"));
    EXPECT_FALSE(err.ok());
    EXPECT_TRUE(err.status().isNotFound());
}

TEST(ResultTest, MoveOnlyValues)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> taken = r.take();
    EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, MutableValue)
{
    Result<std::string> r(std::string("abc"));
    r.value() += "def";
    EXPECT_EQ(r.value(), "abcdef");
}

TEST(StatusTest, MoveSemantics)
{
    Status src = Status::corruption("movable");
    Status moved = std::move(src);
    EXPECT_EQ(moved.code(), StatusCode::Corruption);
    EXPECT_EQ(moved.message(), "movable");

    Status assigned;
    assigned = std::move(moved);
    EXPECT_EQ(assigned.toString(), "Corruption: movable");
}

TEST(ResultTest, MoveSemantics)
{
    Result<std::unique_ptr<int>> src(std::make_unique<int>(9));
    Result<std::unique_ptr<int>> moved = std::move(src);
    ASSERT_TRUE(moved.ok());
    EXPECT_EQ(*moved.value(), 9);

    Result<std::unique_ptr<int>> err(Status::ioError("disk"));
    Result<std::unique_ptr<int>> err_moved = std::move(err);
    EXPECT_FALSE(err_moved.ok());
    EXPECT_EQ(err_moved.status().code(), StatusCode::IOError);
}

TEST(ResultTest, TakeLeavesMovedFromValue)
{
    Result<std::string> r(std::string("payload"));
    std::string taken = r.take();
    EXPECT_EQ(taken, "payload");
    // The Result is still Ok (take() moves the value, not the
    // status); the contained value is simply moved-from.
    EXPECT_TRUE(r.ok());
}

TEST(StatusTest, IgnoreStatusEvaluatesExactlyOnce)
{
    int calls = 0;
    auto sideEffect = [&calls]() {
        ++calls;
        return Status::ioError("deliberately dropped");
    };
    ETHKV_IGNORE_STATUS(sideEffect(), "testing the macro");
    EXPECT_EQ(calls, 1);
}

TEST(StatusTest, IgnoreStatusAcceptsResult)
{
    int calls = 0;
    auto sideEffect = [&calls]() -> Result<int> {
        ++calls;
        return Status::notFound("dropped result");
    };
    ETHKV_IGNORE_STATUS(sideEffect(), "testing with Result<T>");
    EXPECT_EQ(calls, 1);
}

TEST(StatusDeathTest, ExpectOkPanicsOnError)
{
    Status s = Status::corruption("bad block");
    EXPECT_DEATH(s.expectOk("load"),
                 "load failed: Corruption: bad block");
}

TEST(ResultDeathTest, TakeOnErrorPanics)
{
    Result<int> r(Status::notFound("gone"));
    EXPECT_DEATH(static_cast<void>(r.take()),
                 "Result::take\\(\\) on error");
}

} // namespace
} // namespace ethkv
