/**
 * @file
 * FaultInjectionEnv tests: the crash model (unsynced data loss,
 * torn tails, dir-entry unwind, dead handles) and the orthogonal
 * fault injectors (write/sync/read errors).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/env.hh"
#include "common/fault_env.hh"
#include "../kvstore/test_util.hh"

namespace ethkv
{
namespace
{

using testutil::ScratchDir;

/** Create path under `fault` with `content`, sync data + dir. */
void
writeDurable(FaultInjectionEnv &fault, const std::string &dir,
             const std::string &path, BytesView content)
{
    auto file = fault.newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append(content).isOk());
    ASSERT_TRUE(file.value()->sync().isOk());
    ASSERT_TRUE(file.value()->close().isOk());
    ASSERT_TRUE(fault.syncDir(dir).isOk());
}

TEST(FaultEnvTest, SyncedBytesSurviveCrashUnsyncedVanish)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/wal.log";

    auto file = fault.newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("durable").isOk());
    ASSERT_TRUE(file.value()->sync().isOk());
    ASSERT_TRUE(fault.syncDir(dir.path()).isOk());
    ASSERT_TRUE(file.value()->append("volatile").isOk());

    fault.crashKeepUnsyncedBytes(0);
    fault.simulateCrash();
    fault.reactivate();

    Bytes out;
    ASSERT_TRUE(fault.readFileToString(path, out).isOk());
    EXPECT_EQ(out, "durable");
    EXPECT_EQ(fault.droppedBytes(), 8u);
}

TEST(FaultEnvTest, CrashKeepsPinnedTornPrefix)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/wal.log";

    auto file = fault.newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("base|").isOk());
    ASSERT_TRUE(file.value()->sync().isOk());
    ASSERT_TRUE(fault.syncDir(dir.path()).isOk());
    ASSERT_TRUE(file.value()->append("abcdefgh").isOk());

    fault.crashKeepUnsyncedBytes(3);
    fault.simulateCrash();
    fault.reactivate();

    Bytes out;
    ASSERT_TRUE(fault.readFileToString(path, out).isOk());
    EXPECT_EQ(out, "base|abc"); // synced prefix + 3-byte torn tail
    EXPECT_EQ(fault.droppedBytes(), 5u);
}

TEST(FaultEnvTest, ReadsObservePendingBytes)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/data.bin";

    auto file = fault.newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("unsynced").isOk());

    // Page-cache model: unsynced bytes are visible to readers and
    // counted by fileSize; only a crash loses them.
    auto size = fault.fileSize(path);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(size.value(), 8u);
    auto reader = fault.newRandomAccessFile(path);
    ASSERT_TRUE(reader.ok());
    Bytes out;
    ASSERT_TRUE(reader.value()->read(2, 4, out).isOk());
    EXPECT_EQ(out, "sync");
}

TEST(FaultEnvTest, UnsyncedCreateVanishesOnCrash)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/new.bin";

    auto file = fault.newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("data").isOk());
    // File data synced — but the directory entry never was.
    ASSERT_TRUE(file.value()->sync().isOk());

    fault.simulateCrash();
    fault.reactivate();
    EXPECT_FALSE(fault.fileExists(path));
}

TEST(FaultEnvTest, UnsyncedRenameRevertsAndRestoresDest)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string tmp = dir.path() + "/manifest.tmp";
    std::string manifest = dir.path() + "/manifest";
    writeDurable(fault, dir.path(), manifest, "old manifest");
    writeDurable(fault, dir.path(), tmp, "new manifest");

    ASSERT_TRUE(fault.renameFile(tmp, manifest).isOk());
    // No syncDir: the rename is still volatile at crash time.
    fault.simulateCrash();
    fault.reactivate();

    Bytes out;
    ASSERT_TRUE(fault.readFileToString(manifest, out).isOk());
    EXPECT_EQ(out, "old manifest");
    ASSERT_TRUE(fault.readFileToString(tmp, out).isOk());
    EXPECT_EQ(out, "new manifest");
}

TEST(FaultEnvTest, SyncedRenameSurvivesCrash)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string tmp = dir.path() + "/manifest.tmp";
    std::string manifest = dir.path() + "/manifest";
    writeDurable(fault, dir.path(), manifest, "old manifest");
    writeDurable(fault, dir.path(), tmp, "new manifest");

    ASSERT_TRUE(fault.renameFile(tmp, manifest).isOk());
    ASSERT_TRUE(fault.syncDir(dir.path()).isOk());
    fault.simulateCrash();
    fault.reactivate();

    Bytes out;
    ASSERT_TRUE(fault.readFileToString(manifest, out).isOk());
    EXPECT_EQ(out, "new manifest");
    EXPECT_FALSE(fault.fileExists(tmp));
}

TEST(FaultEnvTest, PreCrashHandlesDie)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/wal.log";
    auto file = fault.newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("x").isOk());

    fault.simulateCrash();
    fault.reactivate();

    // The old handle belongs to the dead process image.
    EXPECT_EQ(file.value()->append("y").code(), StatusCode::IOError);
    EXPECT_EQ(file.value()->sync().code(), StatusCode::IOError);
}

TEST(FaultEnvTest, InactiveBetweenCrashAndReactivate)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    EXPECT_TRUE(fault.isActive());
    fault.simulateCrash();
    EXPECT_FALSE(fault.isActive());
    EXPECT_FALSE(
        fault.newWritableFile(dir.path() + "/f.bin").ok());
    fault.reactivate();
    EXPECT_TRUE(fault.isActive());
    EXPECT_TRUE(fault.newWritableFile(dir.path() + "/f.bin").ok());
}

TEST(FaultEnvTest, WriteErrorInjection)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    auto file = fault.newWritableFile(dir.path() + "/f.bin");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("ok").isOk());

    fault.setWriteError(true);
    EXPECT_EQ(file.value()->append("fails").code(),
              StatusCode::IOError);
    fault.setWriteError(false);
    EXPECT_TRUE(file.value()->append("ok again").isOk());
}

TEST(FaultEnvTest, SyncErrorLeavesDataVolatile)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/f.bin";
    auto file = fault.newWritableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(fault.syncDir(dir.path()).isOk());
    ASSERT_TRUE(file.value()->append("payload").isOk());

    fault.setSyncError(true);
    EXPECT_EQ(file.value()->sync().code(), StatusCode::IOError);
    EXPECT_EQ(fault.syncDir(dir.path()).code(), StatusCode::IOError);

    // The failed sync must not have made the data durable.
    fault.crashKeepUnsyncedBytes(0);
    fault.simulateCrash();
    fault.reactivate();
    Bytes out;
    ASSERT_TRUE(fault.readFileToString(path, out).isOk());
    EXPECT_TRUE(out.empty());
}

TEST(FaultEnvTest, PermanentReadError)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/f.bin";
    ASSERT_TRUE(fault.writeStringToFile(path, "data", true).isOk());

    auto reader = fault.newRandomAccessFile(path);
    ASSERT_TRUE(reader.ok());
    Bytes out;
    ASSERT_TRUE(reader.value()->read(0, 4, out).isOk());

    fault.setPermanentReadError(true);
    EXPECT_EQ(reader.value()->read(0, 4, out).code(),
              StatusCode::IOError);
    fault.setPermanentReadError(false);
    EXPECT_TRUE(reader.value()->read(0, 4, out).isOk());
}

TEST(FaultEnvTest, TransientReadErrorOneInOneAlwaysFires)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/f.bin";
    ASSERT_TRUE(fault.writeStringToFile(path, "data", true).isOk());

    auto reader = fault.newRandomAccessFile(path);
    ASSERT_TRUE(reader.ok());
    fault.setReadErrorOneIn(1);
    Bytes out;
    EXPECT_EQ(reader.value()->read(0, 4, out).code(),
              StatusCode::IOError);
    fault.setReadErrorOneIn(0);
    EXPECT_TRUE(reader.value()->read(0, 4, out).isOk());
}

TEST(FaultEnvTest, AppendableReopenSeesDurableTruth)
{
    ScratchDir dir("fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 1);
    std::string path = dir.path() + "/wal.log";
    writeDurable(fault, dir.path(), path, "gen1|");

    fault.simulateCrash();
    fault.reactivate();

    // The post-reboot process appends where the durable bytes end.
    auto file = fault.newAppendableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->append("gen2").isOk());
    ASSERT_TRUE(file.value()->sync().isOk());
    Bytes out;
    ASSERT_TRUE(fault.readFileToString(path, out).isOk());
    EXPECT_EQ(out, "gen1|gen2");
}

} // namespace
} // namespace ethkv
