/**
 * @file
 * Tests for the ETHKV_DCHECK family (common/dcheck.hh).
 *
 * The test suite compiles with ETHKV_FORCE_DCHECK (see
 * tests/CMakeLists.txt), so checks are enabled here even though
 * the default build type defines NDEBUG.
 */

#include <gtest/gtest.h>

#include "common/dcheck.hh"

namespace
{

static_assert(ETHKV_DCHECK_ENABLED,
              "test suite must compile with DCHECKs enabled "
              "(ETHKV_FORCE_DCHECK)");

TEST(DCheck, PassingChecksAreSilent)
{
    ETHKV_DCHECK(true);
    ETHKV_DCHECK(2 + 2 == 4);
    ETHKV_DCHECK_EQ(7, 7);
    ETHKV_DCHECK_NE(1, 2);
    ETHKV_DCHECK_LT(1, 2);
    ETHKV_DCHECK_LE(2, 2);
    ETHKV_DCHECK_GT(3, 2);
    ETHKV_DCHECK_GE(3, 3);
}

TEST(DCheckDeathTest, FailingCheckPanicsWithExpression)
{
    EXPECT_DEATH(ETHKV_DCHECK(1 == 2),
                 "DCHECK failed: 1 == 2");
}

TEST(DCheckDeathTest, ComparisonFormPrintsBothOperands)
{
    int lhs = 41;
    int rhs = 42;
    EXPECT_DEATH(ETHKV_DCHECK_EQ(lhs, rhs),
                 "DCHECK failed: lhs == rhs.*\\(41 vs 42\\)");
}

TEST(DCheckDeathTest, StringOperandsAreRendered)
{
    std::string got = "abc";
    EXPECT_DEATH(ETHKV_DCHECK_EQ(got, std::string("xyz")),
                 "\\(abc vs xyz\\)");
}

// A type with an equality operator but no ostream inserter: the
// failure message falls back to "<?>" instead of refusing to
// compile.
struct Opaque
{
    int v;
    bool operator==(const Opaque &o) const { return v == o.v; }
};

TEST(DCheckDeathTest, NonStreamableOperandsFallBack)
{
    Opaque a{1};
    Opaque b{2};
    EXPECT_DEATH(ETHKV_DCHECK_EQ(a, b), "\\(<\\?> vs <\\?>\\)");
}

TEST(DCheck, OperandsEvaluateExactlyOnce)
{
    int evals = 0;
    auto bump = [&evals] { return ++evals; };
    ETHKV_DCHECK_EQ(bump(), 1);
    EXPECT_EQ(evals, 1);
    ETHKV_DCHECK(bump() == 2);
    EXPECT_EQ(evals, 2);
}

} // namespace
