/**
 * @file
 * Runtime lock-rank assertion (common/mutex.hh). These tests
 * compile with ETHKV_FORCE_DCHECK, so the rank stack is live even
 * though the default build defines NDEBUG; the static half of the
 * same defense (the lock-rank rule in tools/ethkv_analyze) is
 * covered by tests/tools/test_analyze.cc.
 */

#include "common/mutex.hh"

#include <gtest/gtest.h>

namespace ethkv
{
namespace
{

TEST(MutexRank, InOrderAcquireIsFine)
{
    Mutex low(10);
    Mutex high(20);
    low.lock();
    high.lock();
    high.unlock();
    low.unlock();
    // The held-rank stack unwound: low may be taken again.
    low.lock();
    low.unlock();
}

TEST(MutexRank, UnrankedMutexesAreNotChecked)
{
    Mutex ranked(20);
    Mutex plain;
    ranked.lock();
    plain.lock(); // rank 0: exempt even under a ranked lock
    plain.unlock();
    ranked.unlock();
}

TEST(MutexRank, TryLockParticipates)
{
    Mutex low(10);
    Mutex high(20);
    ASSERT_TRUE(low.tryLock());
    ASSERT_TRUE(high.tryLock());
    high.unlock();
    low.unlock();
}

TEST(MutexRankDeathTest, OutOfOrderAcquirePanics)
{
    Mutex low(10);
    Mutex high(20);
    high.lock();
    EXPECT_DEATH(low.lock(), "lock rank violation");
    high.unlock();
}

TEST(MutexRankDeathTest, EqualRankAcquirePanics)
{
    Mutex a(10);
    Mutex b(10);
    a.lock();
    EXPECT_DEATH(b.lock(), "lock rank violation");
    a.unlock();
}

} // namespace
} // namespace ethkv
