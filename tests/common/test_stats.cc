/**
 * @file
 * Tests for streaming statistics and formatting helpers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace ethkv
{
namespace
{

TEST(StreamingStatsTest, BasicMoments)
{
    StreamingStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StreamingStatsTest, EmptyIsZero)
{
    StreamingStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.ci95(), 0.0);
}

TEST(StreamingStatsTest, SingleSample)
{
    StreamingStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.ci95(), 0.0);
}

TEST(StreamingStatsTest, MergeEqualsSequential)
{
    StreamingStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        double x = i * 0.37;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeEmptyIntoPopulated)
{
    StreamingStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(StreamingStatsTest, MergePopulatedIntoEmpty)
{
    StreamingStats empty, b;
    b.add(-2.0);
    b.add(4.0);
    empty.merge(b);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
    EXPECT_DOUBLE_EQ(empty.min(), -2.0);
    EXPECT_DOUBLE_EQ(empty.max(), 4.0);
    // And merging does not alias: mutating the source afterwards
    // must not change the destination.
    b.add(1000.0);
    EXPECT_EQ(empty.count(), 2u);
}

TEST(StreamingStatsTest, MergeTwoEmpties)
{
    StreamingStats a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
}

TEST(StreamingStatsTest, MergeSingleSamples)
{
    // Both sides below the n>=2 variance threshold; the merged
    // accumulator must still produce the exact two-sample stats.
    StreamingStats a, b;
    a.add(10.0);
    b.add(20.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 15.0);
    EXPECT_NEAR(a.variance(), 50.0, 1e-12); // sample variance
    EXPECT_GT(a.ci95(), 0.0);
}

TEST(StreamingStatsTest, Ci95ShrinksWithSamples)
{
    StreamingStats small, large;
    for (int i = 0; i < 10; ++i)
        small.add(i % 3);
    for (int i = 0; i < 10000; ++i)
        large.add(i % 3);
    EXPECT_GT(small.ci95(), large.ci95());
}

TEST(ExactDistributionTest, CountsAndMoments)
{
    ExactDistribution d;
    d.add(10, 3);
    d.add(20);
    d.add(30, 6);
    EXPECT_EQ(d.totalCount(), 10u);
    EXPECT_EQ(d.distinctValues(), 3u);
    EXPECT_EQ(d.minValue(), 10u);
    EXPECT_EQ(d.maxValue(), 30u);
    EXPECT_EQ(d.countOf(20), 1u);
    EXPECT_EQ(d.countOf(99), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 23.0);
    EXPECT_EQ(d.modalValue(), 30u);
}

TEST(ExactDistributionTest, Percentiles)
{
    ExactDistribution d;
    for (uint64_t v = 1; v <= 100; ++v)
        d.add(v);
    EXPECT_EQ(d.percentile(0.0), 1u);
    EXPECT_EQ(d.percentile(0.5), 51u);
    EXPECT_EQ(d.percentile(1.0), 100u);
}

TEST(ExactDistributionTest, PercentileEdgeCases)
{
    ExactDistribution single;
    single.add(42);
    for (double p : {0.0, 0.25, 0.5, 0.999, 1.0})
        EXPECT_EQ(single.percentile(p), 42u) << "p=" << p;

    // Heavily skewed counts: 99 copies of 1, one copy of 100.
    ExactDistribution skew;
    skew.add(1, 99);
    skew.add(100);
    EXPECT_EQ(skew.percentile(0.5), 1u);
    EXPECT_EQ(skew.percentile(0.98), 1u);
    EXPECT_EQ(skew.percentile(1.0), 100u);

    // Weighted entries must count weight times, not once.
    ExactDistribution weighted;
    weighted.add(10, 1);
    weighted.add(20, 9);
    EXPECT_EQ(weighted.percentile(0.05), 10u);
    EXPECT_EQ(weighted.percentile(0.5), 20u);
}

TEST(ExactDistributionDeathTest, PercentileContractViolations)
{
    ExactDistribution empty;
    EXPECT_DEATH(empty.percentile(0.5), "empty");
    ExactDistribution d;
    d.add(1);
    EXPECT_DEATH(d.percentile(-0.1), "out of range");
    EXPECT_DEATH(d.percentile(1.1), "out of range");
}

TEST(ExactDistributionTest, MergePreservesTotals)
{
    ExactDistribution a, b;
    a.add(5, 2);
    b.add(5, 3);
    b.add(7);
    a.merge(b);
    EXPECT_EQ(a.totalCount(), 6u);
    EXPECT_EQ(a.countOf(5), 5u);
    EXPECT_EQ(a.countOf(7), 1u);
}

TEST(FormatTest, Millions)
{
    EXPECT_EQ(formatMillions(1656600000), "1656.6 M");
    EXPECT_EQ(formatMillions(550000), "0.55 M");
    EXPECT_EQ(formatMillions(386), "386");
}

TEST(FormatTest, Bytes)
{
    EXPECT_EQ(formatBytes(79.1), "79.1 B");
    EXPECT_EQ(formatBytes(6.61 * 1024), "6.61 KiB");
    EXPECT_EQ(formatBytes(7.98 * 1024 * 1024), "7.98 MiB");
}

TEST(FormatTest, Percent)
{
    EXPECT_EQ(formatPercent(0.992, 1), "99.2%");
    EXPECT_EQ(formatPercent(0.0487), "4.87%");
}

} // namespace
} // namespace ethkv
