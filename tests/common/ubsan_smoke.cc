/**
 * @file
 * UndefinedBehaviorSanitizer smoke binary, always built with
 * -fsanitize=undefined -fno-sanitize-recover=all (see
 * tests/CMakeLists.txt). It compiles the byte-twiddling hash cores
 * (keccak256, xxhash64) under UBSan and feeds them the inputs that
 * historically trip UB in hash code — empty input (null data
 * pointer), buffers of every small length, unaligned views into a
 * larger buffer, and block-boundary-straddling sizes — so any
 * misaligned load, shift-width, or null-pointer-arithmetic UB
 * fails `ctest` on every build.
 */

#include <cstdio>
#include <string>

#include "common/keccak.hh"
#include "common/xxhash.hh"

using namespace ethkv;

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "ubsan_smoke: FAILED: %s\n", what);
        ++failures;
    }
}

} // namespace

int
main()
{
    // Empty input: BytesView{} has a null data() pointer, the
    // classic source of nullptr-arithmetic / nonnull-memcpy UB.
    Digest256 empty_digest = keccak256(BytesView());
    // keccak256("") =
    // c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470
    // (the Ethereum empty-code-hash constant, see test_keccak.cc).
    check(empty_digest[0] == 0xc5 && empty_digest[31] == 0x70,
          "keccak256 empty-input vector");
    uint64_t empty_hash = xxhash64(BytesView(), 0);
    check(empty_hash == 0xef46db3751d8e999ULL,
          "xxhash64 empty-input vector");

    // Every length across the interesting seams: the 4/8-byte tail
    // switches in xxhash, the 32-byte stripe boundary, and the
    // 136-byte keccak rate boundary (one below, at, one above).
    std::string buf(2 * 136 + 17, '\0');
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<char>(i * 131 + 7);
    uint64_t accum = 0;
    for (size_t len = 0; len <= buf.size(); ++len) {
        Digest256 d = keccak256(BytesView(buf.data(), len));
        accum ^= xxhash64(BytesView(buf.data(), len), len);
        accum += d[0];
    }

    // Unaligned views: start at every offset within one stripe so
    // the multi-byte lane loads see all alignments.
    for (size_t off = 0; off < 32; ++off) {
        BytesView view(buf.data() + off, buf.size() - off);
        accum ^= xxhash64(view, off);
        accum += keccak256(view)[off % 32];
    }
    check(accum != 0, "hash accumulator nonzero");

    if (failures == 0)
        std::printf("ubsan_smoke: ok\n");
    return failures ? 1 : 0;
}
