/**
 * @file
 * Unit tests for byte utilities and varint encoding.
 */

#include <gtest/gtest.h>

#include "common/bytes.hh"
#include "common/rand.hh"
#include "common/varint.hh"

namespace ethkv
{
namespace
{

TEST(BytesTest, HexRoundTrip)
{
    Bytes data{'\x00', '\x01', '\xab', '\xff'};
    EXPECT_EQ(toHex(data), "0001abff");

    Bytes back;
    ASSERT_TRUE(fromHex("0001abff", back));
    EXPECT_EQ(back, data);
}

TEST(BytesTest, HexAcceptsPrefixAndMixedCase)
{
    Bytes out;
    ASSERT_TRUE(fromHex("0xDeadBeef", out));
    EXPECT_EQ(toHex(out), "deadbeef");
}

TEST(BytesTest, HexRejectsMalformed)
{
    Bytes out;
    EXPECT_FALSE(fromHex("abc", out));  // odd length
    EXPECT_FALSE(fromHex("zz", out));   // bad digit
}

TEST(BytesTest, EmptyHex)
{
    EXPECT_EQ(toHex(""), "");
    Bytes out = "sentinel";
    ASSERT_TRUE(fromHex("", out));
    EXPECT_TRUE(out.empty());
}

TEST(BytesTest, NibbleRoundTrip)
{
    Bytes data = mustFromHex("a1b2c3");
    Bytes nibbles = bytesToNibbles(data);
    ASSERT_EQ(nibbles.size(), 6u);
    EXPECT_EQ(nibbles[0], 0xa);
    EXPECT_EQ(nibbles[1], 0x1);
    EXPECT_EQ(nibbles[5], 0x3);
    EXPECT_EQ(nibblesToBytes(nibbles), data);
}

TEST(BytesTest, CommonPrefixLen)
{
    EXPECT_EQ(commonPrefixLen("abcde", "abxyz"), 2u);
    EXPECT_EQ(commonPrefixLen("", "abc"), 0u);
    EXPECT_EQ(commonPrefixLen("same", "same"), 4u);
    EXPECT_EQ(commonPrefixLen("abc", "abcdef"), 3u);
}

TEST(BytesTest, BigEndian64RoundTrip)
{
    for (uint64_t v : {0ull, 1ull, 255ull, 0x0102030405060708ull,
                       ~0ull}) {
        Bytes enc = encodeBE64(v);
        ASSERT_EQ(enc.size(), 8u);
        EXPECT_EQ(decodeBE64(enc), v);
    }
}

TEST(BytesTest, BigEndianOrderingMatchesNumericOrdering)
{
    // The schema relies on BE-encoded block numbers sorting
    // numerically as byte strings.
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t a = rng.next();
        uint64_t b = rng.next();
        EXPECT_EQ(a < b, encodeBE64(a) < encodeBE64(b));
    }
}

TEST(VarintTest, RoundTrip)
{
    for (uint64_t v :
         {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
          1ull << 32, ~0ull}) {
        Bytes buf;
        appendVarint(buf, v);
        size_t pos = 0;
        uint64_t out = 0;
        ASSERT_TRUE(readVarint(buf, pos, out));
        EXPECT_EQ(out, v);
        EXPECT_EQ(pos, buf.size());
    }
}

TEST(VarintTest, TruncatedFails)
{
    Bytes buf;
    appendVarint(buf, 1ull << 40);
    buf.pop_back();
    size_t pos = 0;
    uint64_t out;
    EXPECT_FALSE(readVarint(buf, pos, out));
}

TEST(VarintTest, SequentialDecode)
{
    Bytes buf;
    for (uint64_t v = 0; v < 400; v += 13)
        appendVarint(buf, v);
    size_t pos = 0;
    for (uint64_t v = 0; v < 400; v += 13) {
        uint64_t out;
        ASSERT_TRUE(readVarint(buf, pos, out));
        EXPECT_EQ(out, v);
    }
    EXPECT_EQ(pos, buf.size());
}

TEST(BytesTest, ShortHexTruncates)
{
    Bytes data(20, '\xaa');
    std::string s = shortHex(data, 4);
    EXPECT_EQ(s, "aaaaaaaa..");
    EXPECT_EQ(shortHex("ab", 4), toHex("ab"));
}

} // namespace
} // namespace ethkv
