/**
 * @file
 * Tests for the deterministic RNG and workload distributions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rand.hh"

namespace ethkv
{
namespace
{

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng rng(5);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NextBytesLengthAndDeterminism)
{
    Rng a(42), b(42);
    for (size_t len : {0u, 1u, 7u, 8u, 9u, 100u}) {
        Bytes x = a.nextBytes(len);
        Bytes y = b.nextBytes(len);
        EXPECT_EQ(x.size(), len);
        EXPECT_EQ(x, y);
    }
}

TEST(RngTest, ForkIndependence)
{
    Rng parent(1);
    Rng child = parent.fork();
    // Child stream differs from the parent's continuation.
    EXPECT_NE(child.next(), parent.next());
}

TEST(ZipfTest, StaysInDomain)
{
    Rng rng(21);
    ZipfGenerator zipf(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(ZipfTest, SkewFavorsLowRanks)
{
    Rng rng(22);
    ZipfGenerator zipf(10000, 1.0);
    std::vector<uint64_t> counts(10000, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    // Rank 0 should dominate and the top 10 should hold a large
    // share under s=1.
    EXPECT_GT(counts[0], counts[100]);
    uint64_t top10 = 0;
    for (int i = 0; i < 10; ++i)
        top10 += counts[i];
    EXPECT_GT(static_cast<double>(top10) / n, 0.2);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform)
{
    Rng rng(23);
    ZipfGenerator zipf(10, 0.0);
    std::vector<uint64_t> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (uint64_t c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
}

TEST(ZipfTest, SingleItemDomain)
{
    Rng rng(24);
    ZipfGenerator zipf(1, 1.2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

class ZipfSkewSweep : public ::testing::TestWithParam<double>
{};

TEST_P(ZipfSkewSweep, HeadShareGrowsWithSkew)
{
    // Property: the head's share under skew s is at least the share
    // under a uniform draw.
    Rng rng(25);
    ZipfGenerator zipf(1000, GetParam());
    const int n = 50000;
    int head = 0;
    for (int i = 0; i < n; ++i)
        head += (zipf.sample(rng) < 10);
    double share = static_cast<double>(head) / n;
    EXPECT_GE(share, 0.005); // uniform baseline is 1%
    if (GetParam() >= 0.8)
        EXPECT_GT(share, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.2, 0.5, 0.8, 0.99, 1.2));

TEST(DiscreteSamplerTest, MatchesWeights)
{
    Rng rng(31);
    DiscreteSampler sampler({1.0, 2.0, 7.0});
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled)
{
    Rng rng(32);
    DiscreteSampler sampler({0.0, 1.0, 0.0});
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(sampler.sample(rng), 1u);
}

} // namespace
} // namespace ethkv
