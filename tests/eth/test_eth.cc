/**
 * @file
 * Ethereum data-model tests: fixed-byte types, account encodings
 * (full and slim), transactions, receipts, logs blooms, headers,
 * bodies — all RLP round-trips plus hashing determinism.
 */

#include <gtest/gtest.h>

#include "common/rand.hh"
#include "eth/account.hh"
#include "eth/block.hh"

namespace ethkv::eth
{
namespace
{

TEST(TypesTest, FixedBytesBasics)
{
    Address a = Address::fromId(7);
    Address b = Address::fromId(7);
    Address c = Address::fromId(8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.toBytes().size(), 20u);
    EXPECT_EQ(a.hex().size(), 40u);
    EXPECT_FALSE(a.isZero());
    EXPECT_TRUE(Address().isZero());

    Address parsed = Address::fromBytes(a.toBytes());
    EXPECT_EQ(parsed, a);
}

TEST(TypesTest, WellKnownHashes)
{
    EXPECT_EQ(emptyCodeHash().hex(),
              "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7b"
              "fad8045d85a470");
    EXPECT_EQ(emptyTrieRoot().hex(),
              "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001"
              "622fb5e363b421");
}

TEST(TypesTest, ContractAddressDerivation)
{
    Address sender = Address::fromId(1);
    Address a1 = contractAddress(sender, 1);
    Address a2 = contractAddress(sender, 2);
    EXPECT_NE(a1, a2);
    EXPECT_EQ(a1, contractAddress(sender, 1));
    EXPECT_NE(a1, contractAddress(Address::fromId(2), 1));
}

TEST(AccountTest, EncodeDecodeRoundTrip)
{
    Account account;
    account.nonce = 42;
    account.balance = 1234567890;
    account.storage_root = hashOf("root");
    account.code_hash = hashOf("code");

    auto decoded = Account::decode(account.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), account);
}

TEST(AccountTest, FreshAccountUsesEmptySentinels)
{
    Account account;
    EXPECT_EQ(account.storage_root, emptyTrieRoot());
    EXPECT_EQ(account.code_hash, emptyCodeHash());
    EXPECT_FALSE(account.isContract());
    account.code_hash = hashOf("contract");
    EXPECT_TRUE(account.isContract());
}

TEST(AccountTest, SlimEncodingIsSmallerForEoa)
{
    Account eoa;
    eoa.nonce = 9;
    eoa.balance = 1000;
    Bytes full = eoa.encode();
    Bytes slim = encodeSlimAccount(eoa);
    // The slim form elides the two 32-byte empty sentinels
    // (Table I: 15.9 B vs 115.7 B averages).
    EXPECT_LT(slim.size(), full.size() - 50);

    auto decoded = decodeSlimAccount(slim);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), eoa);
}

TEST(AccountTest, SlimEncodingKeepsContractHashes)
{
    Account contract;
    contract.storage_root = hashOf("storage");
    contract.code_hash = hashOf("code");
    auto decoded = decodeSlimAccount(encodeSlimAccount(contract));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), contract);
}

TEST(AccountTest, DecodeRejectsMalformed)
{
    EXPECT_FALSE(Account::decode("junk").ok());
    EXPECT_FALSE(Account::decode(rlpEncodeUint(5)).ok());
    RlpItem three = RlpItem::list({RlpItem::uinteger(1),
                                   RlpItem::uinteger(2),
                                   RlpItem::uinteger(3)});
    EXPECT_FALSE(Account::decode(rlpEncode(three)).ok());
}

TEST(TransactionTest, RoundTripTransfer)
{
    Transaction tx;
    tx.nonce = 5;
    tx.gas_price = 100;
    tx.gas_limit = 21000;
    tx.to = Address::fromId(77);
    tx.value = 999;
    tx.data = "hello";
    tx.from = Address::fromId(3);

    auto decoded = Transaction::decode(tx.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), tx);
    EXPECT_FALSE(tx.isCreation());
}

TEST(TransactionTest, RoundTripCreation)
{
    Transaction tx;
    tx.to.reset();
    tx.data = Bytes(500, '\x60');
    tx.from = Address::fromId(9);
    EXPECT_TRUE(tx.isCreation());

    auto decoded = Transaction::decode(tx.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().isCreation());
    EXPECT_EQ(decoded.value(), tx);
}

TEST(TransactionTest, HashChangesWithContent)
{
    Transaction tx;
    tx.from = Address::fromId(1);
    tx.to = Address::fromId(2);
    Hash256 h1 = tx.hash();
    tx.value = 1;
    EXPECT_NE(tx.hash(), h1);
}

TEST(LogsBloomTest, AddAndQuery)
{
    LogsBloom bloom;
    bloom.add("topic-a");
    bloom.add("topic-b");
    EXPECT_TRUE(bloom.mayContain("topic-a"));
    EXPECT_TRUE(bloom.mayContain("topic-b"));
    int false_positives = 0;
    for (int i = 0; i < 1000; ++i) {
        false_positives += bloom.mayContain(
            "absent-" + std::to_string(i));
    }
    // 2 items in a 2048-bit bloom: essentially no false positives.
    EXPECT_LT(false_positives, 5);
}

TEST(LogsBloomTest, MergeAndSerialize)
{
    LogsBloom a, b;
    a.add("x");
    b.add("y");
    a.merge(b);
    EXPECT_TRUE(a.mayContain("x"));
    EXPECT_TRUE(a.mayContain("y"));

    LogsBloom restored = LogsBloom::fromBytes(a.toBytes());
    EXPECT_EQ(restored, a);
    EXPECT_EQ(a.toBytes().size(), LogsBloom::bloom_bytes);
}

TEST(LogsBloomTest, BitAccessorMatchesQueries)
{
    LogsBloom bloom;
    bloom.add("item");
    int set_bits = 0;
    for (size_t i = 0; i < 2048; ++i)
        set_bits += bloom.bit(i);
    EXPECT_GE(set_bits, 1);
    EXPECT_LE(set_bits, 3); // the yellow paper's 3 bits per item
}

TEST(ReceiptTest, RoundTripWithLogs)
{
    Receipt receipt;
    receipt.success = true;
    receipt.cumulative_gas = 123456;
    Log log;
    log.address = Address::fromId(5);
    log.topics = {hashOf("t1"), hashOf("t2")};
    log.data = Bytes(64, 'd');
    receipt.logs.push_back(log);
    receipt.buildBloom();

    auto decoded = Receipt::decode(receipt.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), receipt);
    EXPECT_TRUE(decoded.value().bloom.mayContain(
        log.address.view()));
}

TEST(BlockHeaderTest, RoundTripAndHash)
{
    BlockHeader header;
    header.parent_hash = hashOf("parent");
    header.coinbase = Address::fromId(7);
    header.state_root = hashOf("state");
    header.number = 20500000;
    header.gas_used = 12345678;
    header.timestamp = 1723248000;
    header.extra = "ethkv";
    header.logs_bloom.add("contract");

    Bytes encoded = header.encode();
    auto decoded = BlockHeader::decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), header);
    EXPECT_EQ(decoded.value().hash(), header.hash());

    header.number += 1;
    EXPECT_NE(header.hash(), decoded.value().hash());
}

TEST(BlockBodyTest, RoundTrip)
{
    BlockBody body;
    for (int i = 0; i < 20; ++i) {
        Transaction tx;
        tx.nonce = i;
        tx.from = Address::fromId(i);
        tx.to = Address::fromId(i + 1);
        tx.value = i * 100;
        body.transactions.push_back(tx);
    }
    auto decoded = BlockBody::decode(body.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), body);
}

TEST(BlockTest, ReceiptsEncodingAndListRoot)
{
    Block block;
    for (int i = 0; i < 5; ++i) {
        Receipt receipt;
        receipt.cumulative_gas = (i + 1) * 21000;
        block.receipts.push_back(receipt);
    }
    Bytes encoded = block.encodeReceipts();
    auto decoded = rlpDecode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().is_list);
    EXPECT_EQ(decoded.value().items.size(), 5u);

    // List roots: order-sensitive, deterministic.
    std::vector<Bytes> items = {"a", "b", "c"};
    Hash256 r1 = computeListRoot(items);
    EXPECT_EQ(r1, computeListRoot(items));
    std::swap(items[0], items[1]);
    EXPECT_NE(r1, computeListRoot(items));
    EXPECT_EQ(computeListRoot({}).toBytes(),
              emptyTrieRoot().toBytes());
}

} // namespace
} // namespace ethkv::eth
