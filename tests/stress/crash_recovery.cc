/**
 * @file
 * Crash-recovery stress harness.
 *
 * Drives each durable engine (LSM, log store, freezer) through
 * randomized workload / crash / reopen cycles and checks the
 * recovery contract after every reopen:
 *
 *  - no acked-synced write is lost (everything before the last
 *    successful sync point survives);
 *  - no write is partially applied: the recovered state equals the
 *    state after some PREFIX of the issued operations, never a
 *    subset or a reordering;
 *  - the engine's own checkInvariants() passes;
 *  - for the LSM engine, a Merkle Patricia Trie built over the
 *    recovered keys re-derives the same root as one built over the
 *    model state (state-root integrity across crashes).
 *
 * Crashes come from FaultInjectionEnv::simulateCrash(), which drops
 * unsynced bytes with a random torn tail per file; "--env posix"
 * runs the same workloads with clean close/reopen cycles instead
 * (recovery must then be exact). Deterministic for a fixed --seed.
 *
 * Usage:
 *   crash_recovery [--cycles N] [--seed S]
 *                  [--engine lsm|log|freezer|all]
 *                  [--env posix|fault|both]
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/fault_env.hh"
#include "common/rand.hh"
#include "client/freezer.hh"
#include "kvstore/log_store.hh"
#include "kvstore/lsm_store.hh"
#include "trie/trie.hh"
#include "../kvstore/test_util.hh"

namespace
{

using namespace ethkv;

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "crash_recovery: FAIL: %s\n", msg.c_str());
    std::exit(1);
}

void
check(bool ok, const std::string &msg)
{
    if (!ok)
        fail(msg);
}

void
checkStatus(const Status &s, const std::string &what)
{
    if (!s.isOk())
        fail(what + ": " + s.toString());
}

// ---------------------------------------------------------------
// Workload model: an op history plus prefix-state evaluation.
// ---------------------------------------------------------------

struct Op
{
    bool is_put;
    Bytes key;
    Bytes value;
};

using Model = std::map<Bytes, Bytes>;

/** State after applying ops[0, k) on top of base. */
Model
stateAfter(const Model &base, const std::vector<Op> &ops, size_t k)
{
    Model state = base;
    for (size_t i = 0; i < k; ++i) {
        if (ops[i].is_put)
            state[ops[i].key] = ops[i].value;
        else
            state.erase(ops[i].key);
    }
    return state;
}

/** Whether the store's live state equals candidate exactly. */
bool
matchesState(kv::KVStore &store, const Model &candidate)
{
    if (store.liveKeyCount() != candidate.size())
        return false;
    Bytes value;
    for (const auto &[key, want] : candidate) {
        if (!store.get(key, value).isOk() || value != want)
            return false;
    }
    return true;
}

/**
 * The core recovery invariant: the recovered state must equal the
 * state after ops[0, k) for some k with durable_mark <= k <=
 * ops.size(). Returns that state (the new model base).
 */
Model
findRecoveredPrefix(kv::KVStore &store, const Model &base,
                    const std::vector<Op> &ops, size_t durable_mark,
                    const std::string &what)
{
    // Walk down from the full history: clean closes recover
    // everything, so the common match is k == ops.size().
    for (size_t k = ops.size() + 1; k > durable_mark; --k) {
        Model candidate = stateAfter(base, ops, k - 1);
        if (matchesState(store, candidate))
            return candidate;
    }
    fail(what + ": recovered state matches no acked prefix "
                "(durable_mark=" +
         std::to_string(durable_mark) + ", ops=" +
         std::to_string(ops.size()) + ")");
}

/** Trie node storage over a plain map (as the trie tests use). */
class MapBackend : public trie::NodeBackend
{
  public:
    Status
    read(BytesView path, Bytes &encoding) override
    {
        auto it = nodes.find(Bytes(path));
        if (it == nodes.end())
            return Status::notFound();
        encoding = it->second;
        return Status::ok();
    }

    void
    write(kv::WriteBatch &batch, BytesView path,
          BytesView encoding) override
    {
        batch.put(path, encoding);
    }

    void
    remove(kv::WriteBatch &batch, BytesView path) override
    {
        batch.del(path);
    }

    std::map<Bytes, Bytes> nodes;
};

/** Root of a trie holding exactly `state`. */
eth::Hash256
trieRootOf(const Model &state, bool reverse_insertion)
{
    MapBackend backend;
    trie::MerklePatriciaTrie trie(backend);
    auto insert = [&](const Bytes &key, const Bytes &value) {
        // Trie values must be non-empty; tag defensively.
        checkStatus(trie.put(key, Bytes("v") + value),
                    "trie put during root derivation");
    };
    if (reverse_insertion) {
        for (auto it = state.rbegin(); it != state.rend(); ++it)
            insert(it->first, it->second);
    } else {
        for (const auto &[key, value] : state)
            insert(key, value);
    }
    kv::WriteBatch batch;
    return trie.commit(batch);
}

// ---------------------------------------------------------------
// Harness configuration
// ---------------------------------------------------------------

struct HarnessOptions
{
    uint64_t cycles = 100;
    uint64_t seed = 0xe7;
    std::string engine = "all"; // lsm | log | freezer | all
    std::string env = "both";   // posix | fault | both
};

struct CycleStats
{
    uint64_t cycles = 0;
    uint64_t ops = 0;
    uint64_t crashes = 0;
};

constexpr uint64_t key_space = 160;
constexpr size_t ops_per_cycle_max = 40;

Bytes
workloadValue(Rng &rng)
{
    return rng.nextBytes(8 + rng.nextBounded(24));
}

// ---------------------------------------------------------------
// KV engines (LSM, log store): shared cycle loop
// ---------------------------------------------------------------

/**
 * Run crash/reopen cycles against a KVStore-family engine.
 *
 * Each cycle reopens the store with per-op fdatasync either on or
 * off (coin flip): synced cycles assert zero acked-write loss,
 * buffered cycles let the crash tear the log tail so recovery has
 * to find the intact prefix.
 *
 * @param opener  (Env*, sync_every_op) -> opened store; nullptr
 *        env = PosixEnv.
 * @param fault  The crash source, or nullptr for clean closes.
 */
template <typename Opener>
CycleStats
runKvCycles(const std::string &what, const Opener &opener,
            FaultInjectionEnv *fault, uint64_t cycles,
            uint64_t seed, bool derive_trie_root)
{
    Rng rng(seed);
    Model base;
    std::vector<Op> ops;
    size_t durable_mark = 0;
    bool sync_every_op = true;
    CycleStats stats;

    for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
        sync_every_op = rng.nextBounded(2) == 0;
        std::unique_ptr<kv::KVStore> store =
            opener(fault ? static_cast<Env *>(fault) : nullptr,
                   sync_every_op);

        // -- Verify recovery of the previous cycle's history.
        base = findRecoveredPrefix(*store, base, ops, durable_mark,
                                   what + " cycle " +
                                       std::to_string(cycle));
        if (derive_trie_root) {
            // The state root must be a pure function of the
            // recovered key set, independent of build order.
            check(trieRootOf(base, false) == trieRootOf(base, true),
                  what + ": trie root not re-derivable from the "
                         "recovered state");
        }
        ops.clear();
        durable_mark = 0;

        // -- Random workload burst.
        size_t burst = 1 + rng.nextBounded(ops_per_cycle_max);
        for (size_t i = 0; i < burst; ++i) {
            Op op;
            op.is_put = rng.nextBounded(100) < 75;
            op.key = testutil::makeKey(rng.nextBounded(key_space));
            Status s;
            if (op.is_put) {
                op.value = workloadValue(rng);
                s = store->put(op.key, op.value);
            } else {
                s = store->del(op.key);
            }
            checkStatus(s, what + " workload op");
            ops.push_back(std::move(op));
            ++stats.ops;
            if (sync_every_op)
                durable_mark = ops.size();
            // Occasional explicit sync point.
            if (rng.nextBounded(10) == 0) {
                checkStatus(store->flush(), what + " flush");
                durable_mark = ops.size();
            }
        }

        // -- Crash (fault env) or clean close (posix).
        if (fault) {
            // Crash BEFORE destroying the store: destructors are
            // clean-shutdown code (the LSM dtor syncs its WAL) and
            // a real power loss never runs them. Post-crash the
            // dtor's best-effort syncs hit dead handles, which is
            // exactly the kill -9 model.
            fault->simulateCrash();
            store.reset();
            fault->reactivate();
            ++stats.crashes;
        } else {
            // A clean close loses nothing: everything appended
            // reached the OS, and no crash follows.
            store.reset();
            durable_mark = ops.size();
        }
        ++stats.cycles;
    }

    // Final reopen: the last cycle's writes must recover too.
    std::unique_ptr<kv::KVStore> store =
        opener(fault ? static_cast<Env *>(fault) : nullptr,
               sync_every_op);
    findRecoveredPrefix(*store, base, ops, durable_mark,
                        what + " final reopen");
    return stats;
}

CycleStats
runLsm(const std::string &dir, FaultInjectionEnv *fault,
       uint64_t cycles, uint64_t seed)
{
    auto opener = [&](Env *env, bool sync_every_op)
        -> std::unique_ptr<kv::KVStore> {
        kv::LSMOptions options;
        options.dir = dir;
        options.env = env;
        options.sync_wal = sync_every_op;
        // Small memtable so cycles exercise flush + compaction.
        options.memtable_bytes = 16u << 10;
        options.l0_compaction_trigger = 2;
        auto store = kv::LSMStore::open(options);
        if (!store.ok())
            fail("lsm open: " + store.status().toString());
        checkStatus(store.value()->checkInvariants(),
                    "lsm invariants after open");
        return store.take();
    };
    return runKvCycles("lsm", opener, fault, cycles, seed,
                       /*derive_trie_root=*/true);
}

CycleStats
runLog(const std::string &dir, FaultInjectionEnv *fault,
       uint64_t cycles, uint64_t seed)
{
    auto opener = [&](Env *env, bool sync_every_op)
        -> std::unique_ptr<kv::KVStore> {
        kv::LogStoreOptions options;
        options.dir = dir;
        options.env = env;
        options.sync_appends = sync_every_op;
        options.segment_bytes = 8u << 10;
        auto store = kv::AppendLogStore::open(options);
        if (!store.ok())
            fail("log open: " + store.status().toString());
        return store.take();
    };
    return runKvCycles("log", opener, fault, cycles, seed,
                       /*derive_trie_root=*/false);
}

// ---------------------------------------------------------------
// Freezer cycles
// ---------------------------------------------------------------

Bytes
freezerPayload(const char *tag, uint64_t n)
{
    Rng rng(n * 0x9e3779b97f4a7c15ull + tag[0]);
    return Bytes(tag) + rng.nextBytes(8 + rng.nextBounded(40));
}

CycleStats
runFreezer(const std::string &dir, FaultInjectionEnv *fault,
           uint64_t cycles, uint64_t seed)
{
    Rng rng(seed);
    uint64_t durable_count = 0;
    uint64_t appended_count = 0;
    CycleStats stats;

    for (uint64_t cycle = 0; cycle <= cycles; ++cycle) {
        auto freezer = client::Freezer::open(
            dir, fault ? static_cast<Env *>(fault) : nullptr);
        if (!freezer.ok())
            fail("freezer open: " + freezer.status().toString());

        // -- Verify recovery: synced blocks all present, nothing
        //    past what was appended, every surviving item intact.
        uint64_t frozen = freezer.value()->frozenCount();
        check(frozen >= durable_count,
              "freezer lost synced blocks: frozen=" +
                  std::to_string(frozen) + " < durable=" +
                  std::to_string(durable_count));
        check(frozen <= appended_count,
              "freezer invented blocks: frozen=" +
                  std::to_string(frozen) + " > appended=" +
                  std::to_string(appended_count));
        checkStatus(freezer.value()->checkInvariants(),
                    "freezer invariants after open");
        for (uint64_t n = frozen > 8 ? frozen - 8 : 0; n < frozen;
             ++n) {
            Bytes out;
            checkStatus(freezer.value()->read(
                            client::FreezerTable::Bodies, n, out),
                        "freezer read block " + std::to_string(n));
            check(out == freezerPayload("body", n),
                  "freezer block " + std::to_string(n) +
                      " corrupted");
        }
        // Blocks past the torn boundary are gone; re-freeze from
        // the recovered boundary (idempotent repair path).
        appended_count = frozen;
        if (cycle == cycles)
            break;

        // -- Append a burst, syncing at a random point.
        uint64_t burst = 1 + rng.nextBounded(12);
        for (uint64_t i = 0; i < burst; ++i) {
            uint64_t n = appended_count;
            checkStatus(
                freezer.value()->append(
                    n, freezerPayload("hash", n),
                    freezerPayload("hdr", n),
                    freezerPayload("body", n),
                    freezerPayload("rcpt", n)),
                "freezer append " + std::to_string(n));
            ++appended_count;
            ++stats.ops;
            if (rng.nextBounded(4) == 0) {
                checkStatus(freezer.value()->sync(),
                            "freezer sync");
                durable_count = appended_count;
            }
        }

        if (fault) {
            // Crash with the handle live, as a real power loss
            // would (see runKvCycles).
            fault->simulateCrash();
            freezer.value().reset();
            fault->reactivate();
            ++stats.crashes;
        } else {
            freezer.value().reset();
            durable_count = appended_count;
        }
        ++stats.cycles;
    }
    return stats;
}

// ---------------------------------------------------------------
// Driver
// ---------------------------------------------------------------

CycleStats
runEngine(const std::string &engine, const std::string &env_mode,
          uint64_t cycles, uint64_t seed)
{
    testutil::ScratchDir dir("crash_" + engine + "_" + env_mode);
    std::unique_ptr<FaultInjectionEnv> fault;
    if (env_mode == "fault") {
        fault = std::make_unique<FaultInjectionEnv>(
            Env::defaultEnv(), seed);
    }
    CycleStats stats;
    if (engine == "lsm")
        stats = runLsm(dir.path(), fault.get(), cycles, seed);
    else if (engine == "log")
        stats = runLog(dir.path(), fault.get(), cycles, seed);
    else if (engine == "freezer")
        stats = runFreezer(dir.path(), fault.get(), cycles, seed);
    else
        fail("unknown engine: " + engine);
    std::string dropped;
    if (fault) {
        dropped = ", " + std::to_string(fault->droppedBytes()) +
                  " bytes dropped";
    }
    std::printf("crash_recovery: %-7s %-5s ok  "
                "(%" PRIu64 " cycles, %" PRIu64 " ops, %" PRIu64
                " crashes%s)\n",
                engine.c_str(), env_mode.c_str(), stats.cycles,
                stats.ops, stats.crashes, dropped.c_str());
    return stats;
}

uint64_t
parseUint(const char *arg, const char *flag)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0')
        fail(std::string("bad value for ") + flag);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    HarnessOptions options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fail("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--cycles")
            options.cycles = parseUint(next(), "--cycles");
        else if (arg == "--seed")
            options.seed = parseUint(next(), "--seed");
        else if (arg == "--engine")
            options.engine = next();
        else if (arg == "--env")
            options.env = next();
        else
            fail("unknown flag: " + arg);
    }

    std::vector<std::string> engines;
    if (options.engine == "all")
        engines = {"lsm", "log", "freezer"};
    else
        engines = {options.engine};
    std::vector<std::string> envs;
    if (options.env == "both")
        envs = {"posix", "fault"};
    else
        envs = {options.env};

    for (const std::string &engine : engines) {
        for (const std::string &env_mode : envs) {
            runEngine(engine, env_mode, options.cycles,
                      options.seed);
        }
    }
    std::printf("crash_recovery: PASS\n");
    return 0;
}
