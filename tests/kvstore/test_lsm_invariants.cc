/**
 * @file
 * LSMStore::checkInvariants() tests: a healthy store passes at
 * every lifecycle stage, and each on-disk MANIFEST corruption we
 * inject (phantom table, missing file, seq from the future,
 * deleted manifest) is detected as Corruption.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "kvstore/lsm_store.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

LSMOptions
tinyOptions(const std::string &dir)
{
    LSMOptions opts;
    opts.dir = dir;
    opts.memtable_bytes = 8 << 10;
    opts.l0_compaction_trigger = 2;
    opts.level_base_bytes = 32 << 10;
    opts.target_file_bytes = 8 << 10;
    return opts;
}

/** Populate enough churn to create sstables on several levels. */
void
fill(LSMStore &store, uint64_t keys = 1200)
{
    for (uint64_t i = 0; i < keys; ++i)
        ASSERT_TRUE(
            store.put(makeKey(i), makeValue(i)).isOk());
}

TEST(LsmInvariantsTest, HealthyStorePassesAtEveryStage)
{
    ScratchDir dir("lsm_inv");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    // Empty store.
    EXPECT_TRUE(store.value()->checkInvariants().isOk());

    // After memtable churn and automatic flushes.
    fill(*store.value());
    EXPECT_TRUE(store.value()->checkInvariants().isOk());

    // After full compaction and after deletes.
    ASSERT_TRUE(store.value()->compactAll().isOk());
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
    for (uint64_t i = 0; i < 1200; i += 3)
        ASSERT_TRUE(store.value()->del(makeKey(i)).isOk());
    ASSERT_TRUE(store.value()->flush().isOk());
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
}

TEST(LsmInvariantsTest, HealthyStorePassesAfterReopen)
{
    ScratchDir dir("lsm_inv");
    {
        auto store = LSMStore::open(tinyOptions(dir.path()));
        ASSERT_TRUE(store.ok());
        fill(*store.value());
    }
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
}

TEST(LsmInvariantsTest, DetectsPhantomManifestEntry)
{
    ScratchDir dir("lsm_inv");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    fill(*store.value());
    ASSERT_TRUE(store.value()->flush().isOk());
    ASSERT_TRUE(store.value()->checkInvariants().isOk());

    // Claim a table the store never wrote.
    {
        std::ofstream mf(dir.path() + "/MANIFEST",
                         std::ios::app);
        mf << "file 1 9999\n";
    }
    Status s = store.value()->checkInvariants();
    EXPECT_FALSE(s.isOk());
    EXPECT_NE(s.toString().find("MANIFEST"), std::string::npos);
}

TEST(LsmInvariantsTest, DetectsManifestSeqFromTheFuture)
{
    ScratchDir dir("lsm_inv");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    fill(*store.value());
    ASSERT_TRUE(store.value()->flush().isOk());

    // A later `seq` line overrides the real one with a sequence
    // number the store has never issued.
    {
        std::ofstream mf(dir.path() + "/MANIFEST",
                         std::ios::app);
        mf << "seq 99999999999\n";
    }
    Status s = store.value()->checkInvariants();
    EXPECT_FALSE(s.isOk());
}

TEST(LsmInvariantsTest, DetectsDeletedManifest)
{
    ScratchDir dir("lsm_inv");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    fill(*store.value());
    ASSERT_TRUE(store.value()->flush().isOk());

    std::filesystem::remove(dir.path() + "/MANIFEST");
    Status s = store.value()->checkInvariants();
    EXPECT_FALSE(s.isOk());
    EXPECT_NE(s.toString().find("MANIFEST missing"),
              std::string::npos);
}

} // namespace
} // namespace ethkv::kv
