/**
 * @file
 * Shared helpers for kvstore tests: scratch directories and random
 * key/value generators.
 */

#ifndef ETHKV_TESTS_KVSTORE_TEST_UTIL_HH
#define ETHKV_TESTS_KVSTORE_TEST_UTIL_HH

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/bytes.hh"
#include "common/rand.hh"

namespace ethkv::testutil
{

/** RAII scratch directory deleted on destruction. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
    {
        static int counter = 0;
        path_ = (std::filesystem::temp_directory_path() /
                 ("ethkv_test_" + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        std::filesystem::create_directories(path_);
    }

    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Deterministic printable key: "key-000042-<salt>". */
inline Bytes
makeKey(uint64_t i, const std::string &salt = "")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "key-%08llu-%s",
                  static_cast<unsigned long long>(i), salt.c_str());
    return buf;
}

/** Deterministic value derived from the key index. */
inline Bytes
makeValue(uint64_t i, size_t len = 24)
{
    Rng rng(i * 2654435761u + 1);
    return rng.nextBytes(len);
}

} // namespace ethkv::testutil

#endif // ETHKV_TESTS_KVSTORE_TEST_UTIL_HH
