/**
 * @file
 * Degraded-mode and quarantine tests for the durable engines.
 *
 * A persistent write-path I/O failure must flip an engine into
 * read-only service (Status::ioDegraded on mutations, reads still
 * answered) instead of crashing or silently dropping writes; a torn
 * log tail found during recovery must be salvaged into quarantine/,
 * never deleted.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/env.hh"
#include "common/fault_env.hh"
#include "kvstore/log_store.hh"
#include "kvstore/lsm_store.hh"
#include "obs/metrics.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

uint64_t
degradedTransitions()
{
    return obs::MetricsRegistry::global()
        .counter("kv.degraded_transitions")
        .value();
}

TEST(LsmDegradedTest, SyncFailureFlipsToReadOnly)
{
    ScratchDir dir("lsm_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 7);
    LSMOptions options;
    options.dir = dir.path();
    options.sync_wal = true;
    options.env = &fault;
    auto store = LSMStore::open(options);
    ASSERT_TRUE(store.ok());

    ASSERT_TRUE(
        store.value()->put(makeKey(1), makeValue(1)).isOk());
    ASSERT_TRUE(store.value()->flush().isOk()); // key 1 -> SSTable
    ASSERT_TRUE(
        store.value()->put(makeKey(2), makeValue(2)).isOk());
    EXPECT_FALSE(store.value()->isDegraded());

    uint64_t transitions_before = degradedTransitions();
    fault.setSyncError(true);

    // The failing write surfaces the root cause ...
    Status s = store.value()->put(makeKey(3), makeValue(3));
    EXPECT_EQ(s.code(), StatusCode::IOError);
    EXPECT_TRUE(store.value()->isDegraded());
    EXPECT_FALSE(store.value()->degradedReason().empty());
    EXPECT_EQ(degradedTransitions(), transitions_before + 1);

    // ... and every later mutation reports the degraded state.
    EXPECT_TRUE(store.value()
                    ->put(makeKey(4), makeValue(4))
                    .isIODegraded());
    EXPECT_TRUE(store.value()->del(makeKey(1)).isIODegraded());
    EXPECT_TRUE(store.value()->flush().isIODegraded());
    EXPECT_TRUE(store.value()->compactAll().isIODegraded());
    // Degrading exactly once: the counter does not climb again.
    EXPECT_EQ(degradedTransitions(), transitions_before + 1);

    // Reads keep working, from SSTable and memtable alike.
    Bytes value;
    ASSERT_TRUE(store.value()->get(makeKey(1), value).isOk());
    EXPECT_EQ(value, makeValue(1));
    ASSERT_TRUE(store.value()->get(makeKey(2), value).isOk());
    EXPECT_EQ(value, makeValue(2));
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
}

TEST(LsmDegradedTest, WriteFailureFlipsToReadOnly)
{
    ScratchDir dir("lsm_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 7);
    LSMOptions options;
    options.dir = dir.path();
    options.env = &fault;
    auto store = LSMStore::open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store.value()->put(makeKey(1), makeValue(1)).isOk());

    fault.setWriteError(true);
    EXPECT_EQ(store.value()->put(makeKey(2), makeValue(2)).code(),
              StatusCode::IOError);
    EXPECT_TRUE(store.value()->isDegraded());

    // Clearing the fault does not resurrect the store: degraded
    // mode is sticky until a clean reopen.
    fault.setWriteError(false);
    EXPECT_TRUE(store.value()
                    ->put(makeKey(2), makeValue(2))
                    .isIODegraded());
}

TEST(LsmDegradedTest, TornWalTailQuarantinedOnReopen)
{
    ScratchDir dir("lsm_degraded");
    Env *env = Env::defaultEnv();
    LSMOptions options;
    options.dir = dir.path();
    {
        auto store = LSMStore::open(options);
        ASSERT_TRUE(store.ok());
        for (uint64_t i = 0; i < 20; ++i) {
            ASSERT_TRUE(store.value()
                            ->put(makeKey(i), makeValue(i))
                            .isOk());
        }
    }

    // A crash mid-append leaves a torn record at the WAL tail.
    std::string wal = dir.path() + "/wal.log";
    auto valid = env->fileSize(wal);
    ASSERT_TRUE(valid.ok());
    Bytes torn = "\xff\xff\xff\xff" "byte-soup-from-a-torn-append";
    {
        auto file = env->newAppendableFile(wal);
        ASSERT_TRUE(file.ok());
        ASSERT_TRUE(file.value()->append(torn).isOk());
        ASSERT_TRUE(file.value()->close().isOk());
    }

    auto store = LSMStore::open(options);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value()->quarantinedBytes(), torn.size());

    // The tail went to quarantine/ byte for byte; nothing deleted.
    std::string tail_path = dir.path() + "/quarantine/wal.log." +
                            std::to_string(valid.value()) + ".tail";
    Bytes salvaged;
    ASSERT_TRUE(env->readFileToString(tail_path, salvaged).isOk());
    EXPECT_EQ(salvaged, torn);

    // Every acked write survived the torn tail.
    Bytes value;
    for (uint64_t i = 0; i < 20; ++i) {
        ASSERT_TRUE(store.value()->get(makeKey(i), value).isOk());
        EXPECT_EQ(value, makeValue(i));
    }
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
}

TEST(LogStoreDegradedTest, SyncFailureFlipsToReadOnly)
{
    ScratchDir dir("log_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 7);
    LogStoreOptions options;
    options.dir = dir.path();
    options.sync_appends = true;
    options.env = &fault;
    auto store = AppendLogStore::open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store.value()->put(makeKey(1), makeValue(1)).isOk());

    uint64_t transitions_before = degradedTransitions();
    fault.setSyncError(true);
    EXPECT_EQ(store.value()->put(makeKey(2), makeValue(2)).code(),
              StatusCode::IOError);
    EXPECT_TRUE(store.value()->isDegraded());
    EXPECT_FALSE(store.value()->degradedReason().empty());
    EXPECT_EQ(degradedTransitions(), transitions_before + 1);

    EXPECT_TRUE(store.value()
                    ->put(makeKey(3), makeValue(3))
                    .isIODegraded());
    EXPECT_TRUE(store.value()->del(makeKey(1)).isIODegraded());

    // Reads and the failed write's absence are both observable.
    Bytes value;
    ASSERT_TRUE(store.value()->get(makeKey(1), value).isOk());
    EXPECT_EQ(value, makeValue(1));
    EXPECT_TRUE(
        store.value()->get(makeKey(2), value).isNotFound());
}

TEST(LogStoreDegradedTest, DurableRoundTripAcrossReopen)
{
    ScratchDir dir("log_durable");
    LogStoreOptions options;
    options.dir = dir.path();
    {
        auto store = AppendLogStore::open(options);
        ASSERT_TRUE(store.ok());
        for (uint64_t i = 0; i < 30; ++i) {
            ASSERT_TRUE(store.value()
                            ->put(makeKey(i), makeValue(i))
                            .isOk());
        }
        // Overwrites and deletes must replay in order too.
        ASSERT_TRUE(
            store.value()->put(makeKey(3), makeValue(333)).isOk());
        ASSERT_TRUE(store.value()->del(makeKey(7)).isOk());
        ASSERT_TRUE(store.value()->flush().isOk());
    }

    auto store = AppendLogStore::open(options);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value()->liveKeyCount(), 29u);
    Bytes value;
    ASSERT_TRUE(store.value()->get(makeKey(3), value).isOk());
    EXPECT_EQ(value, makeValue(333));
    EXPECT_TRUE(store.value()->get(makeKey(7), value).isNotFound());
    ASSERT_TRUE(store.value()->get(makeKey(19), value).isOk());
    EXPECT_EQ(value, makeValue(19));
}

TEST(LogStoreDegradedTest, TornLogTailQuarantinedOnReopen)
{
    ScratchDir dir("log_degraded");
    Env *env = Env::defaultEnv();
    LogStoreOptions options;
    options.dir = dir.path();
    {
        auto store = AppendLogStore::open(options);
        ASSERT_TRUE(store.ok());
        for (uint64_t i = 0; i < 10; ++i) {
            ASSERT_TRUE(store.value()
                            ->put(makeKey(i), makeValue(i))
                            .isOk());
        }
        ASSERT_TRUE(store.value()->flush().isOk());
    }

    std::string log = dir.path() + "/log.wal";
    Bytes torn = "torn!";
    {
        auto file = env->newAppendableFile(log);
        ASSERT_TRUE(file.ok());
        ASSERT_TRUE(file.value()->append(torn).isOk());
        ASSERT_TRUE(file.value()->close().isOk());
    }

    auto store = AppendLogStore::open(options);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value()->quarantinedBytes(), torn.size());
    EXPECT_EQ(store.value()->liveKeyCount(), 10u);
    Bytes value;
    ASSERT_TRUE(store.value()->get(makeKey(9), value).isOk());
    EXPECT_EQ(value, makeValue(9));
}

TEST(LsmDegradedTest, BackgroundFlushFailureSurfacesSticky)
{
    // A failure on the background maintenance thread (here: the
    // freshly written L0 table cannot be read back) must degrade
    // the store so the foreground path reports IODegraded instead
    // of stalling forever behind an immutable queue that can never
    // drain.
    ScratchDir dir("lsm_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 7);
    LSMOptions options;
    options.dir = dir.path();
    options.env = &fault;
    options.memtable_bytes = 1024; // Seal quickly.
    auto store = LSMStore::open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        store.value()->put(makeKey(0), makeValue(0)).isOk());

    uint64_t bg_before = obs::MetricsRegistry::global()
                             .counter("kv.bg_errors")
                             .value();
    fault.setPermanentReadError(true);
    for (uint64_t i = 1; i < 100; ++i) {
        Status s = store.value()->put(makeKey(i), makeValue(i));
        if (s.isIODegraded())
            break; // The background failure already surfaced.
        ASSERT_TRUE(s.isOk()) << s.toString();
    }
    // The barrier cannot outrun the failure: the queue only drains
    // through the failing background flush.
    EXPECT_TRUE(store.value()->flush().isIODegraded());
    EXPECT_TRUE(store.value()->isDegraded());
    EXPECT_GT(obs::MetricsRegistry::global()
                  .counter("kv.bg_errors")
                  .value(),
              bg_before);

    // Sticky: clearing the fault does not resurrect the store ...
    fault.setPermanentReadError(false);
    EXPECT_TRUE(store.value()
                    ->put(makeKey(200), makeValue(200))
                    .isIODegraded());
    // ... and in-memory reads (memtable + sealed memtables) still
    // answer.
    Bytes value;
    ASSERT_TRUE(store.value()->get(makeKey(0), value).isOk());
    EXPECT_EQ(value, makeValue(0));
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
}

TEST(LsmDegradedTest, FailedCompactionClearsInProgressGuard)
{
    // in_compaction_ is owned by an RAII scope: an error return out
    // of a compaction must clear it, or maintenance is silently
    // disabled forever. (Tests run with ETHKV_FORCE_DCHECK, so a
    // leaked flag would also trip the scope's DCHECK on the next
    // compaction attempt.)
    ScratchDir dir("lsm_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 7);
    LSMOptions options;
    options.dir = dir.path();
    options.env = &fault;
    options.l0_compaction_trigger = 4; // Stay below it.
    auto store = LSMStore::open(options);
    ASSERT_TRUE(store.ok());

    // Two quiesced L0 tables; under the trigger, so nothing
    // compacts in the background.
    for (uint64_t i = 0; i < 20; ++i)
        ASSERT_TRUE(
            store.value()->put(makeKey(i), makeValue(i)).isOk());
    ASSERT_TRUE(store.value()->flush().isOk());
    for (uint64_t i = 20; i < 40; ++i)
        ASSERT_TRUE(
            store.value()->put(makeKey(i), makeValue(i)).isOk());
    ASSERT_TRUE(store.value()->flush().isOk());

    fault.setWriteError(true);
    Status s = store.value()->compactAll();
    EXPECT_EQ(s.code(), StatusCode::IOError) << s.toString();
    EXPECT_FALSE(store.value()->compactionInProgressForTest());
    EXPECT_TRUE(store.value()->isDegraded());

    fault.setWriteError(false);
    EXPECT_TRUE(store.value()->compactAll().isIODegraded());
    EXPECT_FALSE(store.value()->compactionInProgressForTest());
    // Reads survive the failed compaction untouched.
    Bytes value;
    for (uint64_t i = 0; i < 40; ++i) {
        ASSERT_TRUE(store.value()->get(makeKey(i), value).isOk());
        EXPECT_EQ(value, makeValue(i));
    }
}

TEST(LogStoreDegradedTest, InMemoryModeNeverDegrades)
{
    // No dir: the store takes no I/O at all, so injected faults
    // cannot reach it (back-compat for the pure simulator path).
    AppendLogStore store;
    for (uint64_t i = 0; i < 100; ++i) {
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());
    }
    EXPECT_FALSE(store.isDegraded());
    EXPECT_EQ(store.quarantinedBytes(), 0u);
}

} // namespace
} // namespace ethkv::kv
