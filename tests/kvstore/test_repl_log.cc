/**
 * @file
 * ReplicationLog edge-case tests (DESIGN.md §13).
 *
 * The shipping log's contract is byte-exact: every offset below
 * endOffset() decodes, read() returns whole records rounded down
 * to the budget, and recovery quarantines torn tails instead of
 * shipping them. These tests drive rotation boundaries, reads that
 * straddle a rotation mid-stream, replay-from-offset at EVERY
 * record boundary, misaligned offsets, torn tails in the last and
 * in sealed segments, and fault-injected crashes and read errors.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/env.hh"
#include "common/fault_env.hh"
#include "kvstore/repl_log.hh"
#include "kvstore/wal.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

/** The i-th test batch: two puts, payload ~i-dependent. */
WriteBatch
testBatch(uint64_t i)
{
    WriteBatch batch;
    batch.put(makeKey(i * 2), makeValue(i * 2, 40));
    batch.put(makeKey(i * 2 + 1), makeValue(i * 2 + 1, 40));
    return batch;
}

/** Framed bytes of testBatch(i), as the log stores them. */
Bytes
testRecord(uint64_t i)
{
    Bytes out;
    appendWalRecord(out, testBatch(i), i * 2 + 1);
    return out;
}

ReplLogOptions
smallSegments(const std::string &dir, Env *env = nullptr)
{
    ReplLogOptions options;
    options.dir = dir;
    options.segment_bytes = 256; // a few records per segment
    options.env = env;
    return options;
}

/** Decode every record in `data`; EXPECT the prefix 0..count. */
void
expectRecords(BytesView data, uint64_t first, uint64_t count)
{
    size_t pos = 0;
    for (uint64_t i = first; i < first + count; ++i) {
        WriteBatch batch;
        uint64_t seq = 0;
        ASSERT_TRUE(decodeWalRecord(data, pos, batch, seq).isOk());
        EXPECT_EQ(seq, i * 2 + 1);
        ASSERT_EQ(batch.size(), 2u);
        EXPECT_EQ(batch.entries()[0].key, makeKey(i * 2));
    }
    EXPECT_EQ(pos, data.size());
}

TEST(ReplLog, AppendReadRoundTripAcrossRotation)
{
    ScratchDir dir("repl_roundtrip");
    auto log = ReplicationLog::open(smallSegments(dir.path()));
    ASSERT_TRUE(log.ok());

    std::vector<uint64_t> boundaries{0};
    for (uint64_t i = 0; i < 20; ++i) {
        uint64_t end = 0;
        ASSERT_TRUE(log.value()
                        ->append(testBatch(i), i * 2 + 1, &end)
                        .isOk());
        boundaries.push_back(end);
    }
    EXPECT_GT(log.value()->segments().size(), 2u)
        << "segment_bytes=256 must force rotation";
    EXPECT_EQ(log.value()->lastSeq(), 19 * 2 + 2);
    EXPECT_EQ(log.value()->recordCount(), 20u);

    // A big read from 0 spans sealed segments + the active one.
    Bytes all;
    ASSERT_TRUE(log.value()->read(0, 1u << 20, all).isOk());
    EXPECT_EQ(all.size(), boundaries.back());
    expectRecords(all, 0, 20);
}

TEST(ReplLog, ReadFromEveryRecordBoundary)
{
    ScratchDir dir("repl_boundaries");
    auto log = ReplicationLog::open(smallSegments(dir.path()));
    ASSERT_TRUE(log.ok());

    std::vector<uint64_t> boundaries{0};
    for (uint64_t i = 0; i < 12; ++i) {
        uint64_t end = 0;
        ASSERT_TRUE(log.value()
                        ->append(testBatch(i), i * 2 + 1, &end)
                        .isOk());
        boundaries.push_back(end);
    }
    // Resume-from-offset must work at EVERY boundary — this is the
    // follower handshake's whole contract, including boundaries
    // that coincide with a segment seam.
    for (uint64_t i = 0; i <= 12; ++i) {
        Bytes out;
        ASSERT_TRUE(
            log.value()->read(boundaries[i], 1u << 20, out).isOk())
            << "boundary " << i;
        EXPECT_EQ(out.size(), boundaries.back() - boundaries[i]);
        expectRecords(out, i, 12 - i);
    }
    // Reading exactly at the end is Ok-and-empty, not an error.
    Bytes none;
    ASSERT_TRUE(
        log.value()->read(boundaries.back(), 4096, none).isOk());
    EXPECT_TRUE(none.empty());
}

TEST(ReplLog, ReadRoundsDownToWholeRecords)
{
    ScratchDir dir("repl_rounddown");
    ReplLogOptions options;
    options.dir = dir.path();
    auto log = ReplicationLog::open(options);
    ASSERT_TRUE(log.ok());

    uint64_t first_end = 0;
    ASSERT_TRUE(
        log.value()->append(testBatch(0), 1, &first_end).isOk());
    ASSERT_TRUE(log.value()->append(testBatch(1), 3).isOk());

    // Budget covers record 0 plus half of record 1: only record 0
    // comes back.
    Bytes out;
    ASSERT_TRUE(
        log.value()
            ->read(0, static_cast<size_t>(first_end) + 4, out)
            .isOk());
    EXPECT_EQ(out.size(), first_end);
    expectRecords(out, 0, 1);

    // A budget smaller than the first record still returns it
    // whole — the reader must always make progress.
    out.clear();
    ASSERT_TRUE(log.value()->read(0, 1, out).isOk());
    EXPECT_EQ(out.size(), first_end);
}

TEST(ReplLog, MisalignedOffsetRejected)
{
    ScratchDir dir("repl_misaligned");
    ReplLogOptions options;
    options.dir = dir.path();
    auto log = ReplicationLog::open(options);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.value()->append(testBatch(0), 1).isOk());

    Bytes out;
    Status s = log.value()->read(3, 4096, out);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    // Past the end is misaligned too (nothing validates there).
    s = log.value()->read(log.value()->endOffset() + 12, 4096, out);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
}

TEST(ReplLog, AppendRawMatchesAppend)
{
    ScratchDir dir("repl_raw");
    // Follower log: appendRaw of the primary's framed bytes must
    // produce a byte-identical log (the failover invariant).
    auto primary = ReplicationLog::open(
        smallSegments(dir.path() + "/p"));
    auto follower = ReplicationLog::open(
        smallSegments(dir.path() + "/f"));
    ASSERT_TRUE(primary.ok());
    ASSERT_TRUE(follower.ok());

    for (uint64_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            primary.value()->append(testBatch(i), i * 2 + 1).isOk());
    }
    Bytes shipped;
    ASSERT_TRUE(primary.value()->read(0, 1u << 20, shipped).isOk());

    uint64_t end = 0;
    ASSERT_TRUE(follower.value()->appendRaw(shipped, &end).isOk());
    EXPECT_EQ(end, primary.value()->endOffset());
    EXPECT_EQ(follower.value()->lastSeq(),
              primary.value()->lastSeq());

    Bytes replayed;
    ASSERT_TRUE(
        follower.value()->read(0, 1u << 20, replayed).isOk());
    EXPECT_EQ(BytesView(replayed), BytesView(shipped));

    // Torn raw bytes (half a record) must be rejected, not
    // appended: a follower never commits a partial record.
    Bytes torn = testRecord(10);
    torn.resize(torn.size() / 2);
    EXPECT_FALSE(follower.value()->appendRaw(torn, &end).isOk());
    EXPECT_EQ(follower.value()->endOffset(),
              primary.value()->endOffset());
}

TEST(ReplLog, ReopenRecoversExactEnd)
{
    ScratchDir dir("repl_reopen");
    uint64_t end = 0;
    {
        auto log = ReplicationLog::open(smallSegments(dir.path()));
        ASSERT_TRUE(log.ok());
        for (uint64_t i = 0; i < 15; ++i) {
            ASSERT_TRUE(log.value()
                            ->append(testBatch(i), i * 2 + 1, &end)
                            .isOk());
        }
    }
    auto log = ReplicationLog::open(smallSegments(dir.path()));
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value()->endOffset(), end);
    Bytes all;
    ASSERT_TRUE(log.value()->read(0, 1u << 20, all).isOk());
    expectRecords(all, 0, 15);
}

TEST(ReplLog, TornTailInLastSegmentQuarantined)
{
    ScratchDir dir("repl_torn_last");
    Env *env = Env::defaultEnv();
    uint64_t end = 0;
    {
        auto log = ReplicationLog::open(smallSegments(dir.path()));
        ASSERT_TRUE(log.ok());
        for (uint64_t i = 0; i < 6; ++i) {
            ASSERT_TRUE(log.value()
                            ->append(testBatch(i), i * 2 + 1, &end)
                            .isOk());
        }
    }
    // Tear the last segment mid-record by hand.
    auto segs_log = ReplicationLog::open(smallSegments(dir.path()));
    ASSERT_TRUE(segs_log.ok());
    auto segs = segs_log.value()->segments();
    segs_log.value().reset();
    ASSERT_FALSE(segs.empty());
    const ReplSegment &last = segs.back();
    char name[32];
    std::snprintf(name, sizeof(name), "repl-%06llu.log",
                  static_cast<unsigned long long>(last.index));
    std::string last_path = dir.path() + "/" + name;
    ASSERT_TRUE(
        env->truncateFile(last_path, last.length - 5).isOk());

    auto log = ReplicationLog::open(smallSegments(dir.path()));
    ASSERT_TRUE(log.ok());
    // The end dropped to the last whole record; every byte below
    // it still decodes.
    EXPECT_LT(log.value()->endOffset(), end);
    Bytes all;
    ASSERT_TRUE(log.value()
                    ->read(0, 1u << 20, all)
                    .isOk());
    size_t pos = 0;
    while (pos < all.size()) {
        WriteBatch batch;
        uint64_t seq = 0;
        ASSERT_TRUE(
            decodeWalRecord(all, pos, batch, seq).isOk());
    }
    // Appending after recovery continues from the validated end.
    ASSERT_TRUE(log.value()->append(testBatch(99), 199).isOk());
}

TEST(ReplLog, CorruptSealedSegmentTruncatesStream)
{
    ScratchDir dir("repl_torn_sealed");
    Env *env = Env::defaultEnv();
    {
        auto log = ReplicationLog::open(smallSegments(dir.path()));
        ASSERT_TRUE(log.ok());
        for (uint64_t i = 0; i < 12; ++i) {
            ASSERT_TRUE(
                log.value()->append(testBatch(i), i * 2 + 1).isOk());
        }
        ASSERT_GT(log.value()->segments().size(), 2u);
    }
    // Flip a byte in the FIRST (sealed) segment's middle: the
    // stream past the corruption is meaningless, so recovery must
    // truncate there even though later segments are intact.
    std::string first_path = dir.path() + "/repl-000001.log";
    auto size = env->fileSize(first_path);
    ASSERT_TRUE(size.ok());
    {
        auto file = env->newRandomAccessFile(first_path);
        ASSERT_TRUE(file.ok());
        Bytes content;
        ASSERT_TRUE(file.value()
                        ->read(0, size.value(), content)
                        .isOk());
        content[content.size() / 2] ^= 0x40;
        ASSERT_TRUE(env->writeStringToFile(first_path, content,
                                           /*sync=*/false)
                        .isOk());
    }

    auto log = ReplicationLog::open(smallSegments(dir.path()));
    ASSERT_TRUE(log.ok());
    EXPECT_LT(log.value()->endOffset(), size.value())
        << "end must fall below the corrupted record";
    Bytes all;
    ASSERT_TRUE(log.value()->read(0, 1u << 20, all).isOk());
    EXPECT_EQ(all.size(), log.value()->endOffset());
}

TEST(ReplLog, FaultEnvCrashKeepsEverySyncedRecord)
{
    ScratchDir dir("repl_fault_crash");
    FaultInjectionEnv fault(Env::defaultEnv(), /*seed=*/17);
    ReplLogOptions options = smallSegments(dir.path(), &fault);
    options.sync_appends = true; // the --sync wiring

    uint64_t synced_end = 0;
    {
        auto log = ReplicationLog::open(options);
        ASSERT_TRUE(log.ok());
        for (uint64_t i = 0; i < 8; ++i) {
            ASSERT_TRUE(
                log.value()->append(testBatch(i), i * 2 + 1).isOk());
        }
        ASSERT_GT(log.value()->segments().size(), 1u)
            << "the crash must land with rotated segments on disk";
        synced_end = log.value()->endOffset();
        fault.simulateCrash();
    }
    fault.reactivate();

    // Every synced record survives — including those in sealed
    // segments, whose directory entries rotation dir-synced.
    auto log = ReplicationLog::open(options);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value()->endOffset(), synced_end);
    Bytes all;
    ASSERT_TRUE(log.value()->read(0, 1u << 20, all).isOk());
    expectRecords(all, 0, 8);
    ASSERT_TRUE(log.value()->append(testBatch(8), 17).isOk());
}

TEST(ReplLog, FaultEnvTornTailQuarantinedOnRecovery)
{
    ScratchDir dir("repl_fault_torn");
    FaultInjectionEnv fault(Env::defaultEnv(), /*seed=*/23);
    ReplLogOptions options;
    options.dir = dir.path();
    options.env = &fault;

    uint64_t synced_end = 0;
    {
        // Durable prefix first (entry + data synced)...
        ReplLogOptions synced = options;
        synced.sync_appends = true;
        auto log = ReplicationLog::open(synced);
        ASSERT_TRUE(log.ok());
        for (uint64_t i = 0; i < 4; ++i) {
            ASSERT_TRUE(
                log.value()->append(testBatch(i), i * 2 + 1).isOk());
        }
        synced_end = log.value()->endOffset();
    }
    {
        // ...then unsynced appends, and power loss that tears the
        // tail 7 bytes into the unsynced suffix.
        auto log = ReplicationLog::open(options);
        ASSERT_TRUE(log.ok());
        for (uint64_t i = 4; i < 8; ++i) {
            ASSERT_TRUE(
                log.value()->append(testBatch(i), i * 2 + 1).isOk());
        }
        fault.crashKeepUnsyncedBytes(7);
        fault.simulateCrash();
    }
    fault.reactivate();

    // Recovery lands exactly on the synced prefix: the 7 torn
    // bytes are quarantined, never shipped to a follower.
    auto log = ReplicationLog::open(options);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log.value()->endOffset(), synced_end);
    Bytes all;
    ASSERT_TRUE(log.value()->read(0, 1u << 20, all).isOk());
    expectRecords(all, 0, 4);
    ASSERT_TRUE(log.value()->append(testBatch(99), 199).isOk());
}

TEST(ReplLog, ReadErrorSurfacesAsIOError)
{
    ScratchDir dir("repl_fault_read");
    FaultInjectionEnv fault(Env::defaultEnv(), /*seed=*/5);
    ReplLogOptions options = smallSegments(dir.path(), &fault);
    auto log = ReplicationLog::open(options);
    ASSERT_TRUE(log.ok());
    for (uint64_t i = 0; i < 12; ++i) {
        ASSERT_TRUE(
            log.value()->append(testBatch(i), i * 2 + 1).isOk());
    }
    ASSERT_GT(log.value()->segments().size(), 2u);

    // Sealed segments are read through the Env: a dead disk must
    // surface as IOError to the sender, not as silent truncation.
    fault.setPermanentReadError(true);
    Bytes out;
    Status s = log.value()->read(0, 1u << 20, out);
    EXPECT_TRUE(s.code() == StatusCode::IOError ||
                s.code() == StatusCode::IODegraded)
        << s.toString();
    fault.setPermanentReadError(false);
    out.clear();
    EXPECT_TRUE(log.value()->read(0, 1u << 20, out).isOk());
}

} // namespace
} // namespace ethkv::kv
