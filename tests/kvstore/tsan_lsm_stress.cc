/**
 * @file
 * ThreadSanitizer stress for the LSM engine's background
 * maintenance, always built with -fsanitize=thread (see
 * tests/CMakeLists.txt, ctest entry lsm.tsan_bg_compaction).
 *
 * Eight writers and two scanners hammer one LSMStore with a tiny
 * memtable for five seconds, so the maintenance thread flushes and
 * compacts continuously underneath them, while a stats thread polls
 * every diagnostic the server's STATS op can reach. This is the
 * executable proof for the engine's concurrency model — version
 * snapshot handoff, immutable-memtable queue, backpressure waits,
 * the compaction scope — on every plain `ctest` run: a data race
 * anywhere in that machinery fails the build's test suite.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hh"
#include "kvstore/lsm_store.hh"
#include "test_util.hh"

using namespace ethkv;

namespace
{

std::atomic<int> failures{0};

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "tsan_lsm_stress: FAILED: %s\n", what);
        ++failures;
    }
}

constexpr int num_writers = 8;
constexpr int num_scanners = 2;
constexpr auto run_time = std::chrono::seconds(5);

Bytes
key(int writer, uint64_t i)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "w%02d-%010llu", writer,
                  static_cast<unsigned long long>(i));
    return buf;
}

void
writerBody(kv::LSMStore &store,
           std::chrono::steady_clock::time_point deadline,
           int writer)
{
    Bytes value(128, static_cast<char>('a' + writer));
    uint64_t i = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        // Cycle a bounded keyspace so overwrites and tombstones
        // keep flowing through compactions.
        uint64_t k = i % 4000;
        Status s = store.put(key(writer, k), value);
        check(s.isOk(), "writer put");
        if (i % 7 == 0) {
            s = store.del(key(writer, (k + 2000) % 4000));
            check(s.isOk(), "writer del");
        }
        if (i % 997 == 0) {
            Bytes got;
            s = store.get(key(writer, k), got);
            check(s.isOk(), "writer read-own-write");
        }
        ++i;
    }
}

void
scannerBody(kv::LSMStore &store,
            std::chrono::steady_clock::time_point deadline,
            int scanner)
{
    while (std::chrono::steady_clock::now() < deadline) {
        // Each pass covers one writer's keyspace; entries must
        // arrive in strictly ascending key order no matter what
        // flush/compaction installs mid-scan.
        int target = scanner * 3 % num_writers;
        Bytes prev;
        Status s = store.scan(
            key(target, 0), key(target, 9999999999ull),
            [&prev](BytesView k, BytesView) {
                if (!prev.empty() && BytesView(prev) >= k) {
                    check(false, "scan order");
                    return false;
                }
                prev = Bytes(k);
                return true;
            });
        check(s.isOk(), "scan status");
    }
}

void
statsBody(kv::LSMStore &store,
          std::chrono::steady_clock::time_point deadline)
{
    while (std::chrono::steady_clock::now() < deadline) {
        store.stats();
        store.levelFileCounts();
        store.tableBytes();
        check(!store.isDegraded(), "not degraded");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

} // namespace

int
main()
{
    testutil::ScratchDir dir("tsan_lsm");
    kv::LSMOptions options;
    options.dir = dir.path();
    // Tiny memtable + aggressive level budgets: seals every few
    // hundred writes, so flush and compaction run the whole time.
    options.memtable_bytes = 32 << 10;
    options.l0_compaction_trigger = 3;
    options.level_base_bytes = 64 << 10;
    options.target_file_bytes = 16 << 10;

    auto opened = kv::LSMStore::open(options);
    if (!opened.ok()) {
        std::fprintf(stderr, "tsan_lsm_stress: open failed: %s\n",
                     opened.status().toString().c_str());
        return 1;
    }
    kv::LSMStore &store = *opened.value();

    auto deadline = std::chrono::steady_clock::now() + run_time;
    std::vector<std::thread> threads;
    for (int w = 0; w < num_writers; ++w)
        threads.emplace_back(
            [&store, deadline, w] { writerBody(store, deadline, w); });
    for (int s = 0; s < num_scanners; ++s)
        threads.emplace_back(
            [&store, deadline, s] { scannerBody(store, deadline, s); });
    threads.emplace_back(
        [&store, deadline] { statsBody(store, deadline); });
    for (std::thread &t : threads)
        t.join();

    check(store.flush().isOk(), "final flush");
    check(store.checkInvariants().isOk(), "invariants");
    check(store.compactAll().isOk(), "compactAll");
    check(store.checkInvariants().isOk(), "invariants after compact");

    kv::IOStats io = store.stats();
    std::fprintf(stderr,
                 "tsan_lsm_stress: flush_bytes=%llu compactions=%llu"
                 " live=%llu\n",
                 static_cast<unsigned long long>(io.flush_bytes),
                 static_cast<unsigned long long>(io.compactions),
                 static_cast<unsigned long long>(
                     store.liveKeyCount()));
    check(io.flush_bytes > 0, "background flush ran");
    check(io.compactions > 0, "background compaction ran");

    if (failures) {
        std::fprintf(stderr, "tsan_lsm_stress: %d failures\n",
                     failures.load());
        return 1;
    }
    std::fprintf(stderr, "tsan_lsm_stress: PASS\n");
    return 0;
}
