/**
 * @file
 * SSTable tests: write/read round trip across block boundaries,
 * point lookups, iterators, props, and format violations.
 */

#include <gtest/gtest.h>

#include "kvstore/sstable.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

std::string
writeTable(const std::string &path, uint64_t n,
           size_t value_len = 24)
{
    auto writer = SSTableWriter::create(path, n);
    EXPECT_TRUE(writer.ok());
    for (uint64_t i = 0; i < n; ++i) {
        InternalEntry e{makeKey(i), makeValue(i, value_len), i + 1,
                        i % 7 == 3 ? EntryType::Tombstone
                                   : EntryType::Put};
        if (e.type == EntryType::Tombstone)
            e.value.clear();
        EXPECT_TRUE(writer.value()->add(e).isOk());
    }
    EXPECT_TRUE(writer.value()->finish().isOk());
    return path;
}

TEST(SSTableTest, RoundTripSpansManyBlocks)
{
    ScratchDir dir("sst");
    std::string path = dir.path() + "/t.sst";
    const uint64_t n = 2000; // ~2000 * ~60B >> one 4 KiB block
    writeTable(path, n);

    auto reader = SSTableReader::open(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.value()->props().entry_count, n);
    EXPECT_EQ(reader.value()->props().smallest_key, makeKey(0));
    EXPECT_EQ(reader.value()->props().largest_key, makeKey(n - 1));
    EXPECT_GT(reader.value()->props().tombstone_count, 0u);

    for (uint64_t i = 0; i < n; ++i) {
        InternalEntry e;
        ASSERT_TRUE(reader.value()->get(makeKey(i), e).isOk())
            << "missing key " << i;
        EXPECT_EQ(e.seq, i + 1);
        if (i % 7 == 3) {
            EXPECT_EQ(e.type, EntryType::Tombstone);
        } else {
            EXPECT_EQ(e.type, EntryType::Put);
            EXPECT_EQ(e.value, makeValue(i));
        }
    }
}

TEST(SSTableTest, AbsentKeysReturnNotFound)
{
    ScratchDir dir("sst");
    std::string path = writeTable(dir.path() + "/t.sst", 100);
    auto reader = SSTableReader::open(path);
    ASSERT_TRUE(reader.ok());

    InternalEntry e;
    // Before, between, and after existing keys.
    EXPECT_TRUE(reader.value()->get("aaa", e).isNotFound());
    EXPECT_TRUE(
        reader.value()->get(makeKey(5, "x"), e).isNotFound());
    EXPECT_TRUE(reader.value()->get("zzz", e).isNotFound());
}

TEST(SSTableTest, IteratorVisitsAllInOrder)
{
    ScratchDir dir("sst");
    const uint64_t n = 1500;
    std::string path = writeTable(dir.path() + "/t.sst", n);
    auto reader = SSTableReader::open(path);
    ASSERT_TRUE(reader.ok());

    auto it = reader.value()->newIterator();
    it->seek(BytesView());
    uint64_t count = 0;
    Bytes prev;
    while (it->valid()) {
        if (count > 0)
            EXPECT_LT(prev, it->entry().key);
        prev = it->entry().key;
        ++count;
        it->next();
    }
    EXPECT_EQ(count, n);
}

TEST(SSTableTest, IteratorSeekMidRange)
{
    ScratchDir dir("sst");
    std::string path = writeTable(dir.path() + "/t.sst", 1000);
    auto reader = SSTableReader::open(path);
    ASSERT_TRUE(reader.ok());

    auto it = reader.value()->newIterator();
    it->seek(makeKey(500));
    ASSERT_TRUE(it->valid());
    EXPECT_EQ(it->entry().key, makeKey(500));

    // Seek to a key between entries.
    it->seek(makeKey(500, "x"));
    ASSERT_TRUE(it->valid());
    EXPECT_EQ(it->entry().key, makeKey(501));

    it->seek(makeKey(999, "x"));
    EXPECT_FALSE(it->valid());
}

TEST(SSTableTest, RejectsOutOfOrderKeys)
{
    ScratchDir dir("sst");
    auto writer = SSTableWriter::create(dir.path() + "/t.sst", 10);
    ASSERT_TRUE(writer.ok());
    InternalEntry a{"bbb", "1", 1, EntryType::Put};
    InternalEntry b{"aaa", "2", 2, EntryType::Put};
    InternalEntry dup{"bbb", "3", 3, EntryType::Put};
    EXPECT_TRUE(writer.value()->add(a).isOk());
    EXPECT_FALSE(writer.value()->add(b).isOk());
    EXPECT_FALSE(writer.value()->add(dup).isOk());
}

TEST(SSTableTest, OpenRejectsGarbageFile)
{
    ScratchDir dir("sst");
    std::string path = dir.path() + "/garbage.sst";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        Bytes junk(300, 'j');
        std::fwrite(junk.data(), 1, junk.size(), f);
        std::fclose(f);
    }
    EXPECT_FALSE(SSTableReader::open(path).ok());
}

TEST(SSTableTest, OpenRejectsTinyFile)
{
    ScratchDir dir("sst");
    std::string path = dir.path() + "/tiny.sst";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fwrite("xy", 1, 2, f);
        std::fclose(f);
    }
    EXPECT_FALSE(SSTableReader::open(path).ok());
}

TEST(SSTableTest, LargeValuesSpanBlocks)
{
    ScratchDir dir("sst");
    std::string path = dir.path() + "/big.sst";
    auto writer = SSTableWriter::create(path, 10);
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 0; i < 10; ++i) {
        // 20 KiB values: each entry larger than a block.
        InternalEntry e{makeKey(i), makeValue(i, 20000), i + 1,
                        EntryType::Put};
        ASSERT_TRUE(writer.value()->add(e).isOk());
    }
    ASSERT_TRUE(writer.value()->finish().isOk());

    auto reader = SSTableReader::open(path);
    ASSERT_TRUE(reader.ok());
    for (uint64_t i = 0; i < 10; ++i) {
        InternalEntry e;
        ASSERT_TRUE(reader.value()->get(makeKey(i), e).isOk());
        EXPECT_EQ(e.value, makeValue(i, 20000));
    }
}

TEST(SSTableTest, BloomShortCircuitsAbsentKeys)
{
    ScratchDir dir("sst");
    std::string path = writeTable(dir.path() + "/t.sst", 500);
    auto reader = SSTableReader::open(path);
    ASSERT_TRUE(reader.ok());

    uint64_t before = reader.value()->bytesRead();
    int may = 0;
    for (uint64_t i = 0; i < 1000; ++i)
        may += reader.value()->mayContain(makeKey(i, "absent"));
    // Bloom checks read no blocks.
    EXPECT_EQ(reader.value()->bytesRead(), before);
    EXPECT_LT(may, 100);
}

} // namespace
} // namespace ethkv::kv
