/**
 * @file
 * B+-tree engine tests: CRUD, splits/merges across many orders of
 * insertion and deletion, scans, structural invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "kvstore/btree_store.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;

TEST(BTreeTest, PutGetDelete)
{
    BTreeStore tree;
    EXPECT_TRUE(tree.put("a", "1").isOk());
    EXPECT_TRUE(tree.put("b", "2").isOk());

    Bytes v;
    ASSERT_TRUE(tree.get("a", v).isOk());
    EXPECT_EQ(v, "1");
    EXPECT_TRUE(tree.get("c", v).isNotFound());

    EXPECT_TRUE(tree.del("a").isOk());
    EXPECT_TRUE(tree.get("a", v).isNotFound());
    EXPECT_EQ(tree.liveKeyCount(), 1u);
    // Deleting an absent key is Ok.
    EXPECT_TRUE(tree.del("zz").isOk());
}

TEST(BTreeTest, OverwriteKeepsSingleEntry)
{
    BTreeStore tree;
    ASSERT_TRUE(tree.put("k", "old").isOk());
    ASSERT_TRUE(tree.put("k", "new").isOk());
    Bytes v;
    ASSERT_TRUE(tree.get("k", v).isOk());
    EXPECT_EQ(v, "new");
    EXPECT_EQ(tree.liveKeyCount(), 1u);
}

TEST(BTreeTest, GrowsAndMaintainsInvariants)
{
    BTreeStore tree;
    for (uint64_t i = 0; i < 5000; ++i) {
        ASSERT_TRUE(tree.put(makeKey(i), makeValue(i)).isOk());
        if (i % 500 == 0)
            tree.checkInvariants();
    }
    tree.checkInvariants();
    EXPECT_GT(tree.height(), 1);
    EXPECT_EQ(tree.liveKeyCount(), 5000u);

    for (uint64_t i = 0; i < 5000; ++i) {
        Bytes v;
        ASSERT_TRUE(tree.get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i));
    }
}

TEST(BTreeTest, ShrinksBackToSingleLeaf)
{
    BTreeStore tree;
    for (uint64_t i = 0; i < 2000; ++i)
        ASSERT_TRUE(tree.put(makeKey(i), "v").isOk());
    EXPECT_GT(tree.height(), 1);
    for (uint64_t i = 0; i < 2000; ++i) {
        ASSERT_TRUE(tree.del(makeKey(i)).isOk());
        if (i % 200 == 0)
            tree.checkInvariants();
    }
    tree.checkInvariants();
    EXPECT_EQ(tree.liveKeyCount(), 0u);
    EXPECT_EQ(tree.height(), 1);
}

TEST(BTreeTest, ScanRangeAndOrder)
{
    BTreeStore tree;
    for (uint64_t i = 0; i < 1000; i += 2)
        ASSERT_TRUE(tree.put(makeKey(i), makeValue(i)).isOk());

    std::vector<Bytes> seen;
    ASSERT_TRUE(tree.scan(makeKey(100), makeKey(200),
              [&](BytesView k, BytesView v) {
                  seen.emplace_back(k);
                  EXPECT_EQ(Bytes(v), makeValue(
                      std::stoull(Bytes(k.substr(4, 8)))));
                  return true;
              }).isOk());
    ASSERT_EQ(seen.size(), 50u);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    EXPECT_EQ(seen.front(), makeKey(100));
    EXPECT_EQ(seen.back(), makeKey(198));
}

TEST(BTreeTest, ScanOpenEndAndEarlyStop)
{
    BTreeStore tree;
    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(tree.put(makeKey(i), "v").isOk());

    size_t count = 0;
    ASSERT_TRUE(tree.scan(makeKey(90), BytesView(),
              [&](BytesView, BytesView) {
                  ++count;
                  return true;
              }).isOk());
    EXPECT_EQ(count, 10u);

    count = 0;
    ASSERT_TRUE(tree.scan(BytesView(), BytesView(),
                          [&](BytesView, BytesView) {
                              return ++count < 7;
                          }).isOk());
    EXPECT_EQ(count, 7u);
}

class BTreeRandomOps : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(BTreeRandomOps, MatchesReferenceMap)
{
    Rng rng(GetParam());
    BTreeStore tree;
    std::map<Bytes, Bytes> ref;

    for (int step = 0; step < 20000; ++step) {
        uint64_t id = rng.nextBounded(3000);
        Bytes key = makeKey(id);
        int op = static_cast<int>(rng.nextBounded(10));
        if (op < 5) {
            Bytes value = makeValue(rng.next(), 8);
            ASSERT_TRUE(tree.put(key, value).isOk());
            ref[key] = value;
        } else if (op < 8) {
            ASSERT_TRUE(tree.del(key).isOk());
            ref.erase(key);
        } else {
            Bytes v;
            Status s = tree.get(key, v);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_TRUE(s.isNotFound());
            } else {
                ASSERT_TRUE(s.isOk());
                EXPECT_EQ(v, it->second);
            }
        }
        if (step % 2500 == 0)
            tree.checkInvariants();
    }
    tree.checkInvariants();
    EXPECT_EQ(tree.liveKeyCount(), ref.size());

    // Full scan equals the reference map.
    auto it = ref.begin();
    ASSERT_TRUE(tree.scan(BytesView(), BytesView(),
              [&](BytesView k, BytesView v) {
                  EXPECT_NE(it, ref.end());
                  EXPECT_EQ(Bytes(k), it->first);
                  EXPECT_EQ(Bytes(v), it->second);
                  ++it;
                  return true;
              }).isOk());
    EXPECT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomOps,
                         ::testing::Values(11, 29, 47, 83, 131));

TEST(BTreeTest, DescendingInsertionOrder)
{
    BTreeStore tree;
    for (int i = 2000; i >= 0; --i)
        ASSERT_TRUE(tree.put(makeKey(static_cast<uint64_t>(i)), "v").isOk());
    tree.checkInvariants();
    EXPECT_EQ(tree.liveKeyCount(), 2001u);
}

} // namespace
} // namespace ethkv::kv
