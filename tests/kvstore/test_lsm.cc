/**
 * @file
 * LSM store tests: CRUD, flush/compaction behaviour, scans across
 * levels, WAL crash recovery, reopen persistence, tombstone
 * lifecycle.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "kvstore/lsm_store.hh"
#include "kvstore/wal.hh"
#include "obs/metrics.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

LSMOptions
smallOptions(const std::string &dir)
{
    LSMOptions opts;
    opts.dir = dir;
    opts.memtable_bytes = 16 << 10;   // flush early
    opts.l0_compaction_trigger = 3;
    opts.level_base_bytes = 64 << 10; // compact early
    opts.target_file_bytes = 16 << 10;
    return opts;
}

TEST(LsmTest, PutGetDelete)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    EXPECT_TRUE(store.value()->put("a", "1").isOk());
    Bytes v;
    ASSERT_TRUE(store.value()->get("a", v).isOk());
    EXPECT_EQ(v, "1");

    EXPECT_TRUE(store.value()->del("a").isOk());
    EXPECT_TRUE(store.value()->get("a", v).isNotFound());
    EXPECT_TRUE(store.value()->del("never-existed").isOk());
}

TEST(LsmTest, OverwriteAcrossFlush)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    ASSERT_TRUE(store.value()->put("k", "old").isOk());
    ASSERT_TRUE(store.value()->flush().isOk()); // "old" now on disk
    ASSERT_TRUE(store.value()->put("k", "new").isOk());

    Bytes v;
    ASSERT_TRUE(store.value()->get("k", v).isOk());
    EXPECT_EQ(v, "new");
}

TEST(LsmTest, DeleteShadowsDiskVersion)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    ASSERT_TRUE(store.value()->put("k", "v").isOk());
    ASSERT_TRUE(store.value()->flush().isOk());
    ASSERT_TRUE(store.value()->del("k").isOk());

    Bytes v;
    EXPECT_TRUE(store.value()->get("k", v).isNotFound());
    ASSERT_TRUE(store.value()->flush().isOk());
    EXPECT_TRUE(store.value()->get("k", v).isNotFound());
}

TEST(LsmTest, ManyKeysTriggerFlushAndCompaction)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    const uint64_t n = 5000;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(
            store.value()->put(makeKey(i), makeValue(i)).isOk());

    EXPECT_GT(store.value()->stats().flush_bytes, 0u);
    EXPECT_GT(store.value()->stats().compactions, 0u);

    for (uint64_t i = 0; i < n; ++i) {
        Bytes v;
        ASSERT_TRUE(store.value()->get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i));
    }
    EXPECT_EQ(store.value()->liveKeyCount(), n);
}

TEST(LsmTest, ScanMergesAllLevels)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    // Interleave writes and flushes so keys spread across levels.
    for (uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i)).isOk());
        if (i % 251 == 0)
            ASSERT_TRUE(store.value()->flush().isOk());
    }
    // Overwrite a band and delete another so the scan must resolve
    // shadowing correctly.
    for (uint64_t i = 100; i < 150; ++i)
        ASSERT_TRUE(store.value()->put(makeKey(i), "fresh").isOk());
    for (uint64_t i = 200; i < 250; ++i)
        ASSERT_TRUE(store.value()->del(makeKey(i)).isOk());

    uint64_t count = 0;
    Bytes prev;
    ASSERT_TRUE(store.value()->scan(
        makeKey(0), makeKey(1000),
        [&](BytesView k, BytesView v) {
            if (count > 0)
                EXPECT_LT(prev, Bytes(k));
            prev = Bytes(k);
            uint64_t id = std::stoull(Bytes(k.substr(4, 8)));
            EXPECT_TRUE(id < 200 || id >= 250);
            if (id >= 100 && id < 150)
                EXPECT_EQ(Bytes(v), "fresh");
            ++count;
            return true;
        }).isOk());
    EXPECT_EQ(count, 950u);
}

TEST(LsmTest, ScanRespectsRangeAndEarlyStop)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 300; ++i)
        ASSERT_TRUE(store.value()->put(makeKey(i), "v").isOk());

    uint64_t count = 0;
    ASSERT_TRUE(store.value()->scan(makeKey(50), makeKey(60),
                        [&](BytesView, BytesView) {
                            ++count;
                            return true;
                        }).isOk());
    EXPECT_EQ(count, 10u);

    count = 0;
    ASSERT_TRUE(store.value()->scan(BytesView(), BytesView(),
                        [&](BytesView, BytesView) {
                            return ++count < 5;
                        }).isOk());
    EXPECT_EQ(count, 5u);
}

TEST(LsmTest, ReopenAfterCleanFlush)
{
    ScratchDir dir("lsm");
    {
        auto store = LSMStore::open(smallOptions(dir.path()));
        ASSERT_TRUE(store.ok());
        for (uint64_t i = 0; i < 1000; ++i)
            ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i)).isOk());
        ASSERT_TRUE(store.value()->flush().isOk());
    }
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 1000; ++i) {
        Bytes v;
        ASSERT_TRUE(store.value()->get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i));
    }
}

TEST(LsmTest, ReopenRecoversUnflushedWritesFromWal)
{
    ScratchDir dir("lsm");
    {
        auto store = LSMStore::open(smallOptions(dir.path()));
        ASSERT_TRUE(store.ok());
        // Small enough to stay in the memtable (no flush): only the
        // WAL holds these when the store is dropped.
        for (uint64_t i = 0; i < 50; ++i)
            ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i)).isOk());
        ASSERT_TRUE(store.value()->del(makeKey(7)).isOk());
        // Destructor syncs the WAL; no flush() call.
    }
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    Bytes v;
    for (uint64_t i = 0; i < 50; ++i) {
        if (i == 7) {
            EXPECT_TRUE(
                store.value()->get(makeKey(i), v).isNotFound());
        } else {
            ASSERT_TRUE(store.value()->get(makeKey(i), v).isOk())
                << i;
            EXPECT_EQ(v, makeValue(i));
        }
    }
}

TEST(LsmTest, TornWalTailLosesOnlyTail)
{
    ScratchDir dir("lsm");
    {
        auto store = LSMStore::open(smallOptions(dir.path()));
        ASSERT_TRUE(store.ok());
        for (uint64_t i = 0; i < 20; ++i)
            ASSERT_TRUE(store.value()->put(makeKey(i), "v").isOk());
    }
    // Simulate a crash that tears the last WAL record.
    std::string wal = dir.path() + "/wal.log";
    auto size = std::filesystem::file_size(wal);
    std::filesystem::resize_file(wal, size - 2);

    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    Bytes v;
    // All but the last record survive.
    for (uint64_t i = 0; i < 19; ++i)
        ASSERT_TRUE(store.value()->get(makeKey(i), v).isOk()) << i;
    EXPECT_TRUE(store.value()->get(makeKey(19), v).isNotFound());
}

TEST(LsmTest, CompactAllDropsTombstones)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    for (uint64_t i = 0; i < 2000; ++i)
        ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i)).isOk());
    for (uint64_t i = 0; i < 2000; i += 2)
        ASSERT_TRUE(store.value()->del(makeKey(i)).isOk());
    ASSERT_TRUE(store.value()->compactAll().isOk());

    EXPECT_GT(store.value()->stats().tombstones_dropped, 0u);
    EXPECT_EQ(store.value()->liveKeyCount(), 1000u);
    for (uint64_t i = 0; i < 2000; ++i) {
        Bytes v;
        if (i % 2 == 0)
            EXPECT_TRUE(
                store.value()->get(makeKey(i), v).isNotFound());
        else
            ASSERT_TRUE(store.value()->get(makeKey(i), v).isOk());
    }
}

TEST(LsmTest, BatchIsAppliedInOrder)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    WriteBatch batch;
    batch.put("k", "first");
    batch.del("k");
    batch.put("k", "last");
    ASSERT_TRUE(store.value()->apply(batch).isOk());
    Bytes v;
    ASSERT_TRUE(store.value()->get("k", v).isOk());
    EXPECT_EQ(v, "last");
}

TEST(LsmTest, StatsTrackUserOps)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->put("a", "1").isOk());
    ASSERT_TRUE(store.value()->put("b", "2").isOk());
    ASSERT_TRUE(store.value()->del("a").isOk());
    Bytes v;
    EXPECT_TRUE(store.value()->get("a", v).isNotFound());
    ASSERT_TRUE(store.value()->get("b", v).isOk());
    ASSERT_TRUE(
        store.value()
            ->scan(BytesView(), BytesView(),
                   [](BytesView, BytesView) { return true; })
            .isOk());

    const IOStats &s = store.value()->stats();
    EXPECT_EQ(s.user_writes, 2u);
    EXPECT_EQ(s.user_deletes, 1u);
    EXPECT_EQ(s.user_reads, 2u);
    EXPECT_EQ(s.user_scans, 1u);
    EXPECT_EQ(s.tombstones_written, 1u);
    EXPECT_GT(s.bytes_written, 0u);
}

TEST(LsmTest, LevelFileCountsReflectStructure)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 4000; ++i)
        ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i, 48)).isOk());
    // flush() is the quiescence barrier: background maintenance has
    // flushed every sealed memtable and settled the level shape.
    ASSERT_TRUE(store.value()->flush().isOk());
    auto counts = store.value()->levelFileCounts();
    ASSERT_EQ(counts.size(),
              static_cast<size_t>(LSMStore::max_levels));
    size_t total = 0;
    for (size_t c : counts)
        total += c;
    EXPECT_GT(total, 0u);
    // L0 stays below the compaction trigger after quiescence.
    EXPECT_LT(counts[0], 4u);
}

TEST(LsmTest, RecoversSealedWalSegments)
{
    // Simulate a crash after a memtable was sealed (its WAL segment
    // renamed to imm-<n>.wal and listed in the MANIFEST) but before
    // the background flush turned it into an L0 table: recovery
    // must flush the segment inline and drop the directive.
    ScratchDir dir("lsm");
    LSMOptions opts = smallOptions(dir.path());
    {
        auto store = LSMStore::open(opts);
        ASSERT_TRUE(store.ok());
        for (uint64_t i = 0; i < 50; ++i)
            ASSERT_TRUE(
                store.value()->put(makeKey(i), makeValue(i)).isOk());
        ASSERT_TRUE(store.value()->flush().isOk());
    }

    Env *env = Env::defaultEnv();
    const std::string imm_path = dir.path() + "/imm-009000.wal";
    {
        auto wal = WriteAheadLog::open(imm_path, env);
        ASSERT_TRUE(wal.ok());
        WriteBatch batch;
        for (uint64_t i = 100; i < 150; ++i)
            batch.put(makeKey(i), makeValue(i));
        batch.del(makeKey(0));
        ASSERT_TRUE(wal.value()->append(batch, 1000000).isOk());
        ASSERT_TRUE(wal.value()->sync().isOk());
    }
    Bytes manifest;
    ASSERT_TRUE(
        env->readFileToString(dir.path() + "/MANIFEST", manifest)
            .isOk());
    manifest += "wal 9000\n";
    ASSERT_TRUE(env->writeStringToFile(dir.path() + "/MANIFEST",
                                       manifest, /*sync=*/true)
                    .isOk());

    auto store = LSMStore::open(opts);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
    // The segment was flushed to a table and deleted.
    EXPECT_FALSE(env->fileExists(imm_path));
    Bytes v;
    for (uint64_t i = 100; i < 150; ++i) {
        ASSERT_TRUE(store.value()->get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i));
    }
    // The delete recorded in the segment shadows the flushed put.
    EXPECT_TRUE(store.value()->get(makeKey(0), v).isNotFound());
    for (uint64_t i = 1; i < 50; ++i)
        ASSERT_TRUE(store.value()->get(makeKey(i), v).isOk()) << i;
}

TEST(LsmTest, MissingSealedWalDirectiveIsSkipped)
{
    // Crash window between the MANIFEST listing a sealed segment
    // and the wal.log rename: the directive names a missing file
    // and the records are still in wal.log. Recovery must not fail.
    ScratchDir dir("lsm");
    LSMOptions opts = smallOptions(dir.path());
    {
        auto store = LSMStore::open(opts);
        ASSERT_TRUE(store.ok());
        ASSERT_TRUE(store.value()->put("live", "yes").isOk());
        ASSERT_TRUE(store.value()->flush().isOk());
    }
    Env *env = Env::defaultEnv();
    Bytes manifest;
    ASSERT_TRUE(
        env->readFileToString(dir.path() + "/MANIFEST", manifest)
            .isOk());
    manifest += "wal 9001\n";
    ASSERT_TRUE(env->writeStringToFile(dir.path() + "/MANIFEST",
                                       manifest, /*sync=*/true)
                    .isOk());

    auto store = LSMStore::open(opts);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(store.value()->checkInvariants().isOk());
    Bytes v;
    ASSERT_TRUE(store.value()->get("live", v).isOk());
    EXPECT_EQ(v, "yes");
}

TEST(LsmTest, QueueDepthGaugeSettlesAfterFlushBarrier)
{
    ScratchDir dir("lsm");
    auto store = LSMStore::open(smallOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 3000; ++i)
        ASSERT_TRUE(
            store.value()->put(makeKey(i), makeValue(i)).isOk());
    ASSERT_TRUE(store.value()->flush().isOk());
    // Quiescent: no sealed memtables queued, no compaction running.
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .gauge("kv.compaction_queue_depth")
                  .value(),
              0);
    EXPECT_FALSE(store.value()->compactionInProgressForTest());
}

TEST(LsmTest, ConcurrentWritersAndScanners)
{
    // Plain-build concurrency smoke (the pinned TSan variant lives
    // in tsan_lsm_stress.cc): writers, scanners, and background
    // maintenance interleave; afterwards every acked write is
    // readable and invariants hold.
    ScratchDir dir("lsm");
    LSMOptions opts = smallOptions(dir.path());
    auto store = LSMStore::open(opts);
    ASSERT_TRUE(store.ok());
    LSMStore &s = *store.value();

    constexpr int kWriters = 4;
    constexpr uint64_t kPerWriter = 500;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kWriters + 2);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&s, &failures, w] {
            for (uint64_t i = 0; i < kPerWriter; ++i) {
                uint64_t key = static_cast<uint64_t>(w) * 10000 + i;
                if (!s.put(makeKey(key), makeValue(key)).isOk())
                    ++failures;
            }
        });
    }
    std::atomic<bool> stop_scans{false};
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&s, &stop_scans, &failures] {
            while (!stop_scans.load()) {
                Bytes last;
                Status st = s.scan(
                    BytesView(), BytesView(),
                    [&](BytesView k, BytesView) {
                        if (!last.empty() && BytesView(last) >= k) {
                            ++failures; // Out-of-order = bug.
                            return false;
                        }
                        last = Bytes(k);
                        return true;
                    });
                if (!st.isOk())
                    ++failures;
            }
        });
    }
    for (int w = 0; w < kWriters; ++w)
        threads[static_cast<size_t>(w)].join();
    stop_scans.store(true);
    for (size_t t = kWriters; t < threads.size(); ++t)
        threads[t].join();

    EXPECT_EQ(failures.load(), 0);
    ASSERT_TRUE(s.flush().isOk());
    EXPECT_TRUE(s.checkInvariants().isOk());
    Bytes v;
    for (int w = 0; w < kWriters; ++w) {
        for (uint64_t i = 0; i < kPerWriter; ++i) {
            uint64_t key = static_cast<uint64_t>(w) * 10000 + i;
            ASSERT_TRUE(s.get(makeKey(key), v).isOk()) << key;
            EXPECT_EQ(v, makeValue(key));
        }
    }
    EXPECT_EQ(s.liveKeyCount(), kWriters * kPerWriter);
}

} // namespace
} // namespace ethkv::kv
