/**
 * @file
 * LockedKVStore decorator tests, centered on the chunked scan: the
 * callback runs with the big lock released, so it may reenter the
 * store (the old whole-scan-under-lock implementation self-
 * deadlocked there), chunk resumption must deliver every key
 * exactly once in order, and engine verdicts like NotSupported
 * must pass through unchanged.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kvstore/btree_store.hh"
#include "kvstore/hash_store.hh"
#include "kvstore/locked_store.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;

TEST(LockedStoreTest, ScanCallbackMayReenterTheStore)
{
    BTreeStore inner;
    LockedKVStore store(inner);

    // Three chunks' worth (chunk size 256) so reentry happens on
    // every chunk, not just the first.
    const uint64_t n = 700;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());

    // The callback calls back into the same LockedKVStore. With a
    // non-recursive big lock held across the callback this would
    // deadlock; the chunked scan runs callbacks unlocked.
    uint64_t seen = 0;
    Bytes prev;
    Status s = store.scan(
        makeKey(0), makeKey(n),
        [&](BytesView k, BytesView v) {
            EXPECT_TRUE(prev.empty() || BytesView(prev) < k);
            prev = Bytes(k);
            Bytes reread;
            EXPECT_TRUE(store.get(k, reread).isOk());
            EXPECT_EQ(reread, Bytes(v));
            ++seen;
            return true;
        });
    ASSERT_TRUE(s.isOk());
    EXPECT_EQ(seen, n);
}

TEST(LockedStoreTest, ScanDeliversEveryKeyOnceAcrossChunks)
{
    BTreeStore inner;
    LockedKVStore store(inner);

    // Exactly on a chunk boundary (512 = 2 * 256) plus one: the
    // resume cursor must not skip or repeat the boundary key.
    const uint64_t n = 513;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());

    std::vector<Bytes> keys;
    ASSERT_TRUE(store
                    .scan(makeKey(0), makeKey(n),
                          [&keys](BytesView k, BytesView) {
                              keys.emplace_back(k);
                              return true;
                          })
                    .isOk());
    ASSERT_EQ(keys.size(), n);
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(keys[i], makeKey(i));
}

TEST(LockedStoreTest, ScanStopsWhenCallbackReturnsFalse)
{
    BTreeStore inner;
    LockedKVStore store(inner);
    for (uint64_t i = 0; i < 600; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());

    // Stop mid-second-chunk; no further callbacks may arrive.
    uint64_t seen = 0;
    ASSERT_TRUE(store
                    .scan(makeKey(0), makeKey(600),
                          [&seen](BytesView, BytesView) {
                              return ++seen < 300;
                          })
                    .isOk());
    EXPECT_EQ(seen, 300u);
}

TEST(LockedStoreTest, ScanPassesThroughNotSupported)
{
    HashStore inner;
    LockedKVStore store(inner);
    ASSERT_TRUE(store.put("k", "v").isOk());
    Status s = store.scan("a", "z", [](BytesView, BytesView) {
        ADD_FAILURE() << "callback must not run";
        return true;
    });
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
}

// The resume cursor after a full chunk is `last delivered key +
// '\0'` — strictly past the boundary key. These two tests pin the
// boundary semantics under mutation *between* chunks (the callback
// runs with the lock released, so mutating from the 256th callback
// lands exactly in the inter-chunk window):
//
//  - deleting the just-delivered boundary key must not derail the
//    resume (the cursor does not require the key to still exist),
//    and deleting a not-yet-delivered key must remove it from the
//    stream without skipping its neighbors;
//  - a key inserted between the boundary key and its successor is
//    ahead of the cursor and must be delivered exactly once, while
//    a key inserted behind the cursor is simply not observed —
//    never double-delivered, never re-ordered.
TEST(LockedStoreTest, DeleteAtChunkBoundaryDoesNotSkipOrRepeat)
{
    BTreeStore inner;
    LockedKVStore store(inner);
    const uint64_t n = 600; // chunk size 256: boundary at 255
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());

    std::vector<Bytes> keys;
    ASSERT_TRUE(
        store
            .scan(makeKey(0), makeKey(n),
                  [&](BytesView k, BytesView) {
                      keys.emplace_back(k);
                      if (keys.size() == 256) {
                          // Inter-chunk window: drop the boundary
                          // key (already delivered) and the first
                          // key of the unread next chunk.
                          EXPECT_EQ(Bytes(k), makeKey(255));
                          EXPECT_TRUE(
                              store.del(makeKey(255)).isOk());
                          EXPECT_TRUE(
                              store.del(makeKey(256)).isOk());
                      }
                      return true;
                  })
            .isOk());

    // Every stable key exactly once except 256 (deleted before its
    // chunk was read); 255 was delivered before its deletion.
    ASSERT_EQ(keys.size(), n - 1);
    size_t at = 0;
    for (uint64_t i = 0; i < n; ++i) {
        if (i == 256)
            continue;
        EXPECT_EQ(keys[at++], makeKey(i));
    }
}

TEST(LockedStoreTest, InsertAtChunkBoundaryDeliveredExactlyOnce)
{
    BTreeStore inner;
    LockedKVStore store(inner);
    const uint64_t n = 600;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i)).isOk());

    std::vector<Bytes> keys;
    ASSERT_TRUE(
        store
            .scan(makeKey(0), makeKey(n),
                  [&](BytesView k, BytesView) {
                      keys.emplace_back(k);
                      if (keys.size() == 256) {
                          // Ahead of the resume cursor: sorts
                          // between the boundary key and its
                          // successor, so the next chunk must
                          // deliver it exactly once.
                          EXPECT_TRUE(store
                                          .put(makeKey(255, "x"),
                                               makeValue(1))
                                          .isOk());
                          // Behind the cursor: already paged past,
                          // must not be observed (and must not
                          // repeat anything).
                          EXPECT_TRUE(store
                                          .put(makeKey(100, "x"),
                                               makeValue(2))
                                          .isOk());
                      }
                      return true;
                  })
            .isOk());

    ASSERT_EQ(keys.size(), n + 1);
    size_t at = 0;
    for (uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(keys[at++], makeKey(i));
        if (i == 255)
            EXPECT_EQ(keys[at++], makeKey(255, "x"));
    }
}

TEST(LockedStoreTest, ConcurrentWritersDuringChunkedScan)
{
    BTreeStore inner;
    LockedKVStore store(inner);
    const uint64_t n = 1000;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(
            store.put(makeKey(i, "base"), makeValue(i)).isOk());

    // Writers mutate a disjoint keyspace while a scanner pages
    // through the stable one; the scan must stay ordered and
    // complete, and nothing may deadlock (writers grab the same
    // lock the scan releases between chunks).
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            ASSERT_TRUE(store
                            .put(makeKey(100000 + i % 64, "hot"),
                                 makeValue(i))
                            .isOk());
            ++i;
        }
    });

    for (int round = 0; round < 5; ++round) {
        uint64_t seen = 0;
        Bytes prev;
        ASSERT_TRUE(
            store
                .scan(makeKey(0, "base"), makeKey(n, "base"),
                      [&](BytesView k, BytesView) {
                          EXPECT_TRUE(prev.empty() ||
                                      BytesView(prev) < k);
                          prev = Bytes(k);
                          ++seen;
                          return true;
                      })
                .isOk());
        EXPECT_EQ(seen, n);
    }
    stop.store(true);
    writer.join();
}

} // namespace
} // namespace ethkv::kv
