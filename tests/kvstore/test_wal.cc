/**
 * @file
 * WAL tests: append/replay round trip, torn-tail tolerance, corrupt
 * record detection, reset.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "kvstore/wal.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;

WriteBatch
sampleBatch(int tag)
{
    WriteBatch batch;
    batch.put("key-" + std::to_string(tag), "value-" +
              std::to_string(tag));
    batch.del("dead-" + std::to_string(tag));
    return batch;
}

TEST(WalTest, AppendReplayRoundTrip)
{
    ScratchDir dir("wal");
    std::string path = dir.path() + "/wal.log";
    {
        auto wal = WriteAheadLog::open(path);
        ASSERT_TRUE(wal.ok());
        for (int i = 0; i < 10; ++i) {
            ASSERT_TRUE(wal.value()
                            ->append(sampleBatch(i), i * 100)
                            .isOk());
        }
        ASSERT_TRUE(wal.value()->sync().isOk());
    }

    std::vector<uint64_t> seqs;
    std::vector<size_t> sizes;
    ASSERT_TRUE(WriteAheadLog::replay(
                    path,
                    [&](const WriteBatch &b, uint64_t seq) {
                        seqs.push_back(seq);
                        sizes.push_back(b.size());
                    })
                    .isOk());
    ASSERT_EQ(seqs.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(seqs[i], static_cast<uint64_t>(i * 100));
        EXPECT_EQ(sizes[i], 2u);
    }
}

TEST(WalTest, ReplayPreservesEntryContent)
{
    ScratchDir dir("wal");
    std::string path = dir.path() + "/wal.log";
    {
        auto wal = WriteAheadLog::open(path);
        ASSERT_TRUE(wal.ok());
        WriteBatch batch;
        batch.put("alpha", Bytes(1000, 'x'));
        batch.del("beta");
        batch.put("", ""); // empty key and value are legal
        ASSERT_TRUE(wal.value()->append(batch, 7).isOk());
        ASSERT_TRUE(wal.value()->sync().isOk());
    }
    int records = 0;
    ASSERT_TRUE(WriteAheadLog::replay(path, [&](const WriteBatch &b,
                                                uint64_t) {
        ++records;
        ASSERT_EQ(b.size(), 3u);
        EXPECT_EQ(b.entries()[0].op, BatchOp::Put);
        EXPECT_EQ(b.entries()[0].key, "alpha");
        EXPECT_EQ(b.entries()[0].value, Bytes(1000, 'x'));
        EXPECT_EQ(b.entries()[1].op, BatchOp::Delete);
        EXPECT_EQ(b.entries()[1].key, "beta");
        EXPECT_EQ(b.entries()[2].key, "");
    }).isOk());
    EXPECT_EQ(records, 1);
}

TEST(WalTest, MissingFileReplaysNothing)
{
    int records = 0;
    ASSERT_TRUE(WriteAheadLog::replay(
                    "/nonexistent/ethkv/wal.log",
                    [&](const WriteBatch &, uint64_t) { ++records; })
                    .isOk());
    EXPECT_EQ(records, 0);
}

TEST(WalTest, TornTailStopsCleanly)
{
    ScratchDir dir("wal");
    std::string path = dir.path() + "/wal.log";
    {
        auto wal = WriteAheadLog::open(path);
        ASSERT_TRUE(wal.ok());
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(
                wal.value()->append(sampleBatch(i), i).isOk());
        ASSERT_TRUE(wal.value()->sync().isOk());
    }
    // Chop bytes off the final record to simulate a crash mid-write.
    auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 3);

    int records = 0;
    ASSERT_TRUE(WriteAheadLog::replay(
                    path,
                    [&](const WriteBatch &, uint64_t) { ++records; })
                    .isOk());
    EXPECT_EQ(records, 4);
}

TEST(WalTest, CorruptRecordStopsReplay)
{
    ScratchDir dir("wal");
    std::string path = dir.path() + "/wal.log";
    {
        auto wal = WriteAheadLog::open(path);
        ASSERT_TRUE(wal.ok());
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(
                wal.value()->append(sampleBatch(i), i).isOk());
        ASSERT_TRUE(wal.value()->sync().isOk());
    }
    // Flip a byte inside the second record's payload.
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0xff));
    f.close();

    int records = 0;
    ASSERT_TRUE(WriteAheadLog::replay(
                    path,
                    [&](const WriteBatch &, uint64_t) { ++records; })
                    .isOk());
    EXPECT_LT(records, 3);
}

TEST(WalTest, ResetTruncates)
{
    ScratchDir dir("wal");
    std::string path = dir.path() + "/wal.log";
    auto wal = WriteAheadLog::open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->append(sampleBatch(1), 1).isOk());
    EXPECT_GT(wal.value()->sizeBytes(), 0u);
    ASSERT_TRUE(wal.value()->reset().isOk());
    EXPECT_EQ(wal.value()->sizeBytes(), 0u);
    ASSERT_TRUE(wal.value()->append(sampleBatch(2), 2).isOk());
    ASSERT_TRUE(wal.value()->sync().isOk());

    int records = 0;
    ASSERT_TRUE(WriteAheadLog::replay(
                    path,
                    [&](const WriteBatch &, uint64_t) { ++records; })
                    .isOk());
    EXPECT_EQ(records, 1);
}

TEST(WalTest, AppendAfterReopenPreservesOldRecords)
{
    ScratchDir dir("wal");
    std::string path = dir.path() + "/wal.log";
    {
        auto wal = WriteAheadLog::open(path);
        ASSERT_TRUE(wal.ok());
        ASSERT_TRUE(wal.value()->append(sampleBatch(1), 1).isOk());
        ASSERT_TRUE(wal.value()->sync().isOk());
    }
    {
        auto wal = WriteAheadLog::open(path);
        ASSERT_TRUE(wal.ok());
        ASSERT_TRUE(wal.value()->append(sampleBatch(2), 2).isOk());
        ASSERT_TRUE(wal.value()->sync().isOk());
    }
    int records = 0;
    ASSERT_TRUE(WriteAheadLog::replay(
                    path,
                    [&](const WriteBatch &, uint64_t) { ++records; })
                    .isOk());
    EXPECT_EQ(records, 2);
}

} // namespace
} // namespace ethkv::kv
