/**
 * @file
 * ShardedKVStore tests (DESIGN.md §15): routing determinism and
 * disjointness, the merged-scan ordering property against a
 * single-store oracle, lossless paging resume across shard
 * boundaries, cross-shard BATCH ack semantics under an injected
 * one-shard WAL failure (with a restart to prove no acked state
 * was partial), and the SHARDS marker refusing a mismatched
 * reopen.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hh"
#include "common/fault_env.hh"
#include "common/rand.hh"
#include "kvstore/btree_store.hh"
#include "kvstore/log_store.hh"
#include "kvstore/sharded_store.hh"
#include "kvstore/write_batch.hh"
#include "obs/metrics.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

/** N BTreeStore shards with per-shard locks, plus an isolated
 *  metrics registry so counter assertions stay exact. */
std::unique_ptr<ShardedKVStore>
makeBTreeSharded(uint32_t n, obs::MetricsRegistry &reg)
{
    std::vector<std::unique_ptr<KVStore>> shards;
    for (uint32_t i = 0; i < n; ++i)
        shards.push_back(std::make_unique<BTreeStore>());
    ShardedOptions o;
    o.lock_shards = true;
    o.metrics = &reg;
    return std::make_unique<ShardedKVStore>(std::move(shards), o);
}

TEST(ShardedStoreTest, ShardOfIsDeterministicAndCoversAllShards)
{
    const uint32_t n = 8;
    std::vector<uint64_t> hits(n, 0);
    for (uint64_t i = 0; i < 4096; ++i) {
        Bytes key = makeKey(i);
        uint32_t s = ShardedKVStore::shardOf(key, n);
        ASSERT_LT(s, n);
        // Routing is a pure function of the key bytes.
        EXPECT_EQ(s, ShardedKVStore::shardOf(key, n));
        ++hits[s];
    }
    // xxhash64 spreads the synthetic keyspace; no shard may be
    // starved or own more than a loose multiple of its fair share.
    for (uint32_t s = 0; s < n; ++s) {
        EXPECT_GT(hits[s], 4096 / n / 4) << "shard " << s;
        EXPECT_LT(hits[s], 4096 / n * 4) << "shard " << s;
    }
    // One shard degenerates to identity routing.
    EXPECT_EQ(ShardedKVStore::shardOf(makeKey(1), 1), 0u);
}

TEST(ShardedStoreTest, PointOpsRouteToExactlyOneShard)
{
    obs::MetricsRegistry reg;
    auto store = makeBTreeSharded(4, reg);
    const uint64_t n = 256;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(store->put(makeKey(i), makeValue(i)).isOk());

    for (uint64_t i = 0; i < n; ++i) {
        uint32_t owner = ShardedKVStore::shardOf(makeKey(i), 4);
        uint64_t holders = 0;
        for (uint32_t s = 0; s < 4; ++s) {
            Bytes v;
            if (store->shard(s).get(makeKey(i), v).isOk()) {
                ++holders;
                EXPECT_EQ(s, owner);
                EXPECT_EQ(v, makeValue(i));
            }
        }
        EXPECT_EQ(holders, 1u) << "key " << i;
    }
    EXPECT_EQ(store->liveKeyCount(), n);

    // Deletes route identically: the key vanishes everywhere.
    ASSERT_TRUE(store->del(makeKey(7)).isOk());
    EXPECT_FALSE(store->contains(makeKey(7)));
    EXPECT_EQ(store->liveKeyCount(), n - 1);
}

// The central ordering property: a merged scan over hash-disjoint
// shards is byte-identical to the same scan on one store holding
// all the data — for the full range and for random subranges, on a
// keyspace sized to force many merge-chunk refills per shard.
TEST(ShardedStoreTest, MergedScanMatchesSingleStoreOracle)
{
    obs::MetricsRegistry reg;
    auto sharded = makeBTreeSharded(5, reg);
    BTreeStore oracle;

    Rng rng(20260807);
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        // Variable-length random keys: exercises ordering beyond
        // the fixed-width makeKey shape (prefix relations, ties in
        // length, binary bytes).
        Bytes key = rng.nextBytes(1 + rng.nextBounded(24));
        Bytes value = rng.nextBytes(rng.nextBounded(48));
        ASSERT_TRUE(sharded->put(key, value).isOk());
        ASSERT_TRUE(oracle.put(key, value).isOk());
    }

    auto collect = [](KVStore &s, BytesView lo, BytesView hi) {
        std::vector<std::pair<Bytes, Bytes>> out;
        EXPECT_TRUE(s.scan(lo, hi,
                           [&out](BytesView k, BytesView v) {
                               out.emplace_back(Bytes(k),
                                                Bytes(v));
                               return true;
                           })
                        .isOk());
        return out;
    };

    EXPECT_EQ(collect(*sharded, Bytes(), Bytes()),
              collect(oracle, Bytes(), Bytes()));
    for (int round = 0; round < 16; ++round) {
        Bytes a = rng.nextBytes(1 + rng.nextBounded(8));
        Bytes b = rng.nextBytes(1 + rng.nextBounded(8));
        if (b < a)
            std::swap(a, b);
        EXPECT_EQ(collect(*sharded, a, b), collect(oracle, a, b))
            << "round " << round;
    }
    EXPECT_GT(reg.counter("kv.sharded.scan_merges").value(), 0u);
}

// The wire paging contract: stop after P entries, resume from
// `last key + '\0'`, repeat. The concatenation of pages must be
// exactly the unpaged scan — no loss or repeat at page boundaries,
// which here also land mid-merge across shard cursors.
TEST(ShardedStoreTest, PagedScanResumesLosslessly)
{
    obs::MetricsRegistry reg;
    auto store = makeBTreeSharded(3, reg);
    const uint64_t n = 1500;
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_TRUE(store->put(makeKey(i), makeValue(i)).isOk());

    std::vector<Bytes> full;
    ASSERT_TRUE(store
                    ->scan(Bytes(), Bytes(),
                           [&full](BytesView k, BytesView) {
                               full.emplace_back(k);
                               return true;
                           })
                    .isOk());
    ASSERT_EQ(full.size(), n);

    // Page sizes chosen to land boundaries on, below, and above
    // the internal merge chunk (128).
    for (size_t page : {1u, 7u, 127u, 128u, 129u, 500u}) {
        std::vector<Bytes> paged;
        Bytes cursor; // empty = keyspace start
        for (;;) {
            size_t before = paged.size();
            ASSERT_TRUE(
                store
                    ->scan(cursor, Bytes(),
                           [&paged, before,
                            page](BytesView k, BytesView) {
                               paged.emplace_back(k);
                               return paged.size() - before <
                                      page;
                           })
                    .isOk());
            size_t got = paged.size() - before;
            if (got < page)
                break;
            cursor = paged.back();
            cursor.push_back('\0');
        }
        EXPECT_EQ(paged, full) << "page size " << page;
    }
}

TEST(ShardedStoreTest, CrossShardBatchSplitsAndCounts)
{
    obs::MetricsRegistry reg;
    auto store = makeBTreeSharded(4, reg);

    WriteBatch batch;
    const uint64_t n = 64; // hashes cover all 4 shards w.h.p.
    for (uint64_t i = 0; i < n; ++i)
        batch.put(makeKey(i), makeValue(i));
    ASSERT_TRUE(store->apply(batch).isOk());
    EXPECT_EQ(store->liveKeyCount(), n);
    EXPECT_EQ(reg.counter("kv.sharded.cross_shard_batches").value(),
              1u);

    // Batch entries landed on the shard the router predicts.
    for (uint64_t i = 0; i < n; ++i) {
        Bytes v;
        uint32_t owner = ShardedKVStore::shardOf(makeKey(i), 4);
        EXPECT_TRUE(store->shard(owner).get(makeKey(i), v).isOk());
    }

    // A batch confined to one shard is not a cross-shard batch.
    WriteBatch one;
    one.put(makeKey(0), makeValue(1));
    ASSERT_TRUE(store->apply(one).isOk());
    EXPECT_EQ(reg.counter("kv.sharded.cross_shard_batches").value(),
              1u);
}

/**
 * One shard's WAL breaks mid cross-shard BATCH: the apply must
 * fail (no ack), and after a restart no *acked* batch may be
 * partial. The earlier acked batch survives in full; the failed
 * batch's key on the broken shard is absent — the applied prefix
 * on healthy shards is permitted precisely because the batch was
 * never acknowledged (the header contract, and why CacheTier
 * invalidates even failed applies).
 */
TEST(ShardedStoreTest, OneShardWalFailureMeansNoAckAndNoTornAck)
{
    ScratchDir dir("sharded_fault");
    Env *base = Env::defaultEnv();
    const uint32_t kShards = 3;

    // Pick one probe key per shard so the batch deterministically
    // crosses all three.
    std::vector<Bytes> key_for(kShards);
    std::vector<bool> found(kShards, false);
    for (uint64_t i = 0; !std::all_of(found.begin(), found.end(),
                                      [](bool b) { return b; });
         ++i) {
        uint32_t s = ShardedKVStore::shardOf(makeKey(i), kShards);
        if (!found[s]) {
            found[s] = true;
            key_for[s] = makeKey(i);
        }
    }

    // Shard 1 gets its own FaultInjectionEnv (fault switches are
    // per-env, and only this shard should break).
    FaultInjectionEnv fault(base, 7);
    auto open_all = [&](bool with_fault) {
        std::vector<std::unique_ptr<KVStore>> shards;
        for (uint32_t i = 0; i < kShards; ++i) {
            LogStoreOptions lo;
            lo.dir = dir.path() + "/shard-" + std::to_string(i);
            lo.sync_appends = true;
            lo.env = (with_fault && i == 1) ? &fault : base;
            EXPECT_TRUE(base->createDirs(lo.dir).isOk());
            auto opened = AppendLogStore::open(lo);
            EXPECT_TRUE(opened.ok()) << opened.status().toString();
            shards.push_back(opened.take());
        }
        ShardedOptions o;
        o.lock_shards = true;
        return std::make_unique<ShardedKVStore>(std::move(shards),
                                                o);
    };

    {
        auto store = open_all(/*with_fault=*/true);

        // Acked cross-shard batch: every shard healthy.
        WriteBatch acked;
        for (uint32_t s = 0; s < kShards; ++s)
            acked.put(key_for[s], makeValue(s, 32));
        ASSERT_TRUE(store->apply(acked).isOk());

        // Break shard 1's WAL, then try another cross-shard batch.
        fault.setWriteError(true);
        WriteBatch doomed;
        for (uint32_t s = 0; s < kShards; ++s)
            doomed.put(key_for[s], makeValue(100 + s, 32));
        Status st = store->apply(doomed);
        ASSERT_FALSE(st.isOk()) << "apply must not ack";
        fault.setWriteError(false);
    }

    // Restart: reopen every shard from disk, fault cleared.
    auto store = open_all(/*with_fault=*/false);
    // The acked batch is whole — on the broken shard the acked
    // value is still the acked one, not the doomed overwrite.
    Bytes v;
    ASSERT_TRUE(store->get(key_for[1], v).isOk());
    EXPECT_EQ(v, makeValue(1, 32));
    for (uint32_t s = 0; s < kShards; ++s) {
        ASSERT_TRUE(store->get(key_for[s], v).isOk());
        Bytes doomed_value = makeValue(100 + s, 32);
        if (s == 1)
            EXPECT_EQ(v, makeValue(s, 32));
        else
            EXPECT_TRUE(v == makeValue(s, 32) ||
                        v == doomed_value)
                << "healthy shard may hold the unacked prefix";
    }
}

TEST(ShardedStoreTest, ShardMarkerRefusesMismatchedReopen)
{
    ScratchDir dir("sharded_marker");
    Env *env = Env::defaultEnv();
    ASSERT_TRUE(
        ShardedKVStore::checkShardMarker(env, dir.path(), 4)
            .isOk());
    // Same count: fine. Different count: refused, not rewritten.
    EXPECT_TRUE(
        ShardedKVStore::checkShardMarker(env, dir.path(), 4)
            .isOk());
    Status s =
        ShardedKVStore::checkShardMarker(env, dir.path(), 8);
    EXPECT_EQ(s.code(), StatusCode::InvalidArgument);
    EXPECT_TRUE(
        ShardedKVStore::checkShardMarker(env, dir.path(), 4)
            .isOk());
}

TEST(ShardedStoreTest, StatsAndNameAggregateAcrossShards)
{
    obs::MetricsRegistry reg;
    auto store = makeBTreeSharded(2, reg);
    ASSERT_TRUE(store->put(makeKey(1), makeValue(1)).isOk());
    ASSERT_TRUE(store->put(makeKey(2), makeValue(2)).isOk());
    Bytes v;
    ASSERT_TRUE(store->get(makeKey(1), v).isOk());

    const IOStats &st = store->stats();
    EXPECT_EQ(st.user_writes, 2u);
    EXPECT_EQ(st.user_reads, 1u);
    EXPECT_EQ(store->name(), "sharded(btree x2)");
    EXPECT_EQ(reg.gauge("kv.sharded.shards").value(), 2);
}

} // namespace
} // namespace ethkv::kv
