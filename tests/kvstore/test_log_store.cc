/**
 * @file
 * Append-log engine tests: CRUD, segment sealing, batched GC
 * reclamation, and the no-scan contract. Includes HashStore tests,
 * which share the unordered-engine contract.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "common/env.hh"
#include "common/fault_env.hh"
#include "kvstore/hash_store.hh"
#include "kvstore/log_store.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;

TEST(LogStoreTest, PutGetDelete)
{
    AppendLogStore store;
    EXPECT_TRUE(store.put("a", "1").isOk());
    Bytes v;
    ASSERT_TRUE(store.get("a", v).isOk());
    EXPECT_EQ(v, "1");
    EXPECT_TRUE(store.del("a").isOk());
    EXPECT_TRUE(store.get("a", v).isNotFound());
    EXPECT_EQ(store.liveKeyCount(), 0u);
}

TEST(LogStoreTest, OverwriteReturnsLatest)
{
    AppendLogStore store;
    ASSERT_TRUE(store.put("k", "old").isOk());
    ASSERT_TRUE(store.put("k", "new").isOk());
    Bytes v;
    ASSERT_TRUE(store.get("k", v).isOk());
    EXPECT_EQ(v, "new");
    EXPECT_EQ(store.liveKeyCount(), 1u);
}

TEST(LogStoreTest, ScanUnsupported)
{
    AppendLogStore store;
    ASSERT_TRUE(store.put("k", "v").isOk());
    Status s = store.scan(BytesView(), BytesView(),
                          [](BytesView, BytesView) { return true; });
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
}

TEST(LogStoreTest, SegmentsSealAsDataGrows)
{
    LogStoreOptions opts;
    opts.segment_bytes = 4096;
    AppendLogStore store(opts);
    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i, 64)).isOk());
    EXPECT_GT(store.segmentCount(), 3u);
    // All keys still readable across segments.
    for (uint64_t i = 0; i < 500; ++i) {
        Bytes v;
        ASSERT_TRUE(store.get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i, 64));
    }
}

TEST(LogStoreTest, GcReclaimsDeletedSpace)
{
    LogStoreOptions opts;
    opts.segment_bytes = 4096;
    opts.gc_dead_ratio = 0.5;
    AppendLogStore store(opts);

    for (uint64_t i = 0; i < 1000; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i, 64)).isOk());
    uint64_t before = store.residentBytes();

    // Delete 80% of the keys; sealed segments cross the dead
    // threshold and are rewritten.
    for (uint64_t i = 0; i < 1000; ++i)
        if (i % 5 != 0)
            ASSERT_TRUE(store.del(makeKey(i)).isOk());

    EXPECT_GT(store.stats().gc_runs, 0u);
    EXPECT_GT(store.stats().gc_bytes, 0u);
    EXPECT_LT(store.residentBytes(), before / 2);

    // Survivors intact after GC moved them.
    for (uint64_t i = 0; i < 1000; i += 5) {
        Bytes v;
        ASSERT_TRUE(store.get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i, 64));
    }
    EXPECT_EQ(store.liveKeyCount(), 200u);
}

TEST(LogStoreTest, DeleteHeavyChurnStaysBounded)
{
    // Models TxLookup: insert a window, delete the tail, repeat.
    LogStoreOptions opts;
    opts.segment_bytes = 8192;
    AppendLogStore store(opts);
    const uint64_t window = 200;
    for (uint64_t i = 0; i < 5000; ++i) {
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i, 40)).isOk());
        if (i >= window)
            ASSERT_TRUE(store.del(makeKey(i - window)).isOk());
    }
    EXPECT_EQ(store.liveKeyCount(), window);
    // Resident bytes should be within a small factor of live bytes,
    // not proportional to total writes.
    EXPECT_LT(store.residentBytes(), 20 * window * 60);
}

TEST(LogStoreTest, NoTombstoneOverheadMetrics)
{
    AppendLogStore store;
    ASSERT_TRUE(store.put("k", "v").isOk());
    ASSERT_TRUE(store.del("k").isOk());
    EXPECT_EQ(store.stats().tombstones_written, 0u);
    EXPECT_EQ(store.stats().compaction_bytes, 0u);
}

TEST(HashStoreTest, BasicContract)
{
    HashStore store;
    EXPECT_TRUE(store.put("a", "1").isOk());
    EXPECT_TRUE(store.put("b", "2").isOk());
    Bytes v;
    ASSERT_TRUE(store.get("a", v).isOk());
    EXPECT_EQ(v, "1");
    EXPECT_TRUE(store.del("a").isOk());
    EXPECT_TRUE(store.get("a", v).isNotFound());
    EXPECT_EQ(store.liveKeyCount(), 1u);

    Status s = store.scan(BytesView(), BytesView(),
                          [](BytesView, BytesView) { return true; });
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
}

TEST(HashStoreTest, WriteAmplificationIsOne)
{
    HashStore store;
    uint64_t logical = 0;
    for (uint64_t i = 0; i < 100; ++i) {
        Bytes k = makeKey(i), v = makeValue(i);
        logical += k.size() + v.size();
        ASSERT_TRUE(store.put(k, v).isOk());
    }
    EXPECT_EQ(store.stats().bytes_written, logical);
}

TEST(HashStoreTest, ContainsHelper)
{
    HashStore store;
    ASSERT_TRUE(store.put("x", "1").isOk());
    EXPECT_TRUE(store.contains("x"));
    EXPECT_FALSE(store.contains("y"));
}

TEST(HashStoreTest, ApplyBatchAtomicSemantics)
{
    HashStore store;
    WriteBatch batch;
    batch.put("a", "1");
    batch.put("b", "2");
    batch.del("a");
    ASSERT_TRUE(store.apply(batch).isOk());
    Bytes v;
    EXPECT_TRUE(store.get("a", v).isNotFound());
    ASSERT_TRUE(store.get("b", v).isOk());
    EXPECT_EQ(v, "2");
}

// -- WAL checkpoint (snapshot + truncate) ------------------------

using testutil::ScratchDir;

std::unique_ptr<AppendLogStore>
openDurable(const std::string &dir, Env *env = nullptr,
            uint64_t checkpoint_wal_bytes = 0)
{
    LogStoreOptions opts;
    opts.dir = dir;
    opts.sync_appends = true;
    opts.env = env;
    opts.checkpoint_wal_bytes = checkpoint_wal_bytes;
    auto store = AppendLogStore::open(opts);
    EXPECT_TRUE(store.ok()) << store.status().message();
    return store.ok() ? store.take() : nullptr;
}

TEST(LogStoreCheckpointTest, ReplayAfterCheckpoint)
{
    ScratchDir dir("log_ckpt");
    {
        auto store = openDurable(dir.path());
        ASSERT_TRUE(store);
        for (uint64_t i = 0; i < 200; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 48)).isOk());
        for (uint64_t i = 0; i < 50; ++i)
            ASSERT_TRUE(store->del(makeKey(i)).isOk());

        uint64_t wal_before = store->walSizeBytes();
        ASSERT_GT(wal_before, 0u);
        ASSERT_TRUE(store->checkpoint().isOk());
        EXPECT_EQ(store->checkpointCount(), 1u);
        EXPECT_EQ(store->walSizeBytes(), 0u);

        // Post-checkpoint writes land in the fresh WAL.
        for (uint64_t i = 200; i < 260; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 48)).isOk());
        EXPECT_GT(store->walSizeBytes(), 0u);
    }
    // Recovery = snapshot replay + fresh-WAL replay.
    auto store = openDurable(dir.path());
    ASSERT_TRUE(store);
    EXPECT_EQ(store->liveKeyCount(), 210u);
    Bytes v;
    EXPECT_TRUE(store->get(makeKey(10), v).isNotFound());
    ASSERT_TRUE(store->get(makeKey(100), v).isOk());
    EXPECT_EQ(v, makeValue(100, 48));
    ASSERT_TRUE(store->get(makeKey(230), v).isOk());
    EXPECT_EQ(v, makeValue(230, 48));
}

TEST(LogStoreCheckpointTest, AutoCheckpointBoundsWalGrowth)
{
    ScratchDir dir("log_auto_ckpt");
    {
        auto store = openDurable(dir.path(), nullptr, 8192);
        ASSERT_TRUE(store);
        for (uint64_t i = 0; i < 400; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i % 64), makeValue(i, 64))
                    .isOk());
        EXPECT_GT(store->checkpointCount(), 1u);
        // The WAL never grows much past the threshold: one more
        // record at most before the next checkpoint fires.
        EXPECT_LT(store->walSizeBytes(), 2u * 8192);
    }
    auto store = openDurable(dir.path());
    ASSERT_TRUE(store);
    EXPECT_EQ(store->liveKeyCount(), 64u);
    Bytes v;
    ASSERT_TRUE(store->get(makeKey(0), v).isOk());
    EXPECT_EQ(v, makeValue(384, 64));
}

TEST(LogStoreCheckpointTest, StaleTmpSnapshotIgnoredOnRecovery)
{
    // Crash window 1: power loss while snapshot.tmp was being
    // written, before the rename. The tmp file — torn, arbitrary
    // garbage — must not affect recovery, which still has the old
    // snapshot+WAL pair.
    ScratchDir dir("log_ckpt_tmp");
    {
        auto store = openDurable(dir.path());
        ASSERT_TRUE(store);
        for (uint64_t i = 0; i < 100; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 32)).isOk());
        ASSERT_TRUE(store->checkpoint().isOk());
        for (uint64_t i = 100; i < 120; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 32)).isOk());
    }
    {
        std::ofstream tmp(dir.path() + "/snapshot.tmp",
                          std::ios::binary);
        tmp << "torn checkpoint garbage \x01\x02\x03";
    }
    auto store = openDurable(dir.path());
    ASSERT_TRUE(store);
    EXPECT_EQ(store->liveKeyCount(), 120u);
    EXPECT_FALSE(std::filesystem::exists(dir.path() +
                                         "/snapshot.tmp"));
}

TEST(LogStoreCheckpointTest, WalReplayOverSnapshotIsIdempotent)
{
    // Crash window 2: power loss after the snapshot rename but
    // before the WAL truncate — the snapshot already contains the
    // WAL's final state AND the WAL still holds every record.
    // Reconstruct that exact disk state by saving the WAL bytes
    // and restoring them after checkpoint() truncates.
    ScratchDir dir("log_ckpt_idem");
    std::string wal_path = dir.path() + "/log.wal";
    {
        auto store = openDurable(dir.path());
        ASSERT_TRUE(store);
        for (uint64_t i = 0; i < 80; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 40)).isOk());
        for (uint64_t i = 0; i < 20; ++i)
            ASSERT_TRUE(store->del(makeKey(i)).isOk());

        std::ifstream in(wal_path, std::ios::binary);
        std::string wal_bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        in.close();
        ASSERT_FALSE(wal_bytes.empty());

        ASSERT_TRUE(store->checkpoint().isOk());
        // Close before the file surgery below.
        store.reset();

        std::ofstream out(wal_path, std::ios::binary);
        out << wal_bytes;
    }
    auto store = openDurable(dir.path());
    ASSERT_TRUE(store);
    EXPECT_EQ(store->liveKeyCount(), 60u);
    Bytes v;
    EXPECT_TRUE(store->get(makeKey(5), v).isNotFound());
    ASSERT_TRUE(store->get(makeKey(60), v).isOk());
    EXPECT_EQ(v, makeValue(60, 40));
}

TEST(LogStoreCheckpointTest, SyncFailureDegradesAndOldStateSafe)
{
    ScratchDir dir("log_ckpt_fault");
    FaultInjectionEnv fault(Env::defaultEnv(), 17);
    {
        auto store = openDurable(dir.path(), &fault);
        ASSERT_TRUE(store);
        for (uint64_t i = 0; i < 60; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 32)).isOk());

        // A checkpoint that cannot sync its snapshot must fail,
        // degrade the store, and leave the old WAL untouched.
        fault.setSyncError(true);
        EXPECT_FALSE(store->checkpoint().isOk());
        EXPECT_TRUE(store->isDegraded());
        EXPECT_TRUE(store
                        ->put(makeKey(999), makeValue(999, 8))
                        .isIODegraded());
        // Reads still serve while degraded.
        Bytes v;
        ASSERT_TRUE(store->get(makeKey(3), v).isOk());
        EXPECT_EQ(v, makeValue(3, 32));
        fault.setSyncError(false);
    }
    // Everything acked before the failed checkpoint recovers.
    auto store = openDurable(dir.path(), &fault);
    ASSERT_TRUE(store);
    EXPECT_EQ(store->liveKeyCount(), 60u);
    EXPECT_EQ(store->checkpointCount(), 0u);
}

TEST(LogStoreCheckpointTest, CrashAfterCheckpointKeepsSnapshot)
{
    // Unsynced post-checkpoint writes may be lost on power loss;
    // the checkpointed state itself must never be.
    ScratchDir dir("log_ckpt_crash");
    FaultInjectionEnv fault(Env::defaultEnv(), 23);
    {
        LogStoreOptions opts;
        opts.dir = dir.path();
        opts.sync_appends = false; // post-checkpoint tail unsynced
        opts.env = &fault;
        auto opened = AppendLogStore::open(opts);
        ASSERT_TRUE(opened.ok());
        auto store = opened.take();
        for (uint64_t i = 0; i < 50; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 32)).isOk());
        ASSERT_TRUE(store->checkpoint().isOk());
        for (uint64_t i = 50; i < 70; ++i)
            ASSERT_TRUE(
                store->put(makeKey(i), makeValue(i, 32)).isOk());
        fault.simulateCrash();
    }
    fault.reactivate();
    auto store = openDurable(dir.path(), &fault);
    ASSERT_TRUE(store);
    // At least the checkpoint survives; possibly some tail too.
    EXPECT_GE(store->liveKeyCount(), 50u);
    Bytes v;
    for (uint64_t i = 0; i < 50; ++i) {
        ASSERT_TRUE(store->get(makeKey(i), v).isOk())
            << "checkpointed key " << i << " lost";
        EXPECT_EQ(v, makeValue(i, 32));
    }
}

} // namespace
} // namespace ethkv::kv
