/**
 * @file
 * Append-log engine tests: CRUD, segment sealing, batched GC
 * reclamation, and the no-scan contract. Includes HashStore tests,
 * which share the unordered-engine contract.
 */

#include <gtest/gtest.h>

#include "kvstore/hash_store.hh"
#include "kvstore/log_store.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;

TEST(LogStoreTest, PutGetDelete)
{
    AppendLogStore store;
    EXPECT_TRUE(store.put("a", "1").isOk());
    Bytes v;
    ASSERT_TRUE(store.get("a", v).isOk());
    EXPECT_EQ(v, "1");
    EXPECT_TRUE(store.del("a").isOk());
    EXPECT_TRUE(store.get("a", v).isNotFound());
    EXPECT_EQ(store.liveKeyCount(), 0u);
}

TEST(LogStoreTest, OverwriteReturnsLatest)
{
    AppendLogStore store;
    ASSERT_TRUE(store.put("k", "old").isOk());
    ASSERT_TRUE(store.put("k", "new").isOk());
    Bytes v;
    ASSERT_TRUE(store.get("k", v).isOk());
    EXPECT_EQ(v, "new");
    EXPECT_EQ(store.liveKeyCount(), 1u);
}

TEST(LogStoreTest, ScanUnsupported)
{
    AppendLogStore store;
    ASSERT_TRUE(store.put("k", "v").isOk());
    Status s = store.scan(BytesView(), BytesView(),
                          [](BytesView, BytesView) { return true; });
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
}

TEST(LogStoreTest, SegmentsSealAsDataGrows)
{
    LogStoreOptions opts;
    opts.segment_bytes = 4096;
    AppendLogStore store(opts);
    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i, 64)).isOk());
    EXPECT_GT(store.segmentCount(), 3u);
    // All keys still readable across segments.
    for (uint64_t i = 0; i < 500; ++i) {
        Bytes v;
        ASSERT_TRUE(store.get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i, 64));
    }
}

TEST(LogStoreTest, GcReclaimsDeletedSpace)
{
    LogStoreOptions opts;
    opts.segment_bytes = 4096;
    opts.gc_dead_ratio = 0.5;
    AppendLogStore store(opts);

    for (uint64_t i = 0; i < 1000; ++i)
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i, 64)).isOk());
    uint64_t before = store.residentBytes();

    // Delete 80% of the keys; sealed segments cross the dead
    // threshold and are rewritten.
    for (uint64_t i = 0; i < 1000; ++i)
        if (i % 5 != 0)
            ASSERT_TRUE(store.del(makeKey(i)).isOk());

    EXPECT_GT(store.stats().gc_runs, 0u);
    EXPECT_GT(store.stats().gc_bytes, 0u);
    EXPECT_LT(store.residentBytes(), before / 2);

    // Survivors intact after GC moved them.
    for (uint64_t i = 0; i < 1000; i += 5) {
        Bytes v;
        ASSERT_TRUE(store.get(makeKey(i), v).isOk()) << i;
        EXPECT_EQ(v, makeValue(i, 64));
    }
    EXPECT_EQ(store.liveKeyCount(), 200u);
}

TEST(LogStoreTest, DeleteHeavyChurnStaysBounded)
{
    // Models TxLookup: insert a window, delete the tail, repeat.
    LogStoreOptions opts;
    opts.segment_bytes = 8192;
    AppendLogStore store(opts);
    const uint64_t window = 200;
    for (uint64_t i = 0; i < 5000; ++i) {
        ASSERT_TRUE(store.put(makeKey(i), makeValue(i, 40)).isOk());
        if (i >= window)
            ASSERT_TRUE(store.del(makeKey(i - window)).isOk());
    }
    EXPECT_EQ(store.liveKeyCount(), window);
    // Resident bytes should be within a small factor of live bytes,
    // not proportional to total writes.
    EXPECT_LT(store.residentBytes(), 20 * window * 60);
}

TEST(LogStoreTest, NoTombstoneOverheadMetrics)
{
    AppendLogStore store;
    ASSERT_TRUE(store.put("k", "v").isOk());
    ASSERT_TRUE(store.del("k").isOk());
    EXPECT_EQ(store.stats().tombstones_written, 0u);
    EXPECT_EQ(store.stats().compaction_bytes, 0u);
}

TEST(HashStoreTest, BasicContract)
{
    HashStore store;
    EXPECT_TRUE(store.put("a", "1").isOk());
    EXPECT_TRUE(store.put("b", "2").isOk());
    Bytes v;
    ASSERT_TRUE(store.get("a", v).isOk());
    EXPECT_EQ(v, "1");
    EXPECT_TRUE(store.del("a").isOk());
    EXPECT_TRUE(store.get("a", v).isNotFound());
    EXPECT_EQ(store.liveKeyCount(), 1u);

    Status s = store.scan(BytesView(), BytesView(),
                          [](BytesView, BytesView) { return true; });
    EXPECT_EQ(s.code(), StatusCode::NotSupported);
}

TEST(HashStoreTest, WriteAmplificationIsOne)
{
    HashStore store;
    uint64_t logical = 0;
    for (uint64_t i = 0; i < 100; ++i) {
        Bytes k = makeKey(i), v = makeValue(i);
        logical += k.size() + v.size();
        ASSERT_TRUE(store.put(k, v).isOk());
    }
    EXPECT_EQ(store.stats().bytes_written, logical);
}

TEST(HashStoreTest, ContainsHelper)
{
    HashStore store;
    ASSERT_TRUE(store.put("x", "1").isOk());
    EXPECT_TRUE(store.contains("x"));
    EXPECT_FALSE(store.contains("y"));
}

TEST(HashStoreTest, ApplyBatchAtomicSemantics)
{
    HashStore store;
    WriteBatch batch;
    batch.put("a", "1");
    batch.put("b", "2");
    batch.del("a");
    ASSERT_TRUE(store.apply(batch).isOk());
    Bytes v;
    EXPECT_TRUE(store.get("a", v).isNotFound());
    ASSERT_TRUE(store.get("b", v).isOk());
    EXPECT_EQ(v, "2");
}

} // namespace
} // namespace ethkv::kv
