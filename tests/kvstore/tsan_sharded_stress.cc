/**
 * @file
 * ThreadSanitizer stress for ShardedKVStore over live LSM shards,
 * always built with -fsanitize=thread (see tests/CMakeLists.txt,
 * ctest entry sharded.tsan_multi_shard_stress).
 *
 * Four LSM shards with tiny memtables, so every shard's private
 * maintenance thread flushes and compacts continuously, while
 * writers issue point ops and cross-shard batches, scanners drive
 * the k-way merge (which interleaves chunked cursors over all four
 * engines), a flusher exercises the whole-store barrier, and a
 * stats poller merges per-shard counters. A data race anywhere in
 * the router — cursor buffers, sub-batch split, the flush mutex,
 * the merged-stats path — fails every plain `ctest` run.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.hh"
#include "kvstore/lsm_store.hh"
#include "kvstore/sharded_store.hh"
#include "kvstore/write_batch.hh"
#include "test_util.hh"

using namespace ethkv;

namespace
{

std::atomic<int> failures{0};

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "tsan_sharded_stress: FAILED: %s\n",
                     what);
        ++failures;
    }
}

constexpr uint32_t num_shards = 4;
constexpr int num_writers = 4;
constexpr int num_scanners = 2;
constexpr auto run_time = std::chrono::seconds(4);

Bytes
key(int writer, uint64_t i)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "w%02d-%010llu", writer,
                  static_cast<unsigned long long>(i));
    return buf;
}

void
writerBody(kv::ShardedKVStore &store,
           std::chrono::steady_clock::time_point deadline,
           int writer)
{
    Bytes value(96, static_cast<char>('a' + writer));
    uint64_t i = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        uint64_t k = i % 3000;
        check(store.put(key(writer, k), value).isOk(),
              "writer put");
        if (i % 5 == 0) {
            // Cross-shard batch: sequential keys hash across all
            // shards, driving the sub-batch split concurrently
            // with other writers' batches.
            kv::WriteBatch batch;
            for (uint64_t j = 0; j < 8; ++j)
                batch.put(key(writer, (k + j) % 3000), value);
            batch.del(key(writer, (k + 1500) % 3000));
            check(store.apply(batch).isOk(), "writer batch");
        }
        if (i % 997 == 0) {
            Bytes got;
            check(store.get(key(writer, k), got).isOk(),
                  "writer read-own-write");
        }
        ++i;
    }
}

void
scannerBody(kv::ShardedKVStore &store,
            std::chrono::steady_clock::time_point deadline,
            int scanner)
{
    while (std::chrono::steady_clock::now() < deadline) {
        // The merged stream must be strictly ascending no matter
        // which shard's cursor refills mid-merge.
        int target = scanner * 3 % num_writers;
        Bytes prev;
        Status s = store.scan(
            key(target, 0), key(target, 9999999999ull),
            [&prev](BytesView k, BytesView) {
                if (!prev.empty() && BytesView(prev) >= k) {
                    check(false, "merged scan order");
                    return false;
                }
                prev = Bytes(k);
                return true;
            });
        check(s.isOk(), "scan status");
    }
}

void
maintBody(kv::ShardedKVStore &store,
          std::chrono::steady_clock::time_point deadline)
{
    while (std::chrono::steady_clock::now() < deadline) {
        check(store.flush().isOk(), "barrier flush");
        store.stats();
        store.liveKeyCount();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

} // namespace

int
main()
{
    testutil::ScratchDir dir("tsan_sharded");
    std::vector<std::unique_ptr<kv::KVStore>> shards;
    for (uint32_t i = 0; i < num_shards; ++i) {
        kv::LSMOptions options;
        options.dir = dir.path() + "/shard-" + std::to_string(i);
        Status s =
            Env::defaultEnv()->createDirs(options.dir);
        if (!s.isOk()) {
            std::fprintf(stderr,
                         "tsan_sharded_stress: mkdir failed: %s\n",
                         s.toString().c_str());
            return 1;
        }
        // Tiny memtable + aggressive level budgets so each shard's
        // maintenance thread runs the entire time.
        options.memtable_bytes = 32 << 10;
        options.l0_compaction_trigger = 3;
        options.level_base_bytes = 64 << 10;
        options.target_file_bytes = 16 << 10;
        auto opened = kv::LSMStore::open(options);
        if (!opened.ok()) {
            std::fprintf(stderr,
                         "tsan_sharded_stress: open failed: %s\n",
                         opened.status().toString().c_str());
            return 1;
        }
        shards.push_back(opened.take());
    }
    kv::ShardedKVStore store(std::move(shards),
                             kv::ShardedOptions{});

    auto deadline = std::chrono::steady_clock::now() + run_time;
    std::vector<std::thread> threads;
    for (int w = 0; w < num_writers; ++w)
        threads.emplace_back([&store, deadline, w] {
            writerBody(store, deadline, w);
        });
    for (int s = 0; s < num_scanners; ++s)
        threads.emplace_back([&store, deadline, s] {
            scannerBody(store, deadline, s);
        });
    threads.emplace_back(
        [&store, deadline] { maintBody(store, deadline); });
    for (std::thread &t : threads)
        t.join();

    check(store.flush().isOk(), "final flush");
    kv::IOStats io = store.stats();
    std::fprintf(
        stderr,
        "tsan_sharded_stress: flush_bytes=%llu compactions=%llu"
        " live=%llu\n",
        static_cast<unsigned long long>(io.flush_bytes),
        static_cast<unsigned long long>(io.compactions),
        static_cast<unsigned long long>(store.liveKeyCount()));
    check(io.flush_bytes > 0, "background flushes ran");

    if (failures) {
        std::fprintf(stderr, "tsan_sharded_stress: %d failures\n",
                     failures.load());
        return 1;
    }
    std::fprintf(stderr, "tsan_sharded_stress: PASS\n");
    return 0;
}
