/**
 * @file
 * WAL torn-record property tests.
 *
 * A crash can cut a WAL at ANY byte offset, so these tests check
 * replay at every seam: a real log is truncated at each byte of its
 * tail records (PosixEnv), and the same property is driven through
 * FaultInjectionEnv's pinned torn-tail crashes. In every case replay
 * must return exactly the batches whose records fit in the surviving
 * prefix, and report the intact byte count for tail salvage.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/env.hh"
#include "common/fault_env.hh"
#include "kvstore/wal.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

constexpr size_t num_batches = 5;

/** The i-th test batch: three puts and one delete. */
WriteBatch
testBatch(size_t i)
{
    WriteBatch batch;
    for (size_t j = 0; j < 3; ++j) {
        batch.put(makeKey(i * 10 + j), makeValue(i * 10 + j));
    }
    batch.del(makeKey(i * 10 + 7));
    return batch;
}

uint64_t
firstSeq(size_t i)
{
    return i * 4 + 1;
}

/** Replayed batches must be exactly testBatch(0..count). */
void
expectPrefix(const std::vector<std::pair<WriteBatch, uint64_t>> &got,
             size_t count)
{
    ASSERT_EQ(got.size(), count);
    for (size_t i = 0; i < count; ++i) {
        WriteBatch want = testBatch(i);
        EXPECT_EQ(got[i].second, firstSeq(i));
        ASSERT_EQ(got[i].first.size(), want.size());
        for (size_t e = 0; e < want.size(); ++e) {
            EXPECT_EQ(got[i].first.entries()[e].op,
                      want.entries()[e].op);
            EXPECT_EQ(got[i].first.entries()[e].key,
                      want.entries()[e].key);
            EXPECT_EQ(got[i].first.entries()[e].value,
                      want.entries()[e].value);
        }
    }
}

/** Write the test batches, returning each record's end offset. */
std::vector<uint64_t>
writeTestLog(const std::string &path, Env *env)
{
    std::vector<uint64_t> boundaries;
    auto wal = WriteAheadLog::open(path, env);
    EXPECT_TRUE(wal.ok());
    for (size_t i = 0; i < num_batches; ++i) {
        EXPECT_TRUE(
            wal.value()->append(testBatch(i), firstSeq(i)).isOk());
        boundaries.push_back(wal.value()->sizeBytes());
    }
    EXPECT_TRUE(wal.value()->sync().isOk());
    return boundaries;
}

/** Number of boundaries at or below len = intact record count. */
size_t
intactCount(const std::vector<uint64_t> &boundaries, uint64_t len)
{
    size_t n = 0;
    while (n < boundaries.size() && boundaries[n] <= len)
        ++n;
    return n;
}

TEST(WalTornTest, ReplayAtEveryTruncationOffset)
{
    ScratchDir dir("wal_torn");
    Env *env = Env::defaultEnv();
    std::string full_path = dir.path() + "/full.log";
    std::vector<uint64_t> boundaries = writeTestLog(full_path, env);

    Bytes full;
    ASSERT_TRUE(env->readFileToString(full_path, full).isOk());
    ASSERT_EQ(full.size(), boundaries.back());

    std::string torn_path = dir.path() + "/torn.log";
    for (uint64_t len = 0; len <= full.size(); ++len) {
        ASSERT_TRUE(env->writeStringToFile(
                           torn_path,
                           BytesView(full).substr(
                               0, static_cast<size_t>(len)),
                           false)
                        .isOk());

        std::vector<std::pair<WriteBatch, uint64_t>> got;
        uint64_t valid = ~0ull;
        Status s = WriteAheadLog::replay(
            torn_path,
            [&](const WriteBatch &b, uint64_t seq) {
                got.emplace_back(b, seq);
            },
            env, &valid);
        ASSERT_TRUE(s.isOk()) << "len=" << len;

        size_t count = intactCount(boundaries, len);
        SCOPED_TRACE("truncated at byte " + std::to_string(len));
        expectPrefix(got, count);
        // The intact prefix ends exactly at the last whole record;
        // everything past it is the caller's salvage candidate.
        EXPECT_EQ(valid, count ? boundaries[count - 1] : 0u);
    }
}

TEST(WalTornTest, CorruptTailRecordStopsReplayCleanly)
{
    ScratchDir dir("wal_torn");
    Env *env = Env::defaultEnv();
    std::string path = dir.path() + "/full.log";
    std::vector<uint64_t> boundaries = writeTestLog(path, env);

    // Flip one payload byte inside the last record: its checksum
    // no longer matches, so replay must stop after batch 4 without
    // reporting an error (crash-tail semantics).
    Bytes full;
    ASSERT_TRUE(env->readFileToString(path, full).isOk());
    size_t victim =
        static_cast<size_t>(boundaries[num_batches - 2]) + 14;
    full[victim] ^= 0x5a;
    ASSERT_TRUE(env->writeStringToFile(path, full, false).isOk());

    std::vector<std::pair<WriteBatch, uint64_t>> got;
    uint64_t valid = 0;
    ASSERT_TRUE(WriteAheadLog::replay(
                    path,
                    [&](const WriteBatch &b, uint64_t seq) {
                        got.emplace_back(b, seq);
                    },
                    env, &valid)
                    .isOk());
    expectPrefix(got, num_batches - 1);
    EXPECT_EQ(valid, boundaries[num_batches - 2]);
}

TEST(WalTornTest, MissingLogReplaysEmpty)
{
    ScratchDir dir("wal_torn");
    size_t calls = 0;
    uint64_t valid = 99;
    ASSERT_TRUE(WriteAheadLog::replay(
                    dir.path() + "/absent.log",
                    [&](const WriteBatch &, uint64_t) { ++calls; },
                    Env::defaultEnv(), &valid)
                    .isOk());
    EXPECT_EQ(calls, 0u);
    EXPECT_EQ(valid, 0u);
}

TEST(WalTornTest, FaultEnvCrashAtEveryTornTailLength)
{
    // The same seam property, but the tear comes from the fault
    // env's crash model: batches 0-1 are synced (must survive),
    // batches 2-4 are in the "page cache" and crash-torn at every
    // possible length.
    ScratchDir dir("wal_torn");
    Env *base = Env::defaultEnv();

    // Probe the record boundaries once on the base env.
    std::vector<uint64_t> boundaries =
        writeTestLog(dir.path() + "/probe.log", base);
    uint64_t synced_len = boundaries[1];
    uint64_t unsynced_len = boundaries.back() - synced_len;

    for (uint64_t keep = 0; keep <= unsynced_len; ++keep) {
        FaultInjectionEnv fault(base, keep + 1);
        std::string path = dir.path() + "/crash_" +
                           std::to_string(keep) + ".log";
        {
            auto wal = WriteAheadLog::open(path, &fault);
            ASSERT_TRUE(wal.ok());
            ASSERT_TRUE(fault.syncDir(dir.path()).isOk());
            for (size_t i = 0; i < num_batches; ++i) {
                ASSERT_TRUE(wal.value()
                                ->append(testBatch(i), firstSeq(i))
                                .isOk());
                if (i == 1) {
                    ASSERT_TRUE(wal.value()->sync().isOk());
                }
            }
        }
        fault.crashKeepUnsyncedBytes(
            static_cast<int64_t>(keep));
        fault.simulateCrash();
        fault.reactivate();

        std::vector<std::pair<WriteBatch, uint64_t>> got;
        uint64_t valid = 0;
        ASSERT_TRUE(WriteAheadLog::replay(
                        path,
                        [&](const WriteBatch &b, uint64_t seq) {
                            got.emplace_back(b, seq);
                        },
                        &fault, &valid)
                        .isOk());

        size_t count = intactCount(boundaries, synced_len + keep);
        SCOPED_TRACE("crash kept " + std::to_string(keep) +
                     " unsynced bytes");
        ASSERT_GE(count, 2u); // acked-synced batches never vanish
        expectPrefix(got, count);
        EXPECT_EQ(valid, boundaries[count - 1]);
    }
}

} // namespace
} // namespace ethkv::kv
