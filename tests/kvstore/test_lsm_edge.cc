/**
 * @file
 * LSM edge-case tests: tombstone retention across levels, large
 * values, empty batches, repeated reopen+compaction cycles, and
 * stats consistency.
 */

#include <gtest/gtest.h>

#include "kvstore/lsm_store.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

LSMOptions
tinyOptions(const std::string &dir)
{
    LSMOptions opts;
    opts.dir = dir;
    opts.memtable_bytes = 8 << 10;
    opts.l0_compaction_trigger = 2;
    opts.level_base_bytes = 32 << 10;
    opts.target_file_bytes = 8 << 10;
    return opts;
}

TEST(LsmEdgeTest, TombstoneShadowsDeepLevels)
{
    // A key pushed to a deep level must stay deleted even after
    // the tombstone's own level compacts: the tombstone may only
    // be dropped at the bottommost level.
    ScratchDir dir("lsm_edge");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    // Push a band of keys deep via churn.
    for (uint64_t round = 0; round < 3; ++round)
        for (uint64_t i = 0; i < 800; ++i)
            ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i + round)).isOk());
    ASSERT_TRUE(store.value()->compactAll().isOk());

    // Delete half, then churn unrelated keys to force the
    // tombstones through several compactions.
    for (uint64_t i = 0; i < 800; i += 2)
        ASSERT_TRUE(store.value()->del(makeKey(i)).isOk());
    for (uint64_t i = 10000; i < 11500; ++i)
        ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i)).isOk());

    Bytes value;
    for (uint64_t i = 0; i < 800; ++i) {
        if (i % 2 == 0) {
            EXPECT_TRUE(
                store.value()->get(makeKey(i), value).isNotFound())
                << i;
        } else {
            ASSERT_TRUE(store.value()->get(makeKey(i), value)
                            .isOk())
                << i;
            EXPECT_EQ(value, makeValue(i + 2));
        }
    }
}

TEST(LsmEdgeTest, LargeValues)
{
    ScratchDir dir("lsm_edge");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    // Values far larger than the memtable budget must still round
    // trip (each forces an immediate flush).
    for (uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(store.value()
                        ->put(makeKey(i), makeValue(i, 100000))
                        .isOk());
    }
    Bytes value;
    for (uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(store.value()->get(makeKey(i), value).isOk());
        EXPECT_EQ(value, makeValue(i, 100000));
    }
}

TEST(LsmEdgeTest, EmptyBatchAndEmptyValue)
{
    ScratchDir dir("lsm_edge");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    WriteBatch empty;
    EXPECT_TRUE(store.value()->apply(empty).isOk());

    // Empty values are legal KV payloads.
    ASSERT_TRUE(store.value()->put("k", BytesView()).isOk());
    Bytes value = "sentinel";
    ASSERT_TRUE(store.value()->get("k", value).isOk());
    EXPECT_TRUE(value.empty());
    ASSERT_TRUE(store.value()->flush().isOk());
    value = "sentinel";
    ASSERT_TRUE(store.value()->get("k", value).isOk());
    EXPECT_TRUE(value.empty());
}

TEST(LsmEdgeTest, RepeatedReopenCompactCycles)
{
    ScratchDir dir("lsm_edge");
    for (int cycle = 0; cycle < 4; ++cycle) {
        auto store = LSMStore::open(tinyOptions(dir.path()));
        ASSERT_TRUE(store.ok());
        for (uint64_t i = 0; i < 400; ++i) {
            ASSERT_TRUE(store.value()->put(
                makeKey(i),
                makeValue(i + cycle * 1000)).isOk());
        }
        if (cycle % 2 == 0)
            ASSERT_TRUE(store.value()->compactAll().isOk());
        else
            ASSERT_TRUE(store.value()->flush().isOk());
    }
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    Bytes value;
    for (uint64_t i = 0; i < 400; ++i) {
        ASSERT_TRUE(store.value()->get(makeKey(i), value).isOk());
        EXPECT_EQ(value, makeValue(i + 3000));
    }
}

TEST(LsmEdgeTest, ScanAfterHeavyChurn)
{
    ScratchDir dir("lsm_edge");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    // Churn the same band so every level holds versions of the
    // same keys; the scan must yield exactly the newest of each.
    for (int round = 0; round < 6; ++round) {
        for (uint64_t i = 0; i < 300; ++i) {
            if (round == 5 && i % 3 == 0)
                ASSERT_TRUE(store.value()->del(makeKey(i)).isOk());
            else
                ASSERT_TRUE(
                    store.value()
                        ->put(makeKey(i), makeValue(i + round * 7))
                        .isOk());
        }
        ASSERT_TRUE(store.value()->flush().isOk());
    }

    uint64_t count = 0;
    ASSERT_TRUE(store.value()->scan(
        BytesView(), BytesView(),
        [&](BytesView k, BytesView v) {
            uint64_t id = std::stoull(Bytes(k.substr(4, 8)));
            EXPECT_NE(id % 3, 0u);
            EXPECT_EQ(Bytes(v), makeValue(id + 35));
            ++count;
            return true;
        }).isOk());
    EXPECT_EQ(count, 200u);
}

TEST(LsmEdgeTest, StatsAreMonotone)
{
    ScratchDir dir("lsm_edge");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    uint64_t last_written = 0;
    for (int round = 0; round < 5; ++round) {
        for (uint64_t i = 0; i < 500; ++i)
            ASSERT_TRUE(store.value()->put(makeKey(i), makeValue(i)).isOk());
        const IOStats &stats = store.value()->stats();
        EXPECT_GE(stats.bytes_written, last_written);
        last_written = stats.bytes_written;
        EXPECT_GE(stats.bytes_written, stats.flush_bytes);
    }
    EXPECT_GT(store.value()->stats().writeAmplification(), 0.0);
    EXPECT_GT(store.value()->tableBytes(), 0u);
}

TEST(LsmEdgeTest, KeysWithBinaryContent)
{
    ScratchDir dir("lsm_edge");
    auto store = LSMStore::open(tinyOptions(dir.path()));
    ASSERT_TRUE(store.ok());

    // Keys containing NULs, 0xff, and prefix relationships.
    Bytes k1{'\x00'};
    Bytes k2{'\x00', '\x00'};
    Bytes k3{'\xff', '\x00', '\x7f'};
    ASSERT_TRUE(store.value()->put(k1, "a").isOk());
    ASSERT_TRUE(store.value()->put(k2, "b").isOk());
    ASSERT_TRUE(store.value()->put(k3, "c").isOk());
    ASSERT_TRUE(store.value()->flush().isOk());

    Bytes value;
    ASSERT_TRUE(store.value()->get(k1, value).isOk());
    EXPECT_EQ(value, "a");
    ASSERT_TRUE(store.value()->get(k2, value).isOk());
    EXPECT_EQ(value, "b");
    ASSERT_TRUE(store.value()->get(k3, value).isOk());
    EXPECT_EQ(value, "c");

    // Scan order is bytewise.
    std::vector<Bytes> keys;
    ASSERT_TRUE(store.value()->scan(BytesView(), BytesView(),
                        [&](BytesView k, BytesView) {
                            keys.emplace_back(k);
                            return true;
                        }).isOk());
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], k1);
    EXPECT_EQ(keys[1], k2);
    EXPECT_EQ(keys[2], k3);
}

} // namespace
} // namespace ethkv::kv
