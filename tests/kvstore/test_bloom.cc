/**
 * @file
 * Bloom filter tests: no false negatives, bounded false positives,
 * serialization round-trip.
 */

#include <gtest/gtest.h>

#include "kvstore/bloom.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::makeKey;

TEST(BloomTest, NoFalseNegatives)
{
    BloomFilter filter(1000);
    for (uint64_t i = 0; i < 1000; ++i)
        filter.add(makeKey(i));
    for (uint64_t i = 0; i < 1000; ++i)
        EXPECT_TRUE(filter.mayContain(makeKey(i)));
}

TEST(BloomTest, FalsePositiveRateIsBounded)
{
    BloomFilter filter(1000, 10);
    for (uint64_t i = 0; i < 1000; ++i)
        filter.add(makeKey(i));
    int fp = 0;
    const int probes = 10000;
    for (int i = 0; i < probes; ++i)
        fp += filter.mayContain(makeKey(1000000 + i));
    // 10 bits/key targets ~1%; allow generous slack.
    EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomTest, SerializationRoundTrip)
{
    BloomFilter filter(500);
    for (uint64_t i = 0; i < 500; ++i)
        filter.add(makeKey(i, "ser"));
    BloomFilter restored = BloomFilter::fromBytes(filter.toBytes());
    for (uint64_t i = 0; i < 500; ++i)
        EXPECT_TRUE(restored.mayContain(makeKey(i, "ser")));
    // Same bits => same (possibly false-positive) answers.
    for (uint64_t i = 0; i < 2000; ++i) {
        Bytes probe = makeKey(i, "probe");
        EXPECT_EQ(filter.mayContain(probe),
                  restored.mayContain(probe));
    }
}

TEST(BloomTest, EmptyFilterRejectsEverything)
{
    BloomFilter filter(100);
    int hits = 0;
    for (uint64_t i = 0; i < 1000; ++i)
        hits += filter.mayContain(makeKey(i));
    EXPECT_EQ(hits, 0);
}

TEST(BloomTest, ZeroExpectedKeysStillWorks)
{
    BloomFilter filter(0);
    filter.add("solo");
    EXPECT_TRUE(filter.mayContain("solo"));
}

} // namespace
} // namespace ethkv::kv
