/**
 * @file
 * MergingIterator and WriteBatch unit tests: source priority,
 * duplicate shadowing, seek semantics, batch accounting.
 */

#include <gtest/gtest.h>

#include "kvstore/internal_iterator.hh"
#include "kvstore/kvstore.hh"
#include "kvstore/memtable.hh"
#include "kvstore/write_batch.hh"

namespace ethkv::kv
{
namespace
{

std::unique_ptr<MemTable>
tableOf(std::initializer_list<std::pair<const char *, const char *>>
            entries,
        uint64_t seq_base)
{
    auto table = std::make_unique<MemTable>();
    uint64_t seq = seq_base;
    for (const auto &[key, value] : entries)
        table->add(key, value, ++seq, EntryType::Put);
    return table;
}

TEST(MergingIteratorTest, InterleavesSortedSources)
{
    auto a = tableOf({{"a", "1"}, {"c", "3"}, {"e", "5"}}, 100);
    auto b = tableOf({{"b", "2"}, {"d", "4"}}, 200);

    std::vector<std::unique_ptr<InternalIterator>> sources;
    sources.push_back(a->newIterator());
    sources.push_back(b->newIterator());
    MergingIterator merged(std::move(sources));
    merged.seek(BytesView());

    std::string keys;
    while (merged.valid()) {
        keys += merged.entry().key;
        merged.next();
    }
    EXPECT_EQ(keys, "abcde");
}

TEST(MergingIteratorTest, NewestSourceWinsDuplicates)
{
    auto newer = tableOf({{"k", "new"}, {"z", "zz"}}, 200);
    auto older = tableOf({{"a", "aa"}, {"k", "old"}}, 100);

    std::vector<std::unique_ptr<InternalIterator>> sources;
    sources.push_back(newer->newIterator()); // index 0 = newest
    sources.push_back(older->newIterator());
    MergingIterator merged(std::move(sources));
    merged.seek(BytesView());

    std::vector<std::pair<Bytes, Bytes>> seen;
    while (merged.valid()) {
        seen.emplace_back(merged.entry().key,
                          merged.entry().value);
        merged.next();
    }
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].first, "a");
    EXPECT_EQ(seen[1].first, "k");
    EXPECT_EQ(seen[1].second, "new"); // duplicate shadowed
    EXPECT_EQ(seen[2].first, "z");
}

TEST(MergingIteratorTest, SeekSkipsEarlierKeys)
{
    auto a = tableOf({{"a", "1"}, {"m", "2"}, {"z", "3"}}, 1);
    std::vector<std::unique_ptr<InternalIterator>> sources;
    sources.push_back(a->newIterator());
    MergingIterator merged(std::move(sources));
    merged.seek("b");
    ASSERT_TRUE(merged.valid());
    EXPECT_EQ(merged.entry().key, "m");
    merged.seek("zz");
    EXPECT_FALSE(merged.valid());
}

TEST(MergingIteratorTest, EmptySources)
{
    MergingIterator merged({});
    merged.seek(BytesView());
    EXPECT_FALSE(merged.valid());

    auto empty = std::make_unique<MemTable>();
    std::vector<std::unique_ptr<InternalIterator>> sources;
    sources.push_back(empty->newIterator());
    MergingIterator merged2(std::move(sources));
    merged2.seek(BytesView());
    EXPECT_FALSE(merged2.valid());
}

TEST(MergingIteratorTest, TombstonesAreYielded)
{
    // The merge layer yields tombstones; resolution is the LSM's
    // job (it must shadow deeper live versions).
    auto table = std::make_unique<MemTable>();
    table->add("k", "v", 1, EntryType::Put);
    table->add("k", "", 2, EntryType::Tombstone);
    std::vector<std::unique_ptr<InternalIterator>> sources;
    sources.push_back(table->newIterator());
    MergingIterator merged(std::move(sources));
    merged.seek(BytesView());
    ASSERT_TRUE(merged.valid());
    EXPECT_EQ(merged.entry().type, EntryType::Tombstone);
}

TEST(WriteBatchTest, AccountingAndOrder)
{
    WriteBatch batch;
    EXPECT_TRUE(batch.empty());
    batch.put("key1", "value1");
    batch.del("key2");
    batch.put("key3", Bytes(100, 'x'));

    EXPECT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch.byteSize(), 4u + 6 + 4 + 4 + 100);
    EXPECT_EQ(batch.entries()[0].op, BatchOp::Put);
    EXPECT_EQ(batch.entries()[1].op, BatchOp::Delete);
    EXPECT_TRUE(batch.entries()[1].value.empty());

    batch.clear();
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(batch.byteSize(), 0u);
}

TEST(IOStatsTest, MergeAndAmplification)
{
    IOStats a, b;
    a.user_writes = 10;
    a.logical_bytes_written = 40;
    a.bytes_written = 100;
    a.tombstones_written = 2;
    b.user_writes = 5;
    b.user_deletes = 5;
    b.logical_bytes_written = 35;
    b.bytes_written = 50;
    b.compactions = 3;
    a.merge(b);
    EXPECT_EQ(a.user_writes, 15u);
    EXPECT_EQ(a.user_deletes, 5u);
    EXPECT_EQ(a.logical_bytes_written, 75u);
    EXPECT_EQ(a.bytes_written, 150u);
    EXPECT_EQ(a.compactions, 3u);
    // Amplification is bytes persisted per logical byte, not per op.
    EXPECT_DOUBLE_EQ(a.writeAmplification(), 150.0 / 75.0);

    IOStats empty;
    EXPECT_EQ(empty.writeAmplification(), 0.0);
}

} // namespace
} // namespace ethkv::kv
