/**
 * @file
 * Skiplist memtable tests: ordering, supersession, tombstones,
 * iterator behaviour.
 */

#include <gtest/gtest.h>

#include <map>

#include "kvstore/memtable.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::makeKey;
using testutil::makeValue;

TEST(MemTableTest, PutAndGet)
{
    MemTable table;
    table.add("alpha", "1", 1, EntryType::Put);
    table.add("beta", "2", 2, EntryType::Put);

    InternalEntry e;
    ASSERT_TRUE(table.get("alpha", e));
    EXPECT_EQ(e.value, "1");
    EXPECT_EQ(e.seq, 1u);
    EXPECT_EQ(e.type, EntryType::Put);
    EXPECT_FALSE(table.get("gamma", e));
}

TEST(MemTableTest, NewestWriteSupersedes)
{
    MemTable table;
    table.add("k", "old", 1, EntryType::Put);
    table.add("k", "new", 2, EntryType::Put);
    InternalEntry e;
    ASSERT_TRUE(table.get("k", e));
    EXPECT_EQ(e.value, "new");
    EXPECT_EQ(e.seq, 2u);
    EXPECT_EQ(table.entryCount(), 1u);
}

TEST(MemTableTest, TombstoneVisible)
{
    MemTable table;
    table.add("k", "v", 1, EntryType::Put);
    table.add("k", "", 2, EntryType::Tombstone);
    InternalEntry e;
    ASSERT_TRUE(table.get("k", e));
    EXPECT_EQ(e.type, EntryType::Tombstone);
}

TEST(MemTableTest, IterationIsSortedAndComplete)
{
    MemTable table;
    std::map<Bytes, Bytes> expected;
    Rng rng(77);
    for (uint64_t i = 0; i < 500; ++i) {
        Bytes key = makeKey(rng.nextBounded(1000));
        Bytes value = makeValue(i);
        table.add(key, value, i + 1, EntryType::Put);
        expected[key] = value;
    }
    EXPECT_EQ(table.entryCount(), expected.size());

    Bytes prev;
    size_t seen = 0;
    table.forEach(BytesView(), BytesView(),
                  [&](const InternalEntry &e) {
                      if (seen > 0)
                          EXPECT_LT(prev, e.key);
                      EXPECT_EQ(expected.at(e.key), e.value);
                      prev = e.key;
                      ++seen;
                      return true;
                  });
    EXPECT_EQ(seen, expected.size());
}

TEST(MemTableTest, RangeBoundedIteration)
{
    MemTable table;
    for (uint64_t i = 0; i < 100; ++i)
        table.add(makeKey(i), "v", i + 1, EntryType::Put);

    size_t seen = 0;
    table.forEach(makeKey(10), makeKey(20),
                  [&](const InternalEntry &e) {
                      EXPECT_GE(e.key, makeKey(10));
                      EXPECT_LT(e.key, makeKey(20));
                      ++seen;
                      return true;
                  });
    EXPECT_EQ(seen, 10u);
}

TEST(MemTableTest, EarlyStopIteration)
{
    MemTable table;
    for (uint64_t i = 0; i < 50; ++i)
        table.add(makeKey(i), "v", i + 1, EntryType::Put);
    size_t seen = 0;
    bool completed = table.forEach(BytesView(), BytesView(),
                                   [&](const InternalEntry &) {
                                       return ++seen < 5;
                                   });
    EXPECT_FALSE(completed);
    EXPECT_EQ(seen, 5u);
}

TEST(MemTableTest, CursorSeekAndScan)
{
    MemTable table;
    for (uint64_t i = 0; i < 100; i += 2)
        table.add(makeKey(i), makeValue(i), i + 1, EntryType::Put);

    auto it = table.newIterator();
    // Seek to a key that is absent: lands on next greater key.
    it->seek(makeKey(11));
    ASSERT_TRUE(it->valid());
    EXPECT_EQ(it->entry().key, makeKey(12));
    it->next();
    ASSERT_TRUE(it->valid());
    EXPECT_EQ(it->entry().key, makeKey(14));

    // Seek past the end.
    it->seek(makeKey(1000));
    EXPECT_FALSE(it->valid());
}

TEST(MemTableTest, ApproximateBytesGrowsAndTracksUpdates)
{
    MemTable table;
    EXPECT_EQ(table.approximateBytes(), 0u);
    table.add("key", Bytes(100, 'v'), 1, EntryType::Put);
    uint64_t after_first = table.approximateBytes();
    EXPECT_GT(after_first, 100u);
    // Overwriting with a smaller value shrinks the estimate.
    table.add("key", Bytes(10, 'v'), 2, EntryType::Put);
    EXPECT_LT(table.approximateBytes(), after_first);
}

TEST(MemTableTest, LargeInsertionKeepsOrder)
{
    MemTable table;
    Rng rng(123);
    for (uint64_t i = 0; i < 20000; ++i)
        table.add(rng.nextBytes(12), "v", i + 1, EntryType::Put);
    Bytes prev;
    bool first = true;
    table.forEach(BytesView(), BytesView(),
                  [&](const InternalEntry &e) {
                      if (!first)
                          EXPECT_LE(prev, e.key);
                      prev = e.key;
                      first = false;
                      return true;
                  });
}

} // namespace
} // namespace ethkv::kv
