/**
 * @file
 * Cross-engine property tests: every engine must agree with the
 * MemStore oracle under long random operation sequences, including
 * (for the LSM) mid-sequence reopens that exercise recovery.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "kvstore/btree_store.hh"
#include "kvstore/hash_store.hh"
#include "kvstore/log_store.hh"
#include "kvstore/lsm_store.hh"
#include "kvstore/mem_store.hh"
#include "kvstore/instrumented_store.hh"
#include "test_util.hh"

namespace ethkv::kv
{
namespace
{

using testutil::ScratchDir;
using testutil::makeKey;
using testutil::makeValue;

/** Drive random ops against an engine and a reference map. */
void
runRandomOps(KVStore &store, std::map<Bytes, Bytes> &ref, Rng &rng,
             int steps, uint64_t key_space)
{
    for (int step = 0; step < steps; ++step) {
        Bytes key = makeKey(rng.nextBounded(key_space));
        int op = static_cast<int>(rng.nextBounded(10));
        if (op < 5) {
            Bytes value = makeValue(rng.next(),
                                    8 + rng.nextBounded(64));
            ASSERT_TRUE(store.put(key, value).isOk());
            ref[key] = value;
        } else if (op < 8) {
            ASSERT_TRUE(store.del(key).isOk());
            ref.erase(key);
        } else {
            Bytes v;
            Status s = store.get(key, v);
            auto it = ref.find(key);
            if (it == ref.end()) {
                ASSERT_TRUE(s.isNotFound())
                    << "step " << step << ": ghost key";
            } else {
                ASSERT_TRUE(s.isOk()) << "step " << step
                                      << ": lost key";
                ASSERT_EQ(v, it->second);
            }
        }
    }
}

/** Verify every reference entry is readable and counts match. */
void
verifyAll(KVStore &store, const std::map<Bytes, Bytes> &ref)
{
    for (const auto &[key, value] : ref) {
        Bytes v;
        ASSERT_TRUE(store.get(key, v).isOk());
        ASSERT_EQ(v, value);
    }
    EXPECT_EQ(store.liveKeyCount(), ref.size());
}

struct EngineCase
{
    std::string name;
    bool ordered;
};

class EnginePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 uint64_t>>
{
  protected:
    std::unique_ptr<KVStore>
    makeEngine(const std::string &name, const std::string &dir)
    {
        if (name == "mem")
            return std::make_unique<MemStore>();
        if (name == "hash")
            return std::make_unique<HashStore>();
        if (name == "btree")
            return std::make_unique<BTreeStore>();
        if (name == "log") {
            LogStoreOptions opts;
            opts.segment_bytes = 8192;
            return std::make_unique<AppendLogStore>(opts);
        }
        if (name == "lsm") {
            LSMOptions opts;
            opts.dir = dir;
            opts.memtable_bytes = 8 << 10;
            opts.l0_compaction_trigger = 3;
            opts.level_base_bytes = 32 << 10;
            opts.target_file_bytes = 16 << 10;
            auto store = LSMStore::open(opts);
            EXPECT_TRUE(store.ok());
            return store.take();
        }
        return nullptr;
    }
};

TEST_P(EnginePropertyTest, AgreesWithReferenceMap)
{
    auto [engine, seed] = GetParam();
    ScratchDir dir("prop_" + engine);
    auto store = makeEngine(engine, dir.path());
    ASSERT_NE(store, nullptr);

    Rng rng(seed);
    std::map<Bytes, Bytes> ref;
    runRandomOps(*store, ref, rng, 8000, 1500);
    verifyAll(*store, ref);

    // Ordered engines must also produce the exact reference scan.
    Bytes probe;
    if (!store->scan(BytesView(), BytesView(),
                     [](BytesView, BytesView) { return false; })
             .isOk()) {
        return; // unordered engine: contract checked elsewhere
    }
    auto it = ref.begin();
    ASSERT_TRUE(store->scan(BytesView(), BytesView(),
                [&](BytesView k, BytesView v) {
                    EXPECT_NE(it, ref.end());
                    if (it == ref.end())
                        return false;
                    EXPECT_EQ(Bytes(k), it->first);
                    EXPECT_EQ(Bytes(v), it->second);
                    ++it;
                    return true;
                }).isOk());
    EXPECT_EQ(it, ref.end());
}

TEST_P(EnginePropertyTest, InstrumentedWrapperIsTransparent)
{
    auto [engine, seed] = GetParam();
    ScratchDir dir("prop_obs_" + engine);
    auto inner = makeEngine(engine, dir.path());
    ASSERT_NE(inner, nullptr);

    // The telemetry decorator must be invisible to the reference
    // oracle: identical semantics, plus op counts that add up.
    obs::MetricsRegistry registry;
    kv::InstrumentedKVStore store(*inner, registry, "prop",
                                   /*sample_shift=*/0);

    Rng rng(seed + 7);
    std::map<Bytes, Bytes> ref;
    runRandomOps(store, ref, rng, 4000, 900);
    verifyAll(store, ref);

    obs::MetricsSnapshot snap = registry.snapshot();
    const uint64_t *puts = snap.findCounter("op.prop.puts");
    const uint64_t *dels = snap.findCounter("op.prop.dels");
    const uint64_t *gets = snap.findCounter("op.prop.gets");
    const uint64_t *misses =
        snap.findCounter("op.prop.get_misses");
    ASSERT_NE(puts, nullptr);
    ASSERT_NE(dels, nullptr);
    ASSERT_NE(gets, nullptr);
    ASSERT_NE(misses, nullptr);
    // runRandomOps issued 4000 mutations/reads; verifyAll re-read
    // every live key, all hits.
    EXPECT_EQ(*puts + *dels + *gets - ref.size(), 4000u);
    EXPECT_LE(*misses, *gets);
    const obs::HistogramSnapshot *put_ns =
        snap.findHistogram("op.prop.put_ns");
    ASSERT_NE(put_ns, nullptr);
    EXPECT_EQ(put_ns->count, *puts);
    EXPECT_GT(put_ns->max, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EnginePropertyTest,
    ::testing::Combine(::testing::Values("mem", "hash", "btree",
                                         "log", "lsm"),
                       ::testing::Values(101u, 202u, 303u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

TEST(LsmReopenProperty, SurvivesRepeatedReopen)
{
    ScratchDir dir("lsm_reopen");
    LSMOptions opts;
    opts.dir = dir.path();
    opts.memtable_bytes = 8 << 10;
    opts.l0_compaction_trigger = 3;
    opts.level_base_bytes = 32 << 10;
    opts.target_file_bytes = 16 << 10;

    Rng rng(555);
    std::map<Bytes, Bytes> ref;
    for (int round = 0; round < 5; ++round) {
        auto store = LSMStore::open(opts);
        ASSERT_TRUE(store.ok());
        // Everything from previous rounds must still be there.
        verifyAll(*store.value(), ref);
        runRandomOps(*store.value(), ref, rng, 2000, 800);
        // Odd rounds close without flushing: WAL-only recovery.
        if (round % 2 == 0)
            ASSERT_TRUE(store.value()->flush().isOk());
    }
    auto store = LSMStore::open(opts);
    ASSERT_TRUE(store.ok());
    verifyAll(*store.value(), ref);
}

} // namespace
} // namespace ethkv::kv
