/**
 * @file
 * Fixture tests for tools/ethkv_analyze (ctest:
 * tools.analyze_fixtures).
 *
 * Three layers of proof:
 *
 *  - every rule family has a good/bad fixture pair under
 *    tests/tools/fixtures/ — the bad tree must fire the family's
 *    pass, the good tree must not (a rule whose bad fixture stops
 *    failing has silently died);
 *  - line-number fidelity: CRLF endings and backslash-spliced
 *    lines must not shift reported lines (the bug class that
 *    motivated retiring the regex linter);
 *  - the driver end to end: suppression comments, the baseline
 *    write/compare cycle, and the lock-graph DOT export, through
 *    the same analyzeMain() the ctest gate runs.
 */

#include "analyze/analyze.hh"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ethkv::analyze
{
namespace
{

namespace fs = std::filesystem;

std::string
fixture(const std::string &name)
{
    return std::string(ETHKV_ANALYZE_FIXTURES) + "/" + name;
}

struct Family
{
    const char *dir;  //!< fixture pair prefix (dir + "_bad"/"_good")
    const char *rule; //!< expected Finding::rule
    void (*run)(const RepoModel &, Findings &);
};

const Family kFamilies[] = {
    {"lock_order", "lock-order", runLockOrder},
    {"lock_rank", "lock-rank", runLockRank},
    {"sharded_lock_rank", "lock-rank", runLockRank},
    {"layering", "layering", runLayering},
    {"status", "status", runStatusDiscipline},
    {"hot_path", "hot-path", runHotPath},
    {"cachetier_hotpath", "hot-path", runHotPath},
    {"kvclass_switch", "kvclass-switch", runKVClassSwitch},
    {"naked_new", "naked-new", runNakedNew},
    {"include_hygiene", "include-hygiene", runIncludeHygiene},
    {"direct_io", "direct-io", runDirectIO},
    {"direct_net", "direct-net", runDirectNet},
    {"kvstore_thread", "kvstore-thread", runKvstoreThread},
    {"server_json", "server-json", runServerJson},
};

std::string
dump(const Findings &findings)
{
    std::string s;
    for (const Finding &f : findings) {
        s += "  " + f.file + ":" + std::to_string(f.line) + ": [" +
             f.rule + "] " + f.msg + "\n";
    }
    return s;
}

TEST(AnalyzeFixtures, BadFixturesFire)
{
    for (const Family &fam : kFamilies) {
        RepoModel model =
            buildModel(fixture(std::string(fam.dir) + "_bad"));
        ASSERT_FALSE(model.files.empty()) << fam.dir;
        Findings findings;
        fam.run(model, findings);
        EXPECT_GE(findings.size(), 1u)
            << fam.dir << "_bad produced no findings";
        for (const Finding &f : findings)
            EXPECT_EQ(f.rule, fam.rule) << dump(findings);
    }
}

TEST(AnalyzeFixtures, GoodFixturesClean)
{
    for (const Family &fam : kFamilies) {
        RepoModel model =
            buildModel(fixture(std::string(fam.dir) + "_good"));
        ASSERT_FALSE(model.files.empty()) << fam.dir;
        Findings findings;
        fam.run(model, findings);
        EXPECT_TRUE(findings.empty())
            << fam.dir << "_good is not clean:\n"
            << dump(findings);
    }
}

// Precise expectations where the fixture encodes a known count:
// three distinct Status violations, two include-hygiene ones, two
// missing KVClass enumerators.
TEST(AnalyzeFixtures, ExpectedFindingCounts)
{
    Findings findings;
    runStatusDiscipline(buildModel(fixture("status_bad")),
                        findings);
    EXPECT_EQ(findings.size(), 3u) << dump(findings);

    findings.clear();
    runIncludeHygiene(buildModel(fixture("include_hygiene_bad")),
                      findings);
    EXPECT_EQ(findings.size(), 2u) << dump(findings);

    findings.clear();
    runKVClassSwitch(buildModel(fixture("kvclass_switch_bad")),
                     findings);
    EXPECT_EQ(findings.size(), 2u) << dump(findings);
}

TEST(AnalyzeDot, LockGraphHasBothCycleEdges)
{
    RepoModel model = buildModel(fixture("lock_order_bad"));
    std::string dot = lockGraphDot(model);
    EXPECT_NE(dot.find("\"Pair::a_\" -> \"Pair::b_\""),
              std::string::npos)
        << dot;
    EXPECT_NE(dot.find("\"Pair::b_\" -> \"Pair::a_\""),
              std::string::npos)
        << dot;
}

// --- line-number fidelity ---------------------------------------

/** Write `bytes` verbatim (binary mode: CRLF stays CRLF) into
 *  root/rel, creating directories. */
void
writeSource(const fs::path &root, const std::string &rel,
            const std::string &bytes)
{
    fs::path p = root / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << bytes;
    ASSERT_TRUE(out.good()) << p;
}

TEST(AnalyzeLines, CrlfEndingsKeepPhysicalLines)
{
    fs::path root = fs::path(testing::TempDir()) / "ethkv_crlf";
    fs::remove_all(root);
    writeSource(root, "src/trace/reader.cc",
                "// one\r\n"
                "// two\r\n"
                "namespace ethkv::trace {\r\n"
                "void *openIt(const char *p) "
                "{ return fopen(p, \"r\"); }\r\n"
                "}\r\n");
    RepoModel model = buildModel(root.string());
    Findings findings;
    runDirectIO(model, findings);
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_EQ(findings[0].line, 4);
}

TEST(AnalyzeLines, SplicedDirectiveKeepsPhysicalLines)
{
    fs::path root = fs::path(testing::TempDir()) / "ethkv_splice";
    fs::remove_all(root);
    // The backslash-spliced #define spans physical lines 1-2; the
    // JSON literal sits on physical line 4 and must be reported
    // there (the old linter's stripped view drifted here).
    writeSource(root, "src/server/stats.cc",
                "#define WIDE(x) \\\n"
                "    ((x) + 1)\n"
                "namespace ethkv::server {\n"
                "const char *kBody = \"{\\\"ops\\\":1}\";\n"
                "}\n");
    RepoModel model = buildModel(root.string());
    Findings findings;
    runServerJson(model, findings);
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_EQ(findings[0].line, 4);
}

// --- suppressions -----------------------------------------------

TEST(AnalyzeSuppress, AllowCommentSilencesNextLine)
{
    fs::path root = fs::path(testing::TempDir()) / "ethkv_allow";
    fs::remove_all(root);
    writeSource(root, "src/trace/reader.cc",
                "namespace ethkv::trace {\n"
                "// ethkv-analyze:allow(direct-io)\n"
                "void *openIt(const char *p) "
                "{ return fopen(p, \"r\"); }\n"
                "void *openTwo(const char *p) "
                "{ return fopen(p, \"r\"); }\n"
                "}\n");
    RepoModel model = buildModel(root.string());
    Findings findings =
        runRules(model, {"direct-io"});
    // Line 3 is covered by the allow comment on line 2; line 4 is
    // not.
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_EQ(findings[0].line, 4);
}

// --- baseline round trip (full CLI) -----------------------------

int
runCli(const std::vector<std::string> &args)
{
    std::vector<std::string> full = {"ethkv_analyze"};
    full.insert(full.end(), args.begin(), args.end());
    std::vector<char *> argv;
    for (std::string &s : full)
        argv.push_back(s.data());
    return analyzeMain(static_cast<int>(argv.size()),
                       argv.data());
}

TEST(AnalyzeBaseline, WriteThenCompareRoundTrips)
{
    std::string root = fixture("direct_io_bad");
    fs::path bl =
        fs::path(testing::TempDir()) / "ethkv_baseline.json";
    fs::remove(bl);

    // Findings exist, so the gate fails — but the baseline gets
    // written.
    EXPECT_EQ(runCli({root, "--rule=direct-io",
                      "--write-baseline=" + bl.string()}),
              1);
    ASSERT_TRUE(fs::exists(bl));

    // Same findings against the baseline: all tolerated, gate
    // passes.
    EXPECT_EQ(runCli({root, "--rule=direct-io",
                      "--baseline=" + bl.string()}),
              0);

    // Without the baseline they still fail.
    EXPECT_EQ(runCli({root, "--rule=direct-io"}), 1);
}

TEST(AnalyzeBaseline, UnknownRuleNameIsRejected)
{
    EXPECT_EQ(runCli({fixture("direct_io_bad"),
                      "--rule=no-such-rule"}),
              2);
}

} // namespace
} // namespace ethkv::analyze
