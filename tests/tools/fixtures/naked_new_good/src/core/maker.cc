#include <memory>

namespace ethkv::core
{

std::unique_ptr<int>
makeCounter()
{
    return std::make_unique<int>(0);
}

} // namespace ethkv::core
