// Every enumerator has an arm.
#include "eth/kvclass.hh"

namespace ethkv::eth
{

int
weight(KVClass c)
{
    switch (c) {
    case KVClass::CodeA:
        return 1;
    case KVClass::CodeB:
        return 2;
    case KVClass::Unknown:
        return 0;
    }
    return 0;
}

} // namespace ethkv::eth
