namespace ethkv::trace
{

bool
probe(const char *path)
{
    void *f = fopen(path, "r");
    return f != nullptr;
}

} // namespace ethkv::trace
