// The prefetch loop only fills the cache in memory; durability is
// the engine's business, behind its own maintenance thread.
namespace ethkv::cachetier
{

class CorrelationPrefetcher
{
  public:
    void
    loop()
    {
        fill();
    }

  private:
    void
    fill()
    {
        ++filled_;
    }

    int filled_ = 0;
};

} // namespace ethkv::cachetier
