// File access goes through the Env seam.
#include "common/env.hh"

namespace ethkv::trace
{

bool
probe(Env &env, const char *path)
{
    return env.fileExists(path);
}

} // namespace ethkv::trace
