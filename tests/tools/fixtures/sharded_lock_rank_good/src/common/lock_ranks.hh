// The sharded-router discipline (DESIGN.md §15): the router's
// flush-barrier mutex ranks BELOW the per-shard engine lock it
// acquires while flushing every shard, so the table agrees with
// the acquisition order in router.cc.
#ifndef ETHKV_COMMON_LOCK_RANKS_HH
#define ETHKV_COMMON_LOCK_RANKS_HH

namespace ethkv::lock_ranks
{

inline constexpr int kShardedStore = 28;
inline constexpr int kLockedStore = 30;

struct Entry
{
    const char *mutex;
    int rank;
};

inline constexpr Entry kLockRanks[] = {
    {"Router::flush_mutex_", kShardedStore},
    {"Router::shard_mutex_", kLockedStore},
};

} // namespace ethkv::lock_ranks

#endif // ETHKV_COMMON_LOCK_RANKS_HH
