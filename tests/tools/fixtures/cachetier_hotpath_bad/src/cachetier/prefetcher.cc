// loop -> fill -> fsync: the prefetch background thread takes the
// same shard locks foreground GETs take, so a blocking durability
// syscall here stalls the request path by lock transitivity.
namespace ethkv::cachetier
{

class CorrelationPrefetcher
{
  public:
    void
    loop()
    {
        fill();
    }

  private:
    void
    fill()
    {
        fsync(fd_);
    }

    int fd_ = -1;
};

} // namespace ethkv::cachetier
