// Dispatches on KVClass but only mentions CodeA: the CodeB and
// Unknown arms were silently lost.
#include "eth/kvclass.hh"

namespace ethkv::eth
{

int
weight(KVClass c)
{
    switch (c) {
    case KVClass::CodeA:
        return 1;
    default:
        return 0;
    }
}

} // namespace ethkv::eth
