#ifndef ETHKV_ETH_KVCLASS_HH
#define ETHKV_ETH_KVCLASS_HH

namespace ethkv::eth
{

enum class KVClass
{
    CodeA,
    CodeB,
    Unknown,
};

} // namespace ethkv::eth

#endif // ETHKV_ETH_KVCLASS_HH
