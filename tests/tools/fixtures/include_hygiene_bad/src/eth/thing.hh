// Two violations: a misnamed include guard (expected
// ETHKV_ETH_THING_HH) and a "../" relative include.
#ifndef ETHKV_WRONG_HH
#define ETHKV_WRONG_HH

#include "../common/bytes.hh"

namespace ethkv::eth
{

struct Thing
{
    int v = 0;
};

} // namespace ethkv::eth

#endif // ETHKV_WRONG_HH
