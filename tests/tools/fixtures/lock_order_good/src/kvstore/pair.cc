// Both paths acquire a_ before b_; the lock graph is acyclic.
namespace ethkv::kv
{

class Pair
{
  public:
    void
    lockForward()
    {
        MutexLock la(a_);
        MutexLock lb(b_);
        ++hits_;
    }

    void
    lockForwardAgain()
    {
        MutexLock la(a_);
        MutexLock lb(b_);
        ++hits_;
    }

  private:
    Mutex a_;
    Mutex b_;
    int hits_ = 0;
};

} // namespace ethkv::kv
