// eth may depend on common.
#include "common/bytes.hh"

namespace ethkv::eth
{

int
addrBytes()
{
    return 20;
}

} // namespace ethkv::eth
