// The worker loop only enqueues; durability happens elsewhere.
namespace ethkv::server
{

class Server
{
  public:
    void
    workerLoop()
    {
        enqueue();
    }

  private:
    void
    enqueue()
    {
        ++pending_;
    }

    int pending_ = 0;
};

} // namespace ethkv::server
