// src/common is the bottom of the module DAG; including obs/ from
// here is a back-edge.
#include "obs/metrics.hh"

namespace ethkv
{

int
tick()
{
    return 1;
}

} // namespace ethkv
