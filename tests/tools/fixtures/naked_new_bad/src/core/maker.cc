namespace ethkv::core
{

int *
makeCounter()
{
    return new int(0);
}

} // namespace ethkv::core
