// Two mutexes acquired in both orders: a_ -> b_ in lockForward,
// b_ -> a_ in lockBackward. The lock graph has a 2-cycle.
namespace ethkv::kv
{

class Pair
{
  public:
    void
    lockForward()
    {
        MutexLock la(a_);
        MutexLock lb(b_);
        ++hits_;
    }

    void
    lockBackward()
    {
        MutexLock lb(b_);
        MutexLock la(a_);
        ++hits_;
    }

  private:
    Mutex a_;
    Mutex b_;
    int hits_ = 0;
};

} // namespace ethkv::kv
