// Networking goes through the net:: wrapper namespace; qualified
// wrapper calls are not raw syscalls.
namespace ethkv::core
{

int
sendAll(int fd, const char *buf, int n)
{
    return net::send(fd, buf, n);
}

} // namespace ethkv::core
