// workerLoop -> persist -> fsync: a blocking durability syscall
// reachable from the server request path.
namespace ethkv::server
{

class Server
{
  public:
    void
    workerLoop()
    {
        persist();
    }

  private:
    void
    persist()
    {
        fsync(fd_);
    }

    int fd_ = -1;
};

} // namespace ethkv::server
