// Rank table that contradicts the sharded-router flush barrier:
// the barrier mutex outranks the per-shard engine lock, yet
// router.cc acquires the barrier first — the held->acquired edge
// descends in rank.
#ifndef ETHKV_COMMON_LOCK_RANKS_HH
#define ETHKV_COMMON_LOCK_RANKS_HH

namespace ethkv::lock_ranks
{

inline constexpr int kShardedStore = 30;
inline constexpr int kLockedStore = 28;

struct Entry
{
    const char *mutex;
    int rank;
};

inline constexpr Entry kLockRanks[] = {
    {"Router::flush_mutex_", kShardedStore},
    {"Router::shard_mutex_", kLockedStore},
};

} // namespace ethkv::lock_ranks

#endif // ETHKV_COMMON_LOCK_RANKS_HH
