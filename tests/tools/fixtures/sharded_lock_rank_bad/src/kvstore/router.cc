namespace ethkv::kv
{

class Router
{
  public:
    void
    flushAll()
    {
        MutexLock barrier(flush_mutex_);
        MutexLock engine(shard_mutex_);
        ++flushes_;
    }

  private:
    Mutex flush_mutex_;
    Mutex shard_mutex_;
    int flushes_ = 0;
};

} // namespace ethkv::kv
