namespace ethkv::server
{

const char *
statsBody()
{
    return "{\"ops\":1}";
}

} // namespace ethkv::server
