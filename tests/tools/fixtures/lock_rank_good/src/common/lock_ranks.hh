// Table agrees with the code: a_ (10) is acquired before b_ (20),
// and both mutexes have entries.
#ifndef ETHKV_COMMON_LOCK_RANKS_HH
#define ETHKV_COMMON_LOCK_RANKS_HH

namespace ethkv::lock_ranks
{

inline constexpr int kA = 10;
inline constexpr int kB = 20;

struct Entry
{
    const char *mutex;
    int rank;
};

inline constexpr Entry kLockRanks[] = {
    {"Pair::a_", kA},
    {"Pair::b_", kB},
};

} // namespace ethkv::lock_ranks

#endif // ETHKV_COMMON_LOCK_RANKS_HH
