#ifndef ETHKV_ETH_THING_HH
#define ETHKV_ETH_THING_HH

#include "common/bytes.hh"

namespace ethkv::eth
{

struct Thing
{
    int v = 0;
};

} // namespace ethkv::eth

#endif // ETHKV_ETH_THING_HH
