// Every Status is consulted; value() is dominated by ok().
namespace ethkv::kv
{

Status doWork();

class Thing
{
  public:
    bool
    checkIt()
    {
        Status s = doWork();
        return s.ok();
    }

    int
    peek(Result<int> r)
    {
        if (!r.ok())
            return -1;
        return r.value();
    }
};

} // namespace ethkv::kv
