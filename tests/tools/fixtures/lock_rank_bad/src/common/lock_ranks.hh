// Rank table that contradicts the code: Pair::a_ outranks
// Pair::b_, but pair.cc acquires a_ before b_.
#ifndef ETHKV_COMMON_LOCK_RANKS_HH
#define ETHKV_COMMON_LOCK_RANKS_HH

namespace ethkv::lock_ranks
{

inline constexpr int kA = 20;
inline constexpr int kB = 10;

struct Entry
{
    const char *mutex;
    int rank;
};

inline constexpr Entry kLockRanks[] = {
    {"Pair::a_", kA},
    {"Pair::b_", kB},
};

} // namespace ethkv::lock_ranks

#endif // ETHKV_COMMON_LOCK_RANKS_HH
