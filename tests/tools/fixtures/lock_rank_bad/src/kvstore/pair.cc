namespace ethkv::kv
{

class Pair
{
  public:
    void
    lockBoth()
    {
        MutexLock la(a_);
        MutexLock lb(b_);
        ++hits_;
    }

  private:
    Mutex a_;
    Mutex b_;
    int hits_ = 0;
};

} // namespace ethkv::kv
