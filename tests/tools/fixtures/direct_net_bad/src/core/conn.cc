namespace ethkv::core
{

int
openConn()
{
    int fd = socket(2, 1, 0);
    return fd;
}

} // namespace ethkv::core
