#include <thread>

namespace ethkv::kv
{

void
spawnFlusher()
{
    std::thread t([] {});
    t.detach();
}

} // namespace ethkv::kv
