// JSON is emitted through the writer, never hand-rolled.
#include "obs/json.hh"

namespace ethkv::server
{

void
statsBody(obs::JsonWriter &w)
{
    w.key("ops");
    w.value(1);
}

} // namespace ethkv::server
