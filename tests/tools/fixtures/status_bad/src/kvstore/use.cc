// Three Status-discipline violations: a (void)-discarded Status,
// a value() with no dominating ok() check, and a Status local
// that is never consulted.
namespace ethkv::kv
{

Status doWork();

class Thing
{
  public:
    void
    dropIt()
    {
        (void)doWork();
    }

    int
    peek(Result<int> r)
    {
        return r.value();
    }

    void
    forgetIt()
    {
        Status s = doWork();
        ++calls_;
    }

  private:
    int calls_ = 0;
};

} // namespace ethkv::kv
