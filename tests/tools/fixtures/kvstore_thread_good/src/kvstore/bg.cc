// Background work is handed to the MaintenanceThread instead of
// spawning ad-hoc threads in the engine.
namespace ethkv::kv
{

class Flusher
{
  public:
    void
    schedule()
    {
        ++scheduled_;
    }

  private:
    int scheduled_ = 0;
};

} // namespace ethkv::kv
