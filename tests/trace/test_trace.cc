/**
 * @file
 * Trace infrastructure tests: interning, write/update
 * classification in the tracing shim, capture gating, and trace
 * file round-trips.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "kvstore/mem_store.hh"
#include "trace/record.hh"
#include "trace/trace_file.hh"
#include "trace/tracing_store.hh"

namespace ethkv::trace
{
namespace
{

uint16_t
testClassifier(BytesView key)
{
    return key.empty() ? 0 : static_cast<uint16_t>(key[0] % 7);
}

struct Harness
{
    kv::MemStore engine;
    TraceBuffer trace;
    KeyInterner interner;
    TracingKVStore store{engine, testClassifier, trace, interner};
};

TEST(KeyInternerTest, StableDenseIds)
{
    KeyInterner interner;
    EXPECT_EQ(interner.intern("a"), 0u);
    EXPECT_EQ(interner.intern("b"), 1u);
    EXPECT_EQ(interner.intern("a"), 0u);
    EXPECT_EQ(interner.uniqueKeys(), 2u);

    uint64_t id;
    EXPECT_TRUE(interner.find("b", id));
    EXPECT_EQ(id, 1u);
    EXPECT_FALSE(interner.find("c", id));
}

TEST(TracingStoreTest, WriteVsUpdateClassification)
{
    Harness h;
    // First put: Write. Second put to same key: Update. After
    // delete: Write again (the paper's liveness rule).
    ASSERT_TRUE(h.store.put("key", "1").isOk());
    ASSERT_TRUE(h.store.put("key", "2").isOk());
    ASSERT_TRUE(h.store.del("key").isOk());
    ASSERT_TRUE(h.store.put("key", "3").isOk());

    ASSERT_EQ(h.trace.size(), 4u);
    EXPECT_EQ(h.trace.records()[0].op, OpType::Write);
    EXPECT_EQ(h.trace.records()[1].op, OpType::Update);
    EXPECT_EQ(h.trace.records()[2].op, OpType::Delete);
    EXPECT_EQ(h.trace.records()[3].op, OpType::Write);
    // All four share one key id.
    for (const TraceRecord &r : h.trace.records())
        EXPECT_EQ(r.key_id, h.trace.records()[0].key_id);
}

TEST(TracingStoreTest, RecordsCarrySizesAndClass)
{
    Harness h;
    ASSERT_TRUE(h.store.put("xyz-key", Bytes(100, 'v')).isOk());
    Bytes value;
    ASSERT_TRUE(h.store.get("xyz-key", value).isOk());
    EXPECT_TRUE(h.store.get("missing", value).isNotFound());

    ASSERT_EQ(h.trace.size(), 3u);
    const TraceRecord &w = h.trace.records()[0];
    EXPECT_EQ(w.key_size, 7u);
    EXPECT_EQ(w.value_size, 100u);
    EXPECT_EQ(w.class_id, testClassifier("xyz-key"));

    const TraceRecord &hit = h.trace.records()[1];
    EXPECT_EQ(hit.op, OpType::Read);
    EXPECT_EQ(hit.value_size, 100u);
    // A miss still records the read, with zero value size.
    const TraceRecord &miss = h.trace.records()[2];
    EXPECT_EQ(miss.op, OpType::Read);
    EXPECT_EQ(miss.value_size, 0u);
}

TEST(TracingStoreTest, ScanEmitsOneRecord)
{
    Harness h;
    ASSERT_TRUE(h.store.put("a1", "x").isOk());
    ASSERT_TRUE(h.store.put("a2", "y").isOk());
    h.trace.clear();
    int visited = 0;
    ASSERT_TRUE(h.store.scan("a", "b",
                             [&](BytesView, BytesView) {
                                 ++visited;
                                 return true;
                             }).isOk());
    EXPECT_EQ(visited, 2);
    ASSERT_EQ(h.trace.size(), 1u);
    EXPECT_EQ(h.trace.records()[0].op, OpType::Scan);
}

TEST(TracingStoreTest, BatchEntriesTracedIndividually)
{
    Harness h;
    kv::WriteBatch batch;
    batch.put("k1", "a");
    batch.put("k2", "b");
    batch.del("k1");
    ASSERT_TRUE(h.store.apply(batch).isOk());
    ASSERT_EQ(h.trace.size(), 3u);
    EXPECT_EQ(h.trace.records()[0].op, OpType::Write);
    EXPECT_EQ(h.trace.records()[2].op, OpType::Delete);
    // And the engine actually applied the batch.
    EXPECT_FALSE(h.store.contains("k1"));
    EXPECT_TRUE(h.store.contains("k2"));
}

TEST(TracingStoreTest, CaptureGateTracksLiveness)
{
    Harness h;
    h.store.setCapture(false);
    // Uncaptured, but the key becomes live.
    ASSERT_TRUE(h.store.put("warm", "1").isOk());
    h.store.setCapture(true);
    // Must classify as Update.
    ASSERT_TRUE(h.store.put("warm", "2").isOk());

    ASSERT_EQ(h.trace.size(), 1u);
    EXPECT_EQ(h.trace.records()[0].op, OpType::Update);
}

TEST(TracingStoreTest, ForwardsToInnerEngine)
{
    Harness h;
    ASSERT_TRUE(h.store.put("k", "v").isOk());
    Bytes value;
    ASSERT_TRUE(h.engine.get("k", value).isOk());
    EXPECT_EQ(value, "v");
    EXPECT_EQ(h.store.liveKeyCount(), 1u);
}

TEST(TraceFileTest, RoundTrip)
{
    std::string path =
        (std::filesystem::temp_directory_path() /
         "ethkv_trace_test.bin")
            .string();
    {
        auto writer = TraceFileWriter::create(path);
        ASSERT_TRUE(writer.ok());
        for (uint64_t i = 0; i < 10000; ++i) {
            TraceRecord r;
            r.op = static_cast<OpType>(i % num_op_types);
            r.class_id = static_cast<uint16_t>(i % 29);
            r.key_id = i * 3;
            r.key_size = static_cast<uint16_t>(9 + i % 56);
            r.value_size = static_cast<uint32_t>(i % 1000);
            writer.value()->append(r);
        }
        ASSERT_TRUE(writer.value()->finish().isOk());
    }

    auto loaded = loadTraceFile(path);
    ASSERT_TRUE(loaded.ok());
    const auto &records = loaded.value().records();
    ASSERT_EQ(records.size(), 10000u);
    for (uint64_t i = 0; i < 10000; ++i) {
        EXPECT_EQ(records[i].op,
                  static_cast<OpType>(i % num_op_types));
        EXPECT_EQ(records[i].key_id, i * 3);
        EXPECT_EQ(records[i].value_size, i % 1000);
    }
    std::filesystem::remove(path);
}

TEST(TraceFileTest, DetectsTruncation)
{
    std::string path =
        (std::filesystem::temp_directory_path() /
         "ethkv_trace_trunc.bin")
            .string();
    {
        auto writer = TraceFileWriter::create(path);
        ASSERT_TRUE(writer.ok());
        for (uint64_t i = 0; i < 100; ++i) {
            TraceRecord r{};
            r.op = OpType::Read;
            r.key_id = i;
            writer.value()->append(r);
        }
        ASSERT_TRUE(writer.value()->finish().isOk());
    }
    auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 3);
    EXPECT_FALSE(loadTraceFile(path).ok());
    std::filesystem::remove(path);
}

TEST(TraceFileTest, RejectsBadMagic)
{
    std::string path =
        (std::filesystem::temp_directory_path() /
         "ethkv_trace_magic.bin")
            .string();
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        Bytes junk(64, 'z');
        std::fwrite(junk.data(), 1, junk.size(), f);
        std::fclose(f);
    }
    EXPECT_FALSE(loadTraceFile(path).ok());
    std::filesystem::remove(path);
}

TEST(OpTypeTest, Names)
{
    EXPECT_STREQ(opTypeName(OpType::Read), "read");
    EXPECT_STREQ(opTypeName(OpType::Write), "write");
    EXPECT_STREQ(opTypeName(OpType::Update), "update");
    EXPECT_STREQ(opTypeName(OpType::Delete), "delete");
    EXPECT_STREQ(opTypeName(OpType::Scan), "scan");
}

} // namespace
} // namespace ethkv::trace
