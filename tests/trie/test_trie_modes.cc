/**
 * @file
 * Storage-mode tests: the legacy hash-based persistence must
 * produce identical root hashes and lookups as the path-based
 * model, while exhibiting the redundant-entry growth that
 * motivated Geth's migration (paper Section II-A).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rand.hh"
#include "trie/trie.hh"

namespace ethkv::trie
{
namespace
{

class MapBackend : public NodeBackend
{
  public:
    Status
    read(BytesView key, Bytes &encoding) override
    {
        auto it = nodes.find(Bytes(key));
        if (it == nodes.end())
            return Status::notFound();
        encoding = it->second;
        return Status::ok();
    }

    void
    write(kv::WriteBatch &batch, BytesView key,
          BytesView encoding) override
    {
        batch.put(key, encoding);
    }

    void
    remove(kv::WriteBatch &batch, BytesView key) override
    {
        batch.del(key);
    }

    void
    apply(const kv::WriteBatch &batch)
    {
        for (const auto &e : batch.entries()) {
            if (e.op == kv::BatchOp::Put)
                nodes[e.key] = e.value;
            else
                nodes.erase(e.key);
        }
    }

    std::map<Bytes, Bytes> nodes;
};

eth::Hash256
commitTo(MerklePatriciaTrie &trie, MapBackend &backend)
{
    kv::WriteBatch batch;
    eth::Hash256 root = trie.commit(batch);
    backend.apply(batch);
    return root;
}

TEST(TrieModesTest, RootsAgreeAcrossModes)
{
    MapBackend pb, hb;
    MerklePatriciaTrie path_trie(pb, TrieStorageMode::PathBased);
    MerklePatriciaTrie hash_trie(hb, TrieStorageMode::HashBased);

    Rng rng(5);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 200; ++i) {
            Bytes key = keccak256Bytes(
                encodeBE64(rng.nextBounded(300)));
            Bytes value = rng.nextBytes(1 + rng.nextBounded(60));
            ASSERT_TRUE(path_trie.put(key, value).isOk());
            ASSERT_TRUE(hash_trie.put(key, value).isOk());
        }
        EXPECT_EQ(commitTo(path_trie, pb).hex(),
                  commitTo(hash_trie, hb).hex())
            << "round " << round;
    }
}

TEST(TrieModesTest, HashModeLookupsAfterUnload)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend, TrieStorageMode::HashBased);
    for (int i = 0; i < 150; ++i) {
        ASSERT_TRUE(trie.put(keccak256Bytes(encodeBE64(i)),
                             "value" + std::to_string(i))
                        .isOk());
    }
    commitTo(trie, backend);
    trie.unloadClean();

    Bytes value;
    for (int i = 0; i < 150; ++i) {
        ASSERT_TRUE(
            trie.get(keccak256Bytes(encodeBE64(i)), value).isOk())
            << i;
        EXPECT_EQ(value, "value" + std::to_string(i));
    }
}

TEST(TrieModesTest, HashModeAccumulatesRedundantEntries)
{
    // The same churn leaves the path-based store near its live
    // node count while the hash-based store keeps every stale
    // version — the redundant-entry growth of paper Section II-A.
    MapBackend pb, hb;
    MerklePatriciaTrie path_trie(pb, TrieStorageMode::PathBased);
    MerklePatriciaTrie hash_trie(hb, TrieStorageMode::HashBased);

    Rng rng(9);
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 100; ++i) {
            // Rewrite the same key set with fresh values.
            Bytes key = keccak256Bytes(encodeBE64(i));
            Bytes value = rng.nextBytes(40);
            ASSERT_TRUE(path_trie.put(key, value).isOk());
            ASSERT_TRUE(hash_trie.put(key, value).isOk());
        }
        commitTo(path_trie, pb);
        commitTo(hash_trie, hb);
    }
    // Path store is bounded by the live structure; hash store
    // holds many generations of it.
    EXPECT_GT(hb.nodes.size(), pb.nodes.size() * 5);
}

TEST(TrieModesTest, HashModeIssuesNoDeletes)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend, TrieStorageMode::HashBased);
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(trie.put(keccak256Bytes(encodeBE64(i)), "v").isOk());
    commitTo(trie, backend);

    for (int i = 0; i < 100; i += 2)
        ASSERT_TRUE(trie.del(keccak256Bytes(encodeBE64(i))).isOk());
    kv::WriteBatch batch;
    trie.commit(batch);
    for (const auto &e : batch.entries())
        EXPECT_EQ(e.op, kv::BatchOp::Put);
}

TEST(TrieModesTest, TinyTrieSurvivesUnloadInHashMode)
{
    // A single small leaf encodes under 32 bytes; the root must
    // still persist and reload by its hash.
    MapBackend backend;
    MerklePatriciaTrie trie(backend, TrieStorageMode::HashBased);
    ASSERT_TRUE(trie.put("k", "v").isOk());
    commitTo(trie, backend);
    trie.unloadClean();
    Bytes value;
    ASSERT_TRUE(trie.get("k", value).isOk());
    EXPECT_EQ(value, "v");
}

} // namespace
} // namespace ethkv::trie
