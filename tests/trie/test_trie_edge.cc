/**
 * @file
 * Trie edge cases: the 32-byte inline/hash child threshold, long
 * shared prefixes, fixed-width hashed-key workloads (the client's
 * usage), move semantics, and commit idempotence.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rand.hh"
#include "trie/trie.hh"

namespace ethkv::trie
{
namespace
{

class MapBackend : public NodeBackend
{
  public:
    Status
    read(BytesView path, Bytes &encoding) override
    {
        auto it = nodes.find(Bytes(path));
        if (it == nodes.end())
            return Status::notFound();
        encoding = it->second;
        return Status::ok();
    }

    void
    write(kv::WriteBatch &batch, BytesView path,
          BytesView encoding) override
    {
        batch.put(path, encoding);
        ++writes;
    }

    void
    remove(kv::WriteBatch &batch, BytesView path) override
    {
        batch.del(path);
        ++removes;
    }

    void
    apply(const kv::WriteBatch &batch)
    {
        for (const auto &e : batch.entries()) {
            if (e.op == kv::BatchOp::Put)
                nodes[e.key] = e.value;
            else
                nodes.erase(e.key);
        }
    }

    std::map<Bytes, Bytes> nodes;
    int writes = 0;
    int removes = 0;
};

std::string
commitHex(MerklePatriciaTrie &trie, MapBackend &backend)
{
    kv::WriteBatch batch;
    eth::Hash256 root = trie.commit(batch);
    backend.apply(batch);
    return root.hex();
}

TEST(TrieEdgeTest, ValuesAroundInlineThreshold)
{
    // Node encodings below 32 bytes embed in parents; above, they
    // are hash-referenced. Values near the boundary exercise both
    // paths and must round trip and commit deterministically.
    for (size_t len : {1u, 20u, 29u, 30u, 31u, 32u, 33u, 64u}) {
        MapBackend b1, b2;
        MerklePatriciaTrie t1(b1), t2(b2);
        for (int i = 0; i < 40; ++i) {
            Bytes key = keccak256Bytes(encodeBE64(i));
            Bytes value(len, static_cast<char>('a' + i % 26));
            ASSERT_TRUE(t1.put(key, value).isOk());
            ASSERT_TRUE(t2.put(key, value).isOk());
        }
        EXPECT_EQ(commitHex(t1, b1), commitHex(t2, b2))
            << "value length " << len;

        // Reload everything through the backend after unload.
        t1.unloadClean();
        for (int i = 0; i < 40; ++i) {
            Bytes key = keccak256Bytes(encodeBE64(i));
            Bytes value;
            ASSERT_TRUE(t1.get(key, value).isOk());
            EXPECT_EQ(value.size(), len);
        }
    }
}

TEST(TrieEdgeTest, LongSharedPrefixes)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    // Keys sharing 31 of 32 bytes: one long extension splits late.
    Bytes base(32, '\x11');
    for (int i = 0; i < 16; ++i) {
        Bytes key = base;
        key[31] = static_cast<char>(i);
        ASSERT_TRUE(
            trie.put(key, "v" + std::to_string(i)).isOk());
    }
    commitHex(trie, backend);
    trie.unloadClean();
    for (int i = 0; i < 16; ++i) {
        Bytes key = base;
        key[31] = static_cast<char>(i);
        Bytes value;
        ASSERT_TRUE(trie.get(key, value).isOk());
        EXPECT_EQ(value, "v" + std::to_string(i));
    }

    // Deleting all but one collapses back to a single leaf stored
    // at the root path.
    for (int i = 1; i < 16; ++i) {
        Bytes key = base;
        key[31] = static_cast<char>(i);
        ASSERT_TRUE(trie.del(key).isOk());
    }
    commitHex(trie, backend);
    EXPECT_EQ(backend.nodes.size(), 1u);
    EXPECT_TRUE(backend.nodes.count(Bytes()));
}

TEST(TrieEdgeTest, CommitIsIdempotent)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(trie.put(keccak256Bytes(encodeBE64(i)),
                             encodeBE64(i))
                        .isOk());
    }
    std::string root1 = commitHex(trie, backend);
    int writes_after_first = backend.writes;

    // A second commit with no mutations writes nothing new.
    std::string root2 = commitHex(trie, backend);
    EXPECT_EQ(root1, root2);
    EXPECT_EQ(backend.writes, writes_after_first);
    EXPECT_FALSE(trie.dirty());
}

TEST(TrieEdgeTest, OverwriteOnlyTouchesPathNodes)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(trie.put(keccak256Bytes(encodeBE64(i)),
                             encodeBE64(i))
                        .isOk());
    }
    commitHex(trie, backend);

    // Rewrite one key: only its path (depth ~2-3 here) recommits,
    // not the whole trie — the path-based model's selling point.
    int writes_before = backend.writes;
    ASSERT_TRUE(
        trie.put(keccak256Bytes(encodeBE64(7)), "fresh").isOk());
    commitHex(trie, backend);
    int path_writes = backend.writes - writes_before;
    EXPECT_GE(path_writes, 2);
    EXPECT_LE(path_writes, 8);
}

TEST(TrieEdgeTest, MoveConstruction)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(trie.put("key", "value").isOk());
    MerklePatriciaTrie moved(std::move(trie));
    Bytes value;
    ASSERT_TRUE(moved.get("key", value).isOk());
    EXPECT_EQ(value, "value");
}

TEST(TrieEdgeTest, SingleNibbleKeys)
{
    // One-byte keys produce the shallowest possible structures.
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    for (int i = 0; i < 256; ++i) {
        ASSERT_TRUE(trie.put(Bytes(1, static_cast<char>(i)),
                             encodeBE64(i))
                        .isOk());
    }
    commitHex(trie, backend);
    trie.unloadClean();
    for (int i = 0; i < 256; ++i) {
        Bytes value;
        ASSERT_TRUE(
            trie.get(Bytes(1, static_cast<char>(i)), value)
                .isOk());
        EXPECT_EQ(decodeBE64(value), static_cast<uint64_t>(i));
    }
}

TEST(TrieEdgeTest, HashedKeyChurnMatchesReference)
{
    // The client's exact usage pattern: fixed-width keccak keys,
    // repeated update/delete churn with commits and unloads.
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    std::map<Bytes, Bytes> ref;
    Rng rng(1234);

    for (int round = 0; round < 12; ++round) {
        for (int step = 0; step < 150; ++step) {
            Bytes key = keccak256Bytes(
                encodeBE64(rng.nextBounded(500)));
            if (rng.chance(0.75)) {
                Bytes value = rng.nextBytes(
                    1 + rng.nextBounded(100));
                ASSERT_TRUE(trie.put(key, value).isOk());
                ref[key] = value;
            } else {
                ASSERT_TRUE(trie.del(key).isOk());
                ref.erase(key);
            }
        }
        commitHex(trie, backend);
        trie.unloadClean();
    }
    for (const auto &[key, value] : ref) {
        Bytes out;
        ASSERT_TRUE(trie.get(key, out).isOk());
        ASSERT_EQ(out, value);
    }
}

} // namespace
} // namespace ethkv::trie
