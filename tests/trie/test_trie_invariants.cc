/**
 * @file
 * MerklePatriciaTrie::checkInvariants() tests: a healthy trie
 * passes in both storage modes through load/modify/commit cycles,
 * and injected backend corruption — a deleted interior node, a
 * tampered encoding — is detected as Corruption.
 */

#include <gtest/gtest.h>

#include <map>

#include "kvstore/write_batch.hh"
#include "trie/trie.hh"

namespace ethkv::trie
{
namespace
{

/** Map-backed NodeBackend (same shape as the main trie tests). */
class MapBackend : public NodeBackend
{
  public:
    Status
    read(BytesView path, Bytes &encoding) override
    {
        auto it = nodes.find(Bytes(path));
        if (it == nodes.end())
            return Status::notFound();
        encoding = it->second;
        return Status::ok();
    }

    void
    write(kv::WriteBatch &batch, BytesView path,
          BytesView encoding) override
    {
        batch.put(path, encoding);
    }

    void
    remove(kv::WriteBatch &batch, BytesView path) override
    {
        batch.del(path);
    }

    void
    apply(const kv::WriteBatch &batch)
    {
        for (const auto &e : batch.entries()) {
            if (e.op == kv::BatchOp::Put)
                nodes[e.key] = e.value;
            else
                nodes.erase(e.key);
        }
    }

    std::map<Bytes, Bytes> nodes;
};

void
commitAll(MerklePatriciaTrie &trie, MapBackend &backend)
{
    kv::WriteBatch batch;
    trie.commit(batch);
    backend.apply(batch);
}

void
populate(MerklePatriciaTrie &trie, int keys = 40)
{
    for (int i = 0; i < keys; ++i) {
        Bytes key = "key-" + std::to_string(i);
        Bytes value = "value-" + std::to_string(i * 7);
        ASSERT_TRUE(trie.put(key, value).isOk());
    }
}

class TrieInvariantsTest
    : public ::testing::TestWithParam<TrieStorageMode>
{
};

TEST_P(TrieInvariantsTest, HealthyTriePassesThroughLifecycle)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend, GetParam());

    // Empty trie, then dirty (in-memory pass only), then
    // committed (full persisted walk).
    EXPECT_TRUE(trie.checkInvariants().isOk());
    populate(trie);
    EXPECT_TRUE(trie.checkInvariants().isOk());
    commitAll(trie, backend);
    EXPECT_TRUE(trie.checkInvariants().isOk());

    // Drop clean nodes, traverse (reloads from the backend), and
    // re-verify.
    trie.unloadClean();
    Bytes value;
    ASSERT_TRUE(trie.get("key-3", value).isOk());
    EXPECT_EQ(value, "value-21");
    EXPECT_TRUE(trie.checkInvariants().isOk());

    // Deletes and re-commits keep the structure canonical.
    ASSERT_TRUE(trie.del("key-3").isOk());
    ASSERT_TRUE(trie.del("key-17").isOk());
    EXPECT_TRUE(trie.checkInvariants().isOk());
    commitAll(trie, backend);
    EXPECT_TRUE(trie.checkInvariants().isOk());
}

TEST_P(TrieInvariantsTest, DetectsDeletedInteriorNode)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend, GetParam());
    populate(trie);
    commitAll(trie, backend);
    ASSERT_TRUE(trie.checkInvariants().isOk());
    ASSERT_GT(backend.nodes.size(), 2u);

    // Drop a node out from under the persisted trie. The
    // persisted walk reads every reachable node back from the
    // backend, so still-loaded in-memory children cannot mask the
    // hole. (map order makes the last entry a deep node in path
    // mode — never the root, whose key is the empty path.)
    auto victim = backend.nodes.end();
    --victim;
    backend.nodes.erase(victim);
    Status s = trie.checkInvariants();
    EXPECT_FALSE(s.isOk()) << s.toString();
}

TEST_P(TrieInvariantsTest, DetectsTamperedNodeEncoding)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend, GetParam());
    populate(trie);
    commitAll(trie, backend);
    ASSERT_TRUE(trie.checkInvariants().isOk());

    // Overwrite a non-root node with a differently-encoded but
    // well-formed leaf: the parent's reference (path-derived hash
    // or inline encoding) no longer matches what is stored.
    auto victim = backend.nodes.end();
    --victim;
    Bytes other;
    {
        MapBackend scratch_backend;
        MerklePatriciaTrie scratch(scratch_backend, GetParam());
        ASSERT_TRUE(
            scratch.put("zz", "unrelated-payload").isOk());
        kv::WriteBatch batch;
        scratch.commit(batch);
        scratch_backend.apply(batch);
        ASSERT_FALSE(scratch_backend.nodes.empty());
        other = scratch_backend.nodes.begin()->second;
    }
    ASSERT_NE(victim->second, other);
    victim->second = other;

    Status s = trie.checkInvariants();
    EXPECT_FALSE(s.isOk()) << s.toString();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, TrieInvariantsTest,
    ::testing::Values(TrieStorageMode::PathBased,
                      TrieStorageMode::HashBased),
    [](const ::testing::TestParamInfo<TrieStorageMode> &info) {
        return info.param == TrieStorageMode::PathBased
                   ? "PathBased"
                   : "HashBased";
    });

} // namespace
} // namespace ethkv::trie
