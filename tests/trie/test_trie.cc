/**
 * @file
 * Merkle Patricia Trie tests: canonical Ethereum root vectors,
 * equivalence with a reference map under random ops, persistence
 * (commit / unload / reload), and orphaned-path deletion.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rand.hh"
#include "kvstore/mem_store.hh"
#include "trie/encoding.hh"
#include "trie/trie.hh"

namespace ethkv::trie
{
namespace
{

/** Map-backed NodeBackend that also records delete traffic. */
class MapBackend : public NodeBackend
{
  public:
    Status
    read(BytesView path, Bytes &encoding) override
    {
        ++reads;
        auto it = nodes.find(Bytes(path));
        if (it == nodes.end())
            return Status::notFound();
        encoding = it->second;
        return Status::ok();
    }

    void
    write(kv::WriteBatch &batch, BytesView path,
          BytesView encoding) override
    {
        batch.put(path, encoding);
    }

    void
    remove(kv::WriteBatch &batch, BytesView path) override
    {
        batch.del(path);
    }

    /** Apply a commit batch to the in-memory node map. */
    void
    apply(const kv::WriteBatch &batch)
    {
        for (const auto &e : batch.entries()) {
            if (e.op == kv::BatchOp::Put)
                nodes[e.key] = e.value;
            else
                nodes.erase(e.key);
        }
    }

    std::map<Bytes, Bytes> nodes;
    uint64_t reads = 0;
};

std::string
commitHex(MerklePatriciaTrie &trie, MapBackend &backend)
{
    kv::WriteBatch batch;
    eth::Hash256 root = trie.commit(batch);
    backend.apply(batch);
    return root.hex();
}

TEST(HexPrefixTest, RoundTrip)
{
    for (bool leaf : {false, true}) {
        for (size_t len : {0u, 1u, 2u, 5u, 64u}) {
            Bytes nibbles;
            for (size_t i = 0; i < len; ++i)
                nibbles.push_back(static_cast<char>(i % 16));
            Bytes enc = hexPrefixEncode(nibbles, leaf);
            Bytes out;
            bool out_leaf;
            ASSERT_TRUE(hexPrefixDecode(enc, out, out_leaf));
            EXPECT_EQ(out, nibbles);
            EXPECT_EQ(out_leaf, leaf);
        }
    }
}

TEST(HexPrefixTest, KnownEncodings)
{
    // From the yellow paper appendix: [1,2,3,4,5] ext -> 0x112345.
    Bytes n1{1, 2, 3, 4, 5};
    EXPECT_EQ(toHex(hexPrefixEncode(n1, false)), "112345");
    // [0,1,2,3,4,5] ext -> 0x00012345.
    Bytes n2{0, 1, 2, 3, 4, 5};
    EXPECT_EQ(toHex(hexPrefixEncode(n2, false)), "00012345");
    // [0,15,1,12,11,8] leaf -> 0x200f1cb8.
    Bytes n3{0, 15, 1, 12, 11, 8};
    EXPECT_EQ(toHex(hexPrefixEncode(n3, true)), "200f1cb8");
    // [15,1,12,11,8] leaf -> 0x3f1cb8.
    Bytes n4{15, 1, 12, 11, 8};
    EXPECT_EQ(toHex(hexPrefixEncode(n4, true)), "3f1cb8");
}

TEST(TrieTest, EmptyRoot)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    EXPECT_EQ(commitHex(trie, backend),
              "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc00162"
              "2fb5e363b421");
}

TEST(TrieTest, CanonicalDogsVector)
{
    // ethereum/tests trietest "branchingTests" vector.
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(trie.put("do", "verb").isOk());
    ASSERT_TRUE(trie.put("dog", "puppy").isOk());
    ASSERT_TRUE(trie.put("doge", "coin").isOk());
    ASSERT_TRUE(trie.put("horse", "stallion").isOk());
    EXPECT_EQ(commitHex(trie, backend),
              "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe"
              "457715e9ac84");
}

TEST(TrieTest, CanonicalSingleItemVector)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(
        trie.put("A", Bytes(50, 'a')).isOk());
    EXPECT_EQ(commitHex(trie, backend),
              "d23786fb4a010da3ce639d66d5e904a11dbc02746d1ce25029e5"
              "3290cabf28ab");
}

TEST(TrieTest, CanonicalFooFoodVector)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(trie.put("foo", "bar").isOk());
    ASSERT_TRUE(trie.put("food", "bass").isOk());
    EXPECT_EQ(commitHex(trie, backend),
              "17beaa1648bafa633cda809c90c04af50fc8aed3cb40d16efbdd"
              "ee6fdf63c4c3");
}

TEST(TrieTest, SmallBranchVector)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(trie.put("a", "1").isOk());
    ASSERT_TRUE(trie.put("b", "2").isOk());
    EXPECT_EQ(commitHex(trie, backend),
              "d15c52b881b62bcc00d8dc4e9a391df02e0a68b94e74a9a00e98"
              "1851a5f4b337");
}

TEST(TrieTest, InsertionOrderIndependence)
{
    std::vector<std::pair<Bytes, Bytes>> kvs = {
        {"do", "verb"},   {"dog", "puppy"}, {"doge", "coin"},
        {"horse", "stallion"}, {"dodge", "car"}, {"a", "x"},
    };
    std::string expected;
    Rng rng(99);
    for (int perm = 0; perm < 10; ++perm) {
        // Fisher-Yates shuffle.
        for (size_t i = kvs.size(); i > 1; --i)
            std::swap(kvs[i - 1], kvs[rng.nextBounded(i)]);
        MapBackend backend;
        MerklePatriciaTrie trie(backend);
        for (const auto &[k, v] : kvs)
            ASSERT_TRUE(trie.put(k, v).isOk());
        std::string root = commitHex(trie, backend);
        if (perm == 0)
            expected = root;
        else
            EXPECT_EQ(root, expected) << "perm " << perm;
    }
}

TEST(TrieTest, DeleteRestoresPriorRoot)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(trie.put("do", "verb").isOk());
    ASSERT_TRUE(trie.put("horse", "stallion").isOk());
    std::string before = commitHex(trie, backend);

    ASSERT_TRUE(trie.put("dog", "puppy").isOk());
    ASSERT_TRUE(trie.put("doge", "coin").isOk());
    std::string middle = commitHex(trie, backend);
    EXPECT_NE(middle, before);

    ASSERT_TRUE(trie.del("dog").isOk());
    ASSERT_TRUE(trie.del("doge").isOk());
    EXPECT_EQ(commitHex(trie, backend), before);
}

TEST(TrieTest, DeleteToEmpty)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(trie.put("k1", "v1").isOk());
    ASSERT_TRUE(trie.put("k2", "v2").isOk());
    commitHex(trie, backend);
    ASSERT_TRUE(trie.del("k1").isOk());
    ASSERT_TRUE(trie.del("k2").isOk());
    EXPECT_EQ(commitHex(trie, backend),
              "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc00162"
              "2fb5e363b421");
    // Every persisted node path must have been deleted.
    EXPECT_TRUE(backend.nodes.empty());
}

TEST(TrieTest, GetAfterUnloadReloadsFromBackend)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    for (int i = 0; i < 100; ++i) {
        Bytes key = keccak256Bytes("key" + std::to_string(i));
        ASSERT_TRUE(trie.put(key, "value" + std::to_string(i))
                        .isOk());
    }
    commitHex(trie, backend);
    trie.unloadClean();
    EXPECT_EQ(trie.loadedNodeCount(), 0u);

    uint64_t reads_before = backend.reads;
    for (int i = 0; i < 100; ++i) {
        Bytes key = keccak256Bytes("key" + std::to_string(i));
        Bytes value;
        ASSERT_TRUE(trie.get(key, value).isOk()) << i;
        EXPECT_EQ(value, "value" + std::to_string(i));
    }
    // Lookups after unload traverse the backend.
    EXPECT_GT(backend.reads, reads_before);
}

TEST(TrieTest, RejectsEmptyValues)
{
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    EXPECT_EQ(trie.put("k", "").code(),
              StatusCode::InvalidArgument);
}

TEST(TrieTest, BranchValueSlot)
{
    // "do" terminates exactly at the branch below "do"'s extension
    // once "dog" exists: exercises the 17th value slot.
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    ASSERT_TRUE(trie.put("dog", "puppy").isOk());
    ASSERT_TRUE(trie.put("do", "verb").isOk());
    Bytes v;
    ASSERT_TRUE(trie.get("do", v).isOk());
    EXPECT_EQ(v, "verb");
    ASSERT_TRUE(trie.get("dog", v).isOk());
    EXPECT_EQ(v, "puppy");
    ASSERT_TRUE(trie.del("do").isOk());
    EXPECT_TRUE(trie.get("do", v).isNotFound());
    ASSERT_TRUE(trie.get("dog", v).isOk());
}

class TrieRandomOps : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(TrieRandomOps, MatchesReferenceMapAcrossCommits)
{
    Rng rng(GetParam());
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    std::map<Bytes, Bytes> ref;

    for (int round = 0; round < 8; ++round) {
        for (int step = 0; step < 400; ++step) {
            // Fixed-width hashed keys (like the client's usage)
            // plus some short raw keys to stress prefixes.
            Bytes key;
            if (rng.chance(0.7)) {
                key = keccak256Bytes(
                    encodeBE64(rng.nextBounded(300)));
            } else {
                key = Bytes("k") +
                      std::to_string(rng.nextBounded(80));
            }
            if (rng.chance(0.65)) {
                Bytes value =
                    rng.nextBytes(1 + rng.nextBounded(60));
                ASSERT_TRUE(trie.put(key, value).isOk());
                ref[key] = value;
            } else {
                ASSERT_TRUE(trie.del(key).isOk());
                ref.erase(key);
            }
        }
        commitHex(trie, backend);
        if (round % 2 == 1)
            trie.unloadClean();

        // Full content check against the reference.
        for (const auto &[key, value] : ref) {
            Bytes v;
            ASSERT_TRUE(trie.get(key, v).isOk());
            ASSERT_EQ(v, value);
        }
    }

    // Root must be reproducible by a fresh trie over the same
    // final content (canonical commitment property).
    MapBackend fresh_backend;
    MerklePatriciaTrie fresh(fresh_backend);
    for (const auto &[key, value] : ref)
        ASSERT_TRUE(fresh.put(key, value).isOk());
    kv::WriteBatch b1, b2;
    EXPECT_EQ(trie.commit(b1).hex(), fresh.commit(b2).hex());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRandomOps,
                         ::testing::Values(7, 23, 61, 97, 151));

TEST(TrieTest, PersistedNodeSetMatchesFreshBuild)
{
    // After arbitrary mutations + commits, the set of stored node
    // paths must equal what a fresh build of the same content
    // stores: no leaked (orphaned but undeleted) nodes.
    Rng rng(404);
    MapBackend backend;
    MerklePatriciaTrie trie(backend);
    std::map<Bytes, Bytes> ref;

    for (int step = 0; step < 2000; ++step) {
        Bytes key = keccak256Bytes(encodeBE64(rng.nextBounded(150)));
        if (rng.chance(0.6)) {
            Bytes value = rng.nextBytes(1 + rng.nextBounded(40));
            ASSERT_TRUE(trie.put(key, value).isOk());
            ref[key] = value;
        } else {
            ASSERT_TRUE(trie.del(key).isOk());
            ref.erase(key);
        }
        if (step % 100 == 99)
            commitHex(trie, backend);
    }
    commitHex(trie, backend);

    MapBackend fresh_backend;
    MerklePatriciaTrie fresh(fresh_backend);
    for (const auto &[key, value] : ref)
        ASSERT_TRUE(fresh.put(key, value).isOk());
    kv::WriteBatch batch;
    fresh.commit(batch);
    fresh_backend.apply(batch);

    ASSERT_EQ(backend.nodes.size(), fresh_backend.nodes.size());
    for (const auto &[path, enc] : fresh_backend.nodes) {
        auto it = backend.nodes.find(path);
        ASSERT_NE(it, backend.nodes.end())
            << "missing node at path " << toHex(path);
        EXPECT_EQ(it->second, enc);
    }
}

} // namespace
} // namespace ethkv::trie
