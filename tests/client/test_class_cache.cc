/**
 * @file
 * Caching layer tests: read-hit absorption, uncached classes,
 * write-back coalescing, eviction under budget, pass-through mode.
 */

#include <gtest/gtest.h>

#include "client/class_cache.hh"
#include "kvstore/mem_store.hh"

namespace ethkv::client
{
namespace
{

Bytes
snapKey(uint64_t i)
{
    return snapshotAccountKey(eth::hashOf(encodeBE64(i)));
}

Bytes
trieKey(uint64_t i)
{
    Bytes path = encodeBE64(i);
    return trieNodeAccountKey(path);
}

TEST(ClassCacheTest, ReadHitsSkipInner)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});

    ASSERT_TRUE(cache.put(snapKey(1), "value").isOk());
    uint64_t inner_reads = inner.stats().user_reads;

    Bytes value;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(cache.get(snapKey(1), value).isOk());
        EXPECT_EQ(value, "value");
    }
    // All ten reads served from the LRU.
    EXPECT_EQ(inner.stats().user_reads, inner_reads);
    EXPECT_GE(cache.cacheStats().hits, 10u);
}

TEST(ClassCacheTest, MissFillsThenHits)
{
    kv::MemStore inner;
    ASSERT_TRUE(inner.put(snapKey(2), "cold").isOk());
    CachingKVStore cache(inner, CacheConfig{});

    Bytes value;
    ASSERT_TRUE(cache.get(snapKey(2), value).isOk());
    uint64_t reads_after_miss = inner.stats().user_reads;
    ASSERT_TRUE(cache.get(snapKey(2), value).isOk());
    EXPECT_EQ(inner.stats().user_reads, reads_after_miss);
}

TEST(ClassCacheTest, UncachedClassesAlwaysReachInner)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});

    // Singletons (GroupOther) have no cache, like Geth.
    ASSERT_TRUE(cache.put(lastBlockKey(), "hash").isOk());
    uint64_t reads = inner.stats().user_reads;
    Bytes value;
    ASSERT_TRUE(cache.get(lastBlockKey(), value).isOk());
    ASSERT_TRUE(cache.get(lastBlockKey(), value).isOk());
    EXPECT_EQ(inner.stats().user_reads, reads + 2);
}

TEST(ClassCacheTest, WriteBackCoalescesTrieNodes)
{
    kv::MemStore inner;
    CacheConfig config;
    config.write_back_bytes = 1u << 20;
    CachingKVStore cache(inner, config);

    // Ten writes to the same trie path: only one reaches the
    // engine at flush (Geth's pathdb buffer behaviour).
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(cache.put(trieKey(7), "version-" + std::to_string(i)).isOk());
    EXPECT_EQ(inner.stats().user_writes, 0u);
    EXPECT_EQ(cache.cacheStats().writeback_coalesced, 9u);

    // Reads see the buffered value without touching the engine.
    Bytes value;
    ASSERT_TRUE(cache.get(trieKey(7), value).isOk());
    EXPECT_EQ(value, "version-9");
    EXPECT_EQ(inner.stats().user_reads, 0u);

    ASSERT_TRUE(cache.flushWriteBack().isOk());
    EXPECT_EQ(inner.stats().user_writes, 1u);
    Bytes inner_value;
    ASSERT_TRUE(inner.get(trieKey(7), inner_value).isOk());
    EXPECT_EQ(inner_value, "version-9");
}

TEST(ClassCacheTest, WriteBackDeleteShadowsInner)
{
    kv::MemStore inner;
    ASSERT_TRUE(inner.put(trieKey(3), "old").isOk());
    CachingKVStore cache(inner, CacheConfig{});

    ASSERT_TRUE(cache.del(trieKey(3)).isOk());
    Bytes value;
    EXPECT_TRUE(cache.get(trieKey(3), value).isNotFound());
    // Inner still has it until the buffer drains.
    EXPECT_TRUE(inner.get(trieKey(3), value).isOk());
    ASSERT_TRUE(cache.flushWriteBack().isOk());
    EXPECT_TRUE(inner.get(trieKey(3), value).isNotFound());
}

TEST(ClassCacheTest, WriteBackAutoFlushesAtBudget)
{
    kv::MemStore inner;
    CacheConfig config;
    config.write_back_bytes = 4096;
    CachingKVStore cache(inner, config);

    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(cache.put(trieKey(i), Bytes(100, 'v')).isOk());
    // The 4 KiB buffer cannot hold 100 x ~100 B: flushes happened.
    EXPECT_GT(cache.cacheStats().writeback_flushes, 0u);
    EXPECT_GT(inner.stats().user_writes, 0u);
    EXPECT_LE(cache.writeBackBytes(), 4096u + 200);
}

TEST(ClassCacheTest, EvictionKeepsBudget)
{
    kv::MemStore inner;
    CacheConfig config;
    config.total_bytes = 16 << 10; // snapshot group = 25% = 4 KiB
    CachingKVStore cache(inner, config);

    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(cache.put(snapKey(i), Bytes(64, 'v')).isOk());
    EXPECT_GT(cache.cacheStats().evictions, 0u);
    EXPECT_LE(cache.cachedBytes(), config.total_bytes);

    // Everything still durable in the engine.
    Bytes value;
    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(inner.get(snapKey(i), value).isOk());
}

TEST(ClassCacheTest, DisabledModeIsTransparent)
{
    kv::MemStore inner;
    CacheConfig config;
    config.enabled = false;
    CachingKVStore cache(inner, config);

    ASSERT_TRUE(cache.put(snapKey(1), "v").isOk());
    Bytes value;
    ASSERT_TRUE(cache.get(snapKey(1), value).isOk());
    ASSERT_TRUE(cache.get(snapKey(1), value).isOk());
    EXPECT_EQ(inner.stats().user_writes, 1u);
    EXPECT_EQ(inner.stats().user_reads, 2u);
    EXPECT_EQ(cache.cacheStats().hits, 0u);
}

TEST(ClassCacheTest, ApplySplitsBatch)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});

    kv::WriteBatch batch;
    batch.put(trieKey(1), "trie");   // write-back class
    batch.put(snapKey(1), "snap");   // write-through class
    batch.del(snapKey(2));
    ASSERT_TRUE(cache.apply(batch).isOk());

    // Only the write-through entries reached the engine.
    EXPECT_EQ(inner.stats().user_writes, 1u);
    EXPECT_EQ(inner.stats().user_deletes, 1u);
    Bytes value;
    ASSERT_TRUE(cache.get(trieKey(1), value).isOk());
    EXPECT_EQ(value, "trie");
}

TEST(ClassCacheTest, LiveKeyCountDrainsBuffer)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});
    ASSERT_TRUE(cache.put(trieKey(1), "a").isOk());
    ASSERT_TRUE(cache.put(snapKey(1), "b").isOk());
    EXPECT_EQ(cache.liveKeyCount(), 2u);
}

} // namespace
} // namespace ethkv::client
