/**
 * @file
 * Caching layer tests: read-hit absorption, uncached classes,
 * write-back coalescing, eviction under budget, pass-through mode.
 */

#include <gtest/gtest.h>

#include "client/class_cache.hh"
#include "common/fault_env.hh"
#include "kvstore/log_store.hh"
#include "kvstore/mem_store.hh"
#include "obs/metrics.hh"
#include "../kvstore/test_util.hh"

namespace ethkv::client
{
namespace
{

Bytes
snapKey(uint64_t i)
{
    return snapshotAccountKey(eth::hashOf(encodeBE64(i)));
}

Bytes
trieKey(uint64_t i)
{
    Bytes path = encodeBE64(i);
    return trieNodeAccountKey(path);
}

TEST(ClassCacheTest, ReadHitsSkipInner)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});

    ASSERT_TRUE(cache.put(snapKey(1), "value").isOk());
    uint64_t inner_reads = inner.stats().user_reads;

    Bytes value;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(cache.get(snapKey(1), value).isOk());
        EXPECT_EQ(value, "value");
    }
    // All ten reads served from the LRU.
    EXPECT_EQ(inner.stats().user_reads, inner_reads);
    EXPECT_GE(cache.cacheStats().hits, 10u);
}

TEST(ClassCacheTest, MissFillsThenHits)
{
    kv::MemStore inner;
    ASSERT_TRUE(inner.put(snapKey(2), "cold").isOk());
    CachingKVStore cache(inner, CacheConfig{});

    Bytes value;
    ASSERT_TRUE(cache.get(snapKey(2), value).isOk());
    uint64_t reads_after_miss = inner.stats().user_reads;
    ASSERT_TRUE(cache.get(snapKey(2), value).isOk());
    EXPECT_EQ(inner.stats().user_reads, reads_after_miss);
}

TEST(ClassCacheTest, UncachedClassesAlwaysReachInner)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});

    // Singletons (GroupOther) have no cache, like Geth.
    ASSERT_TRUE(cache.put(lastBlockKey(), "hash").isOk());
    uint64_t reads = inner.stats().user_reads;
    Bytes value;
    ASSERT_TRUE(cache.get(lastBlockKey(), value).isOk());
    ASSERT_TRUE(cache.get(lastBlockKey(), value).isOk());
    EXPECT_EQ(inner.stats().user_reads, reads + 2);
}

TEST(ClassCacheTest, WriteBackCoalescesTrieNodes)
{
    kv::MemStore inner;
    CacheConfig config;
    config.write_back_bytes = 1u << 20;
    CachingKVStore cache(inner, config);

    // Ten writes to the same trie path: only one reaches the
    // engine at flush (Geth's pathdb buffer behaviour).
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(cache.put(trieKey(7), "version-" + std::to_string(i)).isOk());
    EXPECT_EQ(inner.stats().user_writes, 0u);
    EXPECT_EQ(cache.cacheStats().writeback_coalesced, 9u);

    // Reads see the buffered value without touching the engine.
    Bytes value;
    ASSERT_TRUE(cache.get(trieKey(7), value).isOk());
    EXPECT_EQ(value, "version-9");
    EXPECT_EQ(inner.stats().user_reads, 0u);

    ASSERT_TRUE(cache.flushWriteBack().isOk());
    EXPECT_EQ(inner.stats().user_writes, 1u);
    Bytes inner_value;
    ASSERT_TRUE(inner.get(trieKey(7), inner_value).isOk());
    EXPECT_EQ(inner_value, "version-9");
}

TEST(ClassCacheTest, WriteBackDeleteShadowsInner)
{
    kv::MemStore inner;
    ASSERT_TRUE(inner.put(trieKey(3), "old").isOk());
    CachingKVStore cache(inner, CacheConfig{});

    ASSERT_TRUE(cache.del(trieKey(3)).isOk());
    Bytes value;
    EXPECT_TRUE(cache.get(trieKey(3), value).isNotFound());
    // Inner still has it until the buffer drains.
    EXPECT_TRUE(inner.get(trieKey(3), value).isOk());
    ASSERT_TRUE(cache.flushWriteBack().isOk());
    EXPECT_TRUE(inner.get(trieKey(3), value).isNotFound());
}

TEST(ClassCacheTest, WriteBackAutoFlushesAtBudget)
{
    kv::MemStore inner;
    CacheConfig config;
    config.write_back_bytes = 4096;
    CachingKVStore cache(inner, config);

    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_TRUE(cache.put(trieKey(i), Bytes(100, 'v')).isOk());
    // The 4 KiB buffer cannot hold 100 x ~100 B: flushes happened.
    EXPECT_GT(cache.cacheStats().writeback_flushes, 0u);
    EXPECT_GT(inner.stats().user_writes, 0u);
    EXPECT_LE(cache.writeBackBytes(), 4096u + 200);
}

TEST(ClassCacheTest, EvictionKeepsBudget)
{
    kv::MemStore inner;
    CacheConfig config;
    config.total_bytes = 16 << 10; // snapshot group = 25% = 4 KiB
    CachingKVStore cache(inner, config);

    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(cache.put(snapKey(i), Bytes(64, 'v')).isOk());
    EXPECT_GT(cache.cacheStats().evictions, 0u);
    EXPECT_LE(cache.cachedBytes(), config.total_bytes);

    // Everything still durable in the engine.
    Bytes value;
    for (uint64_t i = 0; i < 500; ++i)
        ASSERT_TRUE(inner.get(snapKey(i), value).isOk());
}

TEST(ClassCacheTest, DisabledModeIsTransparent)
{
    kv::MemStore inner;
    CacheConfig config;
    config.enabled = false;
    CachingKVStore cache(inner, config);

    ASSERT_TRUE(cache.put(snapKey(1), "v").isOk());
    Bytes value;
    ASSERT_TRUE(cache.get(snapKey(1), value).isOk());
    ASSERT_TRUE(cache.get(snapKey(1), value).isOk());
    EXPECT_EQ(inner.stats().user_writes, 1u);
    EXPECT_EQ(inner.stats().user_reads, 2u);
    EXPECT_EQ(cache.cacheStats().hits, 0u);
}

TEST(ClassCacheTest, ApplySplitsBatch)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});

    kv::WriteBatch batch;
    batch.put(trieKey(1), "trie");   // write-back class
    batch.put(snapKey(1), "snap");   // write-through class
    batch.del(snapKey(2));
    ASSERT_TRUE(cache.apply(batch).isOk());

    // Only the write-through entries reached the engine.
    EXPECT_EQ(inner.stats().user_writes, 1u);
    EXPECT_EQ(inner.stats().user_deletes, 1u);
    Bytes value;
    ASSERT_TRUE(cache.get(trieKey(1), value).isOk());
    EXPECT_EQ(value, "trie");
}

TEST(ClassCacheTest, LiveKeyCountDrainsBuffer)
{
    kv::MemStore inner;
    CachingKVStore cache(inner, CacheConfig{});
    ASSERT_TRUE(cache.put(trieKey(1), "a").isOk());
    ASSERT_TRUE(cache.put(snapKey(1), "b").isOk());
    EXPECT_EQ(cache.liveKeyCount(), 2u);
}

TEST(ClassCacheTest, FailedWriteBackFlushKeepsAckedWrites)
{
    // The write-back buffer holds acknowledged writes. A flush
    // whose inner apply fails must leave them buffered (still
    // readable, retried later) — the old code cleared the buffer
    // before applying, silently dropping them on failure.
    testutil::ScratchDir dir("cache_degraded");
    FaultInjectionEnv fenv(Env::defaultEnv(), 1);
    kv::LogStoreOptions options;
    options.dir = dir.path();
    options.env = &fenv;
    options.sync_appends = true;
    auto inner = kv::AppendLogStore::open(options);
    ASSERT_TRUE(inner.ok()) << inner.status().message();
    CachingKVStore cache(*inner.value(), CacheConfig{});

    ASSERT_TRUE(cache.put(trieKey(1), "acked").isOk());
    EXPECT_GT(cache.writeBackBytes(), 0u);

    fenv.setWriteError(true);
    Status s = cache.flushWriteBack();
    EXPECT_FALSE(s.isOk());

    // The acked write is still served from the buffer.
    Bytes value;
    ASSERT_TRUE(cache.get(trieKey(1), value).isOk());
    EXPECT_EQ(value, "acked");
    EXPECT_GT(cache.writeBackBytes(), 0u);
}

TEST(ClassCacheTest, DegradedInnerStoreStopsMutationsNotCachedReads)
{
    testutil::ScratchDir dir("cache_degraded");
    FaultInjectionEnv fenv(Env::defaultEnv(), 1);
    kv::LogStoreOptions options;
    options.dir = dir.path();
    options.env = &fenv;
    options.sync_appends = true;
    auto inner = kv::AppendLogStore::open(options);
    ASSERT_TRUE(inner.ok()) << inner.status().message();
    CachingKVStore cache(*inner.value(), CacheConfig{});

    // One write-through entry (fills the LRU) and one write-back
    // entry (sits in the buffer) before the fault.
    ASSERT_TRUE(cache.put(snapKey(1), "lru-val").isOk());
    ASSERT_TRUE(cache.put(trieKey(1), "wb-val").isOk());

    // First failing write degrades the inner store (IOError to the
    // caller); the next one surfaces IODegraded and latches the
    // cache's own sticky flag.
    fenv.setWriteError(true);
    EXPECT_FALSE(cache.put(snapKey(2), "x").isOk());
    EXPECT_TRUE(cache.put(snapKey(3), "x").isIODegraded());
    EXPECT_TRUE(cache.isDegraded());

    // Mutations now fail fast — including write-back classes,
    // which must not keep acknowledging writes the buffer can
    // never flush.
    uint64_t wb_before = cache.writeBackBytes();
    EXPECT_TRUE(cache.put(trieKey(2), "y").isIODegraded());
    EXPECT_TRUE(cache.del(snapKey(1)).isIODegraded());
    EXPECT_EQ(cache.writeBackBytes(), wb_before);

    // Cache hits keep serving reads through the outage, and the
    // masking is visible in the degraded-read-hit counter.
    obs::Counter &masked =
        obs::MetricsRegistry::global().counter(
            "cache.degraded_read_hits");
    uint64_t masked_before = masked.value();
    Bytes value;
    ASSERT_TRUE(cache.get(snapKey(1), value).isOk());
    EXPECT_EQ(value, "lru-val");
    ASSERT_TRUE(cache.get(trieKey(1), value).isOk());
    EXPECT_EQ(value, "wb-val");
    EXPECT_EQ(masked.value(), masked_before + 2);

    // Sticky: clearing the fault does not un-degrade.
    fenv.setWriteError(false);
    EXPECT_TRUE(cache.put(snapKey(4), "z").isIODegraded());
    EXPECT_TRUE(cache.flushWriteBack().isIODegraded());
    EXPECT_TRUE(cache.isDegraded());
}

} // namespace
} // namespace ethkv::client
