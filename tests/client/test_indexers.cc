/**
 * @file
 * Indexer tests: tx-lookup indexing + tail pruning (including the
 * freezer fallback), bloombits section processing, and skeleton
 * sync bookkeeping.
 */

#include <gtest/gtest.h>

#include "client/indexers.hh"
#include "kvstore/mem_store.hh"
#include "../kvstore/test_util.hh"

namespace ethkv::client
{
namespace
{

using testutil::ScratchDir;

eth::Block
makeBlock(uint64_t number, int txs)
{
    eth::Block block;
    block.header.number = number;
    block.header.parent_hash = eth::hashOf(encodeBE64(number - 1));
    for (int i = 0; i < txs; ++i) {
        eth::Transaction tx;
        tx.nonce = number * 1000 + i;
        tx.from = eth::Address::fromId(i);
        tx.to = eth::Address::fromId(i + 1);
        block.body.transactions.push_back(tx);
    }
    return block;
}

/** Store one block the way the download phase does. */
void
storeBlock(kv::KVStore &store, const eth::Block &block)
{
    eth::Hash256 hash = block.header.hash();
    ASSERT_TRUE(store.put(canonicalHashKey(block.header.number),
                          hash.toBytes()).isOk());
    ASSERT_TRUE(store.put(blockBodyKey(block.header.number, hash),
                          block.body.encode()).isOk());
}

TEST(TxIndexerTest, IndexesEveryTransaction)
{
    kv::MemStore store;
    TxIndexer indexer(store, 16);
    eth::Block block = makeBlock(1, 10);

    kv::WriteBatch batch;
    indexer.indexBlock(batch, block);
    store.apply(batch).expectOk("apply");

    for (const eth::Transaction &tx : block.body.transactions) {
        Bytes value;
        ASSERT_TRUE(
            store.get(txLookupKey(tx.hash()), value).isOk());
        EXPECT_EQ(decodeBE64(value), 1u);
    }
}

TEST(TxIndexerTest, PrunesTailFromStoreBodies)
{
    kv::MemStore store;
    TxIndexer indexer(store, 4); // keep only 4 blocks indexed
    std::vector<eth::Block> blocks;
    for (uint64_t n = 1; n <= 10; ++n) {
        blocks.push_back(makeBlock(n, 5));
        storeBlock(store, blocks.back());
        kv::WriteBatch batch;
        indexer.indexBlock(batch, blocks.back());
        ASSERT_TRUE(indexer.pruneTail(batch, n).isOk());
        store.apply(batch).expectOk("apply");
    }
    // Blocks 1..6 pruned; 7..10 still indexed.
    EXPECT_EQ(indexer.tail(), 7u);
    for (uint64_t n = 1; n <= 10; ++n) {
        bool indexed = n >= 7;
        for (const eth::Transaction &tx :
             blocks[n - 1].body.transactions) {
            EXPECT_EQ(store.contains(txLookupKey(tx.hash())),
                      indexed)
                << "block " << n;
        }
    }
    // Tail marker persisted.
    Bytes tail_raw;
    ASSERT_TRUE(
        store.get(transactionIndexTailKey(), tail_raw).isOk());
    EXPECT_EQ(decodeBE64(tail_raw), 7u);
}

TEST(TxIndexerTest, PruneFallsBackToFreezer)
{
    ScratchDir dir("txidx");
    kv::MemStore store;
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    TxIndexer indexer(store, 2, freezer.value().get());

    // Block 0 filler so freezer numbering aligns.
    freezer.value()
        ->append(0, "", "", eth::BlockBody().encode(), "")
        .expectOk("freeze 0");

    // Blocks 1..5: indexed; bodies of 1-2 only in the freezer
    // (already migrated out of the KV store).
    std::vector<eth::Block> blocks;
    for (uint64_t n = 1; n <= 5; ++n) {
        blocks.push_back(makeBlock(n, 3));
        kv::WriteBatch batch;
        indexer.indexBlock(batch, blocks.back());
        store.apply(batch).expectOk("apply");
        freezer.value()
            ->append(n, "h", "hdr", blocks.back().body.encode(),
                     "r")
            .expectOk("freeze");
        if (n > 2)
            storeBlock(store, blocks.back());
    }

    kv::WriteBatch batch;
    ASSERT_TRUE(indexer.pruneTail(batch, 5).isOk());
    store.apply(batch).expectOk("apply");
    EXPECT_EQ(indexer.tail(), 4u);

    // Lookups of blocks 1-3 (recovered via freezer and store) are
    // gone; blocks 4-5 remain.
    for (uint64_t n = 1; n <= 5; ++n) {
        bool indexed = n >= 4;
        for (const eth::Transaction &tx :
             blocks[n - 1].body.transactions) {
            EXPECT_EQ(store.contains(txLookupKey(tx.hash())),
                      indexed)
                << "block " << n;
        }
    }
}

TEST(TxIndexerTest, NoPruneBeforeWindowFills)
{
    kv::MemStore store;
    TxIndexer indexer(store, 100);
    kv::WriteBatch batch;
    ASSERT_TRUE(indexer.pruneTail(batch, 50).isOk());
    EXPECT_TRUE(batch.empty());
    EXPECT_EQ(indexer.tail(), 0u);
}

TEST(BloomBitsTest, SectionProducesAllBitRows)
{
    kv::MemStore store;
    BloomBitsIndexer indexer(store, 4); // tiny sections

    eth::Hash256 last_hash;
    for (uint64_t n = 1; n <= 4; ++n) {
        eth::BlockHeader header;
        header.number = n;
        header.logs_bloom.add("contract-" + std::to_string(n));
        last_hash = header.hash();
        kv::WriteBatch batch;
        ASSERT_TRUE(indexer.onNewHead(batch, header).isOk());
        store.apply(batch).expectOk("apply");
    }
    EXPECT_EQ(indexer.sectionsStored(), 1u);

    // All 2048 rows exist, keyed by the section head hash.
    int rows = 0;
    for (uint16_t bit = 0; bit < 2048; ++bit)
        rows += store.contains(bloomBitsKey(bit, 0, last_hash));
    EXPECT_EQ(rows, 2048);

    // Progress key advanced.
    Bytes count_raw;
    ASSERT_TRUE(
        store.get(bloomBitsIndexKey("count"), count_raw).isOk());
    EXPECT_EQ(decodeBE64(count_raw), 1u);
}

TEST(BloomBitsTest, RowsReflectBloomBits)
{
    kv::MemStore store;
    BloomBitsIndexer indexer(store, 2);

    // Two headers with a known bloom item each.
    eth::LogsBloom bloom;
    bloom.add("item");
    // Find one bit that is set.
    int set_bit = -1;
    for (int i = 0; i < 2048; ++i) {
        if (bloom.bit(i)) {
            set_bit = i;
            break;
        }
    }
    ASSERT_GE(set_bit, 0);

    eth::Hash256 head;
    for (uint64_t n = 1; n <= 2; ++n) {
        eth::BlockHeader header;
        header.number = n;
        header.logs_bloom.add("item");
        head = header.hash();
        kv::WriteBatch batch;
        ASSERT_TRUE(indexer.onNewHead(batch, header).isOk());
        store.apply(batch).expectOk("apply");
    }

    Bytes row;
    ASSERT_TRUE(store
                    .get(bloomBitsKey(
                             static_cast<uint16_t>(set_bit), 0,
                             head),
                         row)
                    .isOk());
    // RLE form: both blocks set the bit -> first byte 0b11.
    ASSERT_FALSE(row.empty());
    EXPECT_EQ(static_cast<uint8_t>(row[0]) & 0x3, 0x3);
}

TEST(SkeletonTest, HeadersWrittenReadAndRetired)
{
    kv::MemStore store;
    SkeletonSync skeleton(store, 4, 2);

    for (uint64_t n = 1; n <= 10; ++n) {
        eth::BlockHeader header;
        header.number = n;
        kv::WriteBatch batch;
        skeleton.onHeaderDownloaded(batch, header);
        store.apply(batch).expectOk("apply");
        kv::WriteBatch fill;
        ASSERT_TRUE(skeleton.onBlockFilled(fill, n).isOk());
        store.apply(fill).expectOk("apply");
    }
    // Headers behind the fill lag (10-4=6) are deleted; recent
    // ones remain.
    EXPECT_FALSE(store.contains(skeletonHeaderKey(3)));
    EXPECT_TRUE(store.contains(skeletonHeaderKey(8)));
    // Status key updated on the configured cadence.
    EXPECT_TRUE(store.contains(skeletonSyncStatusKey()));
    Bytes status;
    ASSERT_TRUE(store.get(skeletonSyncStatusKey(), status).isOk());
    EXPECT_EQ(status.size(), 146u); // Table I value size
}

} // namespace
} // namespace ethkv::client
