/**
 * @file
 * FullNode pipeline tests: startup bookkeeping, block processing
 * effects on the store (block data, state, head pointers, tx
 * index), freezer migration, restart cycles, and the VM's
 * execution of calldata programs.
 */

#include <gtest/gtest.h>

#include "client/calldata.hh"
#include "client/node.hh"
#include "kvstore/mem_store.hh"
#include "workload/generator.hh"
#include "../kvstore/test_util.hh"

namespace ethkv::client
{
namespace
{

using testutil::ScratchDir;

NodeConfig
testConfig(const std::string &freezer_dir, bool caching)
{
    NodeConfig config;
    config.caching = caching;
    config.freezer_dir = freezer_dir;
    config.finality_depth = 8;
    config.tx_index_window = 12;
    config.bloom_section_size = 16;
    config.skeleton_fill_lag = 4;
    config.state_history = 4;
    return config;
}

struct Harness
{
    explicit Harness(bool caching = true)
        : dir("node"),
          node(store, testConfig(dir.path() + "/freezer", caching))
    {
        wl::WorkloadConfig wl_config;
        wl_config.initial_accounts = 200;
        wl_config.initial_contracts = 5;
        wl_config.seeded_slots_per_contract = 0;
        wl_config.txs_per_block = 10;
        generator =
            std::make_unique<wl::ChainGenerator>(wl_config);
        node.start(generator->genesisHash()).expectOk("start");
    }

    ScratchDir dir;
    kv::MemStore store;
    FullNode node;
    std::unique_ptr<wl::ChainGenerator> generator;
};

TEST(NodeTest, StartWritesBootKeys)
{
    Harness h;
    EXPECT_TRUE(h.store.contains(databaseVersionKey()));
    EXPECT_TRUE(h.store.contains(uncleanShutdownKey()));
    EXPECT_TRUE(h.store.contains(
        ethereumConfigKey(h.generator->genesisHash())));
    EXPECT_TRUE(h.store.contains(
        ethereumGenesisKey(h.generator->genesisHash())));
}

TEST(NodeTest, ProcessBlockStoresBlockData)
{
    Harness h;
    eth::Block block = h.generator->nextBlock();
    eth::Hash256 hash = block.header.hash();
    ASSERT_TRUE(h.node.processBlock(block).isOk());

    // Flush the write-back buffer so everything is inspectable.
    h.node.store().flush().expectOk("flush");

    EXPECT_TRUE(h.store.contains(headerKey(1, hash)));
    EXPECT_TRUE(h.store.contains(canonicalHashKey(1)));
    EXPECT_TRUE(h.store.contains(headerNumberKey(hash)));
    EXPECT_TRUE(h.store.contains(blockBodyKey(1, hash)));
    EXPECT_TRUE(h.store.contains(blockReceiptsKey(1, hash)));

    // Head pointers updated.
    Bytes head;
    ASSERT_TRUE(h.store.get(lastBlockKey(), head).isOk());
    EXPECT_EQ(head, hash.toBytes());
    ASSERT_TRUE(h.store.get(lastHeaderKey(), head).isOk());
    EXPECT_EQ(head, hash.toBytes());
    EXPECT_EQ(h.node.headNumber(), 1u);
    EXPECT_EQ(h.node.headHash(), hash);
}

TEST(NodeTest, TransactionsChangeState)
{
    Harness h;
    eth::Block block = h.generator->nextBlock();
    const eth::Transaction &tx = block.body.transactions[0];
    ASSERT_TRUE(h.node.processBlock(block).isOk());

    // Sender exists with bumped nonce; tx is indexed.
    eth::Account sender;
    ASSERT_TRUE(h.node.state().getAccount(tx.from, sender).isOk());
    EXPECT_GE(sender.nonce, 1u);
    h.node.store().flush().expectOk("flush");
    EXPECT_TRUE(h.store.contains(txLookupKey(tx.hash())));
    EXPECT_NE(h.node.stateRoot(), eth::Hash256());
}

TEST(NodeTest, StateRootsEvolvePerBlock)
{
    Harness h;
    eth::Hash256 previous;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(
            h.node.processBlock(h.generator->nextBlock()).isOk());
        EXPECT_NE(h.node.stateRoot(), previous);
        previous = h.node.stateRoot();
        // StateID entry for the new root exists.
        h.node.store().flush().expectOk("flush");
        EXPECT_TRUE(h.store.contains(stateIDKey(previous)));
    }
}

TEST(NodeTest, FreezerMigrationEvictsOldBlocks)
{
    Harness h;
    std::vector<eth::Hash256> hashes;
    for (int i = 0; i < 20; ++i) {
        eth::Block block = h.generator->nextBlock();
        hashes.push_back(block.header.hash());
        ASSERT_TRUE(h.node.processBlock(block).isOk());
    }
    // finality_depth=8: block 1..12 frozen and deleted from the
    // KV store, recent blocks still present.
    EXPECT_FALSE(h.store.contains(headerKey(1, hashes[0])));
    EXPECT_FALSE(h.store.contains(blockBodyKey(1, hashes[0])));
    EXPECT_FALSE(h.store.contains(canonicalHashKey(1)));
    EXPECT_TRUE(h.store.contains(headerKey(20, hashes[19])));
    EXPECT_TRUE(h.store.contains(canonicalHashKey(20)));
    // HeaderNumber mappings survive migration (as in Geth).
    EXPECT_TRUE(h.store.contains(headerNumberKey(hashes[0])));
}

TEST(NodeTest, StateIdHistoryBounded)
{
    Harness h;
    std::vector<eth::Hash256> roots;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            h.node.processBlock(h.generator->nextBlock()).isOk());
        roots.push_back(h.node.stateRoot());
    }
    h.node.store().flush().expectOk("flush");
    // state_history=4: old roots' ids deleted.
    EXPECT_FALSE(h.store.contains(stateIDKey(roots[0])));
    EXPECT_TRUE(h.store.contains(stateIDKey(roots[9])));
}

TEST(NodeTest, ShutdownWritesJournals)
{
    Harness h;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(
            h.node.processBlock(h.generator->nextBlock()).isOk());
    ASSERT_TRUE(h.node.shutdown().isOk());
    EXPECT_TRUE(h.store.contains(trieJournalKey()));
    EXPECT_TRUE(h.store.contains(snapshotJournalKey()));
    EXPECT_TRUE(h.store.contains(snapshotRootKey()));
    EXPECT_TRUE(h.store.contains(snapshotRecoveryKey()));
}

TEST(NodeTest, RestartContinuesProcessing)
{
    Harness h;
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(
            h.node.processBlock(h.generator->nextBlock()).isOk());
    eth::Hash256 root_before = h.node.stateRoot();
    ASSERT_TRUE(
        h.node.restart(h.generator->genesisHash()).isOk());
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(
            h.node.processBlock(h.generator->nextBlock()).isOk());
    EXPECT_EQ(h.node.headNumber(), 10u);
    EXPECT_NE(h.node.stateRoot(), root_before);
}

TEST(NodeTest, BareModeProducesNoSnapshotKeys)
{
    Harness h(/*caching=*/false);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(
            h.node.processBlock(h.generator->nextBlock()).isOk());
    int snapshot_keys = 0;
    ASSERT_TRUE(h.store.scan(Bytes("a"), Bytes("b"),
                 [&](BytesView, BytesView) {
                     ++snapshot_keys;
                     return true;
                 }).isOk());
    ASSERT_TRUE(h.store.scan(Bytes("o"), Bytes("p"),
                 [&](BytesView, BytesView) {
                     ++snapshot_keys;
                     return true;
                 }).isOk());
    EXPECT_EQ(snapshot_keys, 0);
}

TEST(NodeTest, CacheAndBareModesAgreeOnStateRoot)
{
    Harness cached(true), bare(false);
    // Drive both with the same deterministic block stream.
    wl::WorkloadConfig wl_config;
    wl_config.initial_accounts = 200;
    wl_config.initial_contracts = 5;
    wl_config.seeded_slots_per_contract = 0;
    wl_config.txs_per_block = 10;
    wl::ChainGenerator g1(wl_config), g2(wl_config);
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(cached.node.processBlock(g1.nextBlock()).isOk());
        ASSERT_TRUE(bare.node.processBlock(g2.nextBlock()).isOk());
    }
    EXPECT_EQ(cached.node.stateRoot().hex(),
              bare.node.stateRoot().hex());
}

TEST(CalldataTest, ProgramRoundTrip)
{
    std::vector<SlotOp> ops = {
        {SlotOp::Kind::Read, eth::hashOf("s1"), 0},
        {SlotOp::Kind::Write, eth::hashOf("s2"), 20},
        {SlotOp::Kind::WriteLog, eth::hashOf("s3"), 32},
        {SlotOp::Kind::Clear, eth::hashOf("s4"), 0},
    };
    Bytes data = encodeCallProgram(ops, 40);
    EXPECT_TRUE(isCallProgram(data));

    std::vector<SlotOp> decoded;
    ASSERT_TRUE(decodeCallProgram(data, decoded).isOk());
    EXPECT_EQ(decoded, ops);
}

TEST(CalldataTest, PlainPayloadDecodesEmpty)
{
    std::vector<SlotOp> ops;
    ASSERT_TRUE(decodeCallProgram("just a memo", ops).isOk());
    EXPECT_TRUE(ops.empty());
    EXPECT_FALSE(isCallProgram("just a memo"));
    ASSERT_TRUE(decodeCallProgram(BytesView(), ops).isOk());
}

TEST(CalldataTest, TruncatedProgramRejected)
{
    std::vector<SlotOp> ops = {
        {SlotOp::Kind::Write, eth::hashOf("s"), 10}};
    Bytes data = encodeCallProgram(ops);
    data.resize(data.size() / 2);
    std::vector<SlotOp> decoded;
    EXPECT_FALSE(decodeCallProgram(data, decoded).isOk());
}

TEST(NodeTest, ContractCallExecutesProgram)
{
    Harness h;
    // Deploy a contract via the node, then call it with a program
    // writing a known slot.
    eth::Address deployer = eth::Address::fromId(0xabc);
    eth::Transaction deploy;
    deploy.from = deployer;
    deploy.to.reset();
    deploy.data = Bytes(200, '\x60');

    eth::Block block1;
    block1.header.number = 1;
    block1.body.transactions.push_back(deploy);
    ASSERT_TRUE(h.node.processBlock(block1).isOk());

    eth::Address contract_addr = eth::contractAddress(deployer, 1);
    eth::Account contract;
    ASSERT_TRUE(
        h.node.state().getAccount(contract_addr, contract).isOk());
    EXPECT_TRUE(contract.isContract());

    eth::Hash256 slot = eth::hashOf("the-slot");
    eth::Transaction call;
    call.from = eth::Address::fromId(0xdef);
    call.to = contract_addr;
    call.data = encodeCallProgram(
        {{SlotOp::Kind::WriteLog, slot, 16}});

    eth::Block block2;
    block2.header.number = 2;
    block2.header.parent_hash = block1.header.hash();
    block2.body.transactions.push_back(call);
    ASSERT_TRUE(h.node.processBlock(block2).isOk());

    Bytes value;
    ASSERT_TRUE(
        h.node.state().getStorage(contract_addr, slot, value)
            .isOk());
    EXPECT_EQ(value.size(), 16u);

    // The WriteLog op produced a log in the stored receipts.
    h.node.store().flush().expectOk("flush");
    Bytes receipts_raw;
    ASSERT_TRUE(h.store
                    .get(blockReceiptsKey(
                             2, block2.header.hash()),
                         receipts_raw)
                    .isOk());
    auto receipts = rlpDecode(receipts_raw);
    ASSERT_TRUE(receipts.ok());
    auto receipt = eth::Receipt::decode(
        rlpEncode(receipts.value().items[0]));
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(receipt.value().logs.size(), 1u);
    EXPECT_EQ(receipt.value().logs[0].address, contract_addr);
}

} // namespace
} // namespace ethkv::client
