/**
 * @file
 * StateDB tests: account/slot/code lifecycle, per-block dirty
 * buffering, commit batching, snapshot-vs-trie read parity, and
 * deterministic state roots across both modes.
 */

#include <gtest/gtest.h>

#include "client/statedb.hh"
#include "kvstore/mem_store.hh"

namespace ethkv::client
{
namespace
{

struct Harness
{
    explicit Harness(bool snapshot)
        : state(store, StateConfig{snapshot, 1u << 20})
    {}

    eth::Hash256
    commit()
    {
        kv::WriteBatch batch;
        eth::Hash256 root = state.commitBlock(batch);
        store.apply(batch).expectOk("test commit");
        return root;
    }

    kv::MemStore store;
    StateDB state;
};

eth::Address
addr(uint64_t i)
{
    return eth::Address::fromId(i);
}

eth::Hash256
slot(uint64_t i)
{
    return eth::hashOf(encodeBE64(i));
}

class StateDBModes : public ::testing::TestWithParam<bool>
{};

TEST_P(StateDBModes, AccountLifecycle)
{
    Harness h(GetParam());
    eth::Account account;
    EXPECT_TRUE(h.state.getAccount(addr(1), account).isNotFound());

    account.nonce = 3;
    account.balance = 500;
    h.state.setAccount(addr(1), account);
    // Visible before commit (dirty buffer).
    eth::Account readback;
    ASSERT_TRUE(h.state.getAccount(addr(1), readback).isOk());
    EXPECT_EQ(readback, account);

    h.commit();
    ASSERT_TRUE(h.state.getAccount(addr(1), readback).isOk());
    EXPECT_EQ(readback.nonce, 3u);
    EXPECT_EQ(readback.balance, 500u);

    h.state.deleteAccount(addr(1));
    h.commit();
    EXPECT_TRUE(h.state.getAccount(addr(1), readback)
                    .isNotFound());
}

TEST_P(StateDBModes, StorageLifecycle)
{
    Harness h(GetParam());
    eth::Account contract;
    contract.code_hash = eth::hashOf("code");
    h.state.setAccount(addr(2), contract);
    h.state.setStorage(addr(2), slot(1), "value-1");
    h.state.setStorage(addr(2), slot(2), "value-2");
    h.commit();

    Bytes value;
    ASSERT_TRUE(h.state.getStorage(addr(2), slot(1), value)
                    .isOk());
    EXPECT_EQ(value, "value-1");
    EXPECT_TRUE(h.state.getStorage(addr(2), slot(9), value)
                    .isNotFound());

    // Clearing a slot removes it.
    h.state.setStorage(addr(2), slot(1), BytesView());
    h.commit();
    EXPECT_TRUE(h.state.getStorage(addr(2), slot(1), value)
                    .isNotFound());
    ASSERT_TRUE(h.state.getStorage(addr(2), slot(2), value)
                    .isOk());
    EXPECT_EQ(value, "value-2");
}

TEST_P(StateDBModes, StorageRootTracksSlotChanges)
{
    Harness h(GetParam());
    eth::Account contract;
    contract.code_hash = eth::hashOf("c");
    h.state.setAccount(addr(3), contract);
    h.commit();

    eth::Account before;
    ASSERT_TRUE(h.state.getAccount(addr(3), before).isOk());
    EXPECT_EQ(before.storage_root, eth::emptyTrieRoot());

    h.state.setStorage(addr(3), slot(1), "x");
    h.commit();
    eth::Account after;
    ASSERT_TRUE(h.state.getAccount(addr(3), after).isOk());
    EXPECT_NE(after.storage_root, eth::emptyTrieRoot());

    h.state.setStorage(addr(3), slot(1), BytesView());
    h.commit();
    ASSERT_TRUE(h.state.getAccount(addr(3), after).isOk());
    EXPECT_EQ(after.storage_root, eth::emptyTrieRoot());
}

TEST_P(StateDBModes, CodeRoundTrip)
{
    Harness h(GetParam());
    Bytes code(5000, '\x60');
    eth::Hash256 code_hash = h.state.putCode(code);
    EXPECT_EQ(code_hash, eth::hashOf(code));

    // Visible pre-commit via the pending buffer.
    Bytes readback;
    ASSERT_TRUE(h.state.getCode(code_hash, readback).isOk());
    EXPECT_EQ(readback, code);

    h.commit();
    readback.clear();
    ASSERT_TRUE(h.state.getCode(code_hash, readback).isOk());
    EXPECT_EQ(readback, code);
    // The code landed under its schema key.
    Bytes raw;
    ASSERT_TRUE(h.store.get(codeKey(code_hash), raw).isOk());
}

INSTANTIATE_TEST_SUITE_P(SnapshotOnOff, StateDBModes,
                         ::testing::Values(true, false),
                         [](const auto &info) {
                             return info.param ? "snapshot"
                                               : "trie";
                         });

TEST(StateDBTest, RootsAgreeAcrossModes)
{
    // Snapshot mode changes the read path and adds flat entries,
    // but the trie commitment must be identical.
    Harness with(true), without(false);
    for (uint64_t i = 0; i < 50; ++i) {
        eth::Account account;
        account.balance = i * 10;
        account.nonce = i;
        with.state.setAccount(addr(i), account);
        without.state.setAccount(addr(i), account);
        if (i % 5 == 0) {
            with.state.setStorage(addr(i), slot(i), "v");
            without.state.setStorage(addr(i), slot(i), "v");
        }
    }
    EXPECT_EQ(with.commit().hex(), without.commit().hex());
}

TEST(StateDBTest, SnapshotModeWritesFlatEntries)
{
    Harness h(true);
    eth::Account account;
    account.balance = 77;
    h.state.setAccount(addr(4), account);
    h.state.setStorage(addr(4), slot(1), "sv");
    h.commit();

    eth::Hash256 account_hash = eth::hashOf(addr(4).view());
    Bytes raw;
    ASSERT_TRUE(
        h.store.get(snapshotAccountKey(account_hash), raw).isOk());
    auto slim = eth::decodeSlimAccount(raw);
    ASSERT_TRUE(slim.ok());
    EXPECT_EQ(slim.value().balance, 77u);

    ASSERT_TRUE(h.store
                    .get(snapshotStorageKey(
                             account_hash,
                             eth::hashOf(slot(1).view())),
                         raw)
                    .isOk());
}

TEST(StateDBTest, BareModeWritesNoSnapshotEntries)
{
    Harness h(false);
    eth::Account account;
    h.state.setAccount(addr(5), account);
    h.commit();
    int snapshot_keys = 0;
    ASSERT_TRUE(h.store.scan(Bytes("a"), Bytes("b"),
                 [&](BytesView, BytesView) {
                     ++snapshot_keys;
                     return true;
                 }).isOk());
    EXPECT_EQ(snapshot_keys, 0);
}

TEST(StateDBTest, CommitIsBatchedNotImmediate)
{
    Harness h(true);
    eth::Account account;
    h.state.setAccount(addr(6), account);
    // Nothing reaches the store before commitBlock.
    EXPECT_EQ(h.store.liveKeyCount(), 0u);
    kv::WriteBatch batch;
    h.state.commitBlock(batch);
    EXPECT_GT(batch.size(), 0u);
    EXPECT_EQ(h.store.liveKeyCount(), 0u); // still not applied
    h.store.apply(batch).expectOk("apply");
    EXPECT_GT(h.store.liveKeyCount(), 0u);
}

TEST(StateDBTest, DirtyBufferResetsAfterCommit)
{
    Harness h(true);
    eth::Account account;
    h.state.setAccount(addr(7), account);
    EXPECT_EQ(h.state.dirtyAccountCount(), 1u);
    h.commit();
    EXPECT_EQ(h.state.dirtyAccountCount(), 0u);
}

TEST(StateDBTest, RootsAreOrderIndependentAcrossBlocks)
{
    // Same final content reached via different block groupings
    // yields the same root.
    Harness a(true), b(true);
    for (uint64_t i = 0; i < 30; ++i) {
        eth::Account account;
        account.balance = i;
        a.state.setAccount(addr(i), account);
        if (i % 3 == 0)
            a.commit(); // many small blocks
    }
    eth::Hash256 root_a = a.commit();

    for (uint64_t i = 30; i-- > 0;) {
        eth::Account account;
        account.balance = i;
        b.state.setAccount(addr(i), account);
    }
    eth::Hash256 root_b = b.commit(); // one block, reverse order
    EXPECT_EQ(root_a.hex(), root_b.hex());
}

} // namespace
} // namespace ethkv::client
