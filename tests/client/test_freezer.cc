/**
 * @file
 * Freezer tests: contiguous appends, reads across tables,
 * reopen/index rebuild, torn-append repair.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "client/freezer.hh"
#include "common/fault_env.hh"
#include "../kvstore/test_util.hh"

namespace ethkv::client
{
namespace
{

using testutil::ScratchDir;

Bytes
payload(const char *tag, uint64_t n)
{
    return Bytes(tag) + encodeBE64(n);
}

TEST(FreezerTest, AppendAndRead)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());

    for (uint64_t n = 0; n < 50; ++n) {
        ASSERT_TRUE(freezer.value()
                        ->append(n, payload("hash", n),
                                 payload("hdr", n),
                                 payload("body", n),
                                 payload("rcpt", n))
                        .isOk());
    }
    EXPECT_EQ(freezer.value()->frozenCount(), 50u);

    Bytes out;
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Headers, 17, out)
                    .isOk());
    EXPECT_EQ(out, payload("hdr", 17));
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Bodies, 0, out)
                    .isOk());
    EXPECT_EQ(out, payload("body", 0));
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Receipts, 49, out)
                    .isOk());
    EXPECT_EQ(out, payload("rcpt", 49));
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Hashes, 5, out)
                    .isOk());
    EXPECT_EQ(out, payload("hash", 5));
}

TEST(FreezerTest, RejectsNonContiguousAppend)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    ASSERT_TRUE(freezer.value()
                    ->append(0, "h", "a", "b", "c")
                    .isOk());
    EXPECT_FALSE(freezer.value()
                     ->append(5, "h", "a", "b", "c")
                     .isOk());
}

TEST(FreezerTest, ReadBeyondFrozenIsNotFound)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    Bytes out;
    EXPECT_TRUE(freezer.value()
                    ->read(FreezerTable::Headers, 0, out)
                    .isNotFound());
}

TEST(FreezerTest, ReopenRebuildsIndex)
{
    ScratchDir dir("freezer");
    {
        auto freezer = Freezer::open(dir.path());
        ASSERT_TRUE(freezer.ok());
        for (uint64_t n = 0; n < 30; ++n) {
            ASSERT_TRUE(freezer.value()
                            ->append(n, payload("hash", n),
                                     payload("hdr", n),
                                     payload("body", n),
                                     payload("rcpt", n))
                            .isOk());
        }
    }
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    EXPECT_EQ(freezer.value()->frozenCount(), 30u);
    Bytes out;
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Bodies, 29, out)
                    .isOk());
    EXPECT_EQ(out, payload("body", 29));

    // Appends continue from the rebuilt boundary.
    ASSERT_TRUE(freezer.value()
                    ->append(30, payload("hash", 30),
                             payload("hdr", 30),
                             payload("body", 30),
                             payload("rcpt", 30))
                    .isOk());
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Headers, 30, out)
                    .isOk());
    EXPECT_EQ(out, payload("hdr", 30));
}

TEST(FreezerTest, TornTailAppendIsRepairedOnReopen)
{
    ScratchDir dir("freezer");
    {
        auto freezer = Freezer::open(dir.path());
        ASSERT_TRUE(freezer.ok());
        for (uint64_t n = 0; n < 10; ++n) {
            ASSERT_TRUE(freezer.value()
                            ->append(n, payload("hash", n),
                                     payload("hdr", n),
                                     payload("body", n),
                                     payload("rcpt", n))
                            .isOk());
        }
    }
    // Simulate a crash that tore the receipts table's last record:
    // chop bytes so only 9 receipts remain intact.
    std::string receipts = dir.path() + "/receipts.dat";
    auto size = std::filesystem::file_size(receipts);
    std::filesystem::resize_file(receipts, size - 3);

    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    // Frozen boundary falls back to the shortest intact table.
    EXPECT_EQ(freezer.value()->frozenCount(), 9u);

    // Re-freezing block 9 repairs the short table and skips the
    // already-complete ones.
    ASSERT_TRUE(freezer.value()
                    ->append(9, payload("hash", 9),
                             payload("hdr", 9),
                             payload("body", 9),
                             payload("rcpt", 9))
                    .isOk());
    Bytes out;
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Receipts, 9, out)
                    .isOk());
    EXPECT_EQ(out, payload("rcpt", 9));
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Headers, 9, out)
                    .isOk());
    EXPECT_EQ(out, payload("hdr", 9));
}

TEST(FreezerTest, EmptyPayloadsAllowed)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    ASSERT_TRUE(freezer.value()
                    ->append(0, BytesView(), BytesView(),
                             BytesView(), BytesView())
                    .isOk());
    Bytes out = "sentinel";
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Headers, 0, out)
                    .isOk());
    EXPECT_TRUE(out.empty());
}

TEST(FreezerTest, TotalBytesGrow)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    uint64_t before = freezer.value()->totalBytes();
    ASSERT_TRUE(freezer.value()
                    ->append(0, "h", Bytes(1000, 'x'),
                             Bytes(2000, 'y'), Bytes(3000, 'z'))
                    .isOk());
    EXPECT_GT(freezer.value()->totalBytes(), before + 6000);
}

TEST(FreezerInvariantsTest, HealthyFreezerPasses)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());

    // Empty, mid-append, and reopened states all pass.
    EXPECT_TRUE(freezer.value()->checkInvariants().isOk());
    for (uint64_t n = 0; n < 25; ++n) {
        ASSERT_TRUE(freezer.value()
                        ->append(n, payload("hash", n),
                                 payload("hdr", n),
                                 payload("body", n),
                                 payload("rcpt", n))
                        .isOk());
    }
    EXPECT_TRUE(freezer.value()->checkInvariants().isOk());

    freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    EXPECT_TRUE(freezer.value()->checkInvariants().isOk());
}

TEST(FreezerInvariantsTest, DetectsForeignBytesAfterTail)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    for (uint64_t n = 0; n < 5; ++n) {
        ASSERT_TRUE(freezer.value()
                        ->append(n, payload("hash", n),
                                 payload("hdr", n),
                                 payload("body", n),
                                 payload("rcpt", n))
                        .isOk());
    }
    ASSERT_TRUE(freezer.value()->checkInvariants().isOk());

    // Another writer (or filesystem damage) grows a table behind
    // the freezer's back: on-disk size disagrees with the index.
    {
        std::ofstream f(dir.path() + "/bodies.dat",
                        std::ios::binary | std::ios::app);
        f << "garbage-the-freezer-never-wrote";
    }
    Status s = freezer.value()->checkInvariants();
    EXPECT_FALSE(s.isOk());
    EXPECT_NE(s.toString().find("bodies"), std::string::npos);
}

TEST(FreezerInvariantsTest, DetectsTruncatedTable)
{
    ScratchDir dir("freezer");
    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    for (uint64_t n = 0; n < 5; ++n) {
        ASSERT_TRUE(freezer.value()
                        ->append(n, payload("hash", n),
                                 payload("hdr", n),
                                 payload("body", n),
                                 payload("rcpt", n))
                        .isOk());
    }
    ASSERT_TRUE(freezer.value()->checkInvariants().isOk());

    // Chop the headers table under a live freezer: its index now
    // points past EOF.
    std::string headers = dir.path() + "/headers.dat";
    auto size = std::filesystem::file_size(headers);
    std::filesystem::resize_file(headers, size - 2);
    Status s = freezer.value()->checkInvariants();
    EXPECT_FALSE(s.isOk());
    EXPECT_NE(s.toString().find("headers"), std::string::npos);
}

TEST(FreezerDegradedTest, WriteFailureFlipsToReadOnly)
{
    testutil::ScratchDir dir("freezer_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 11);
    auto freezer = Freezer::open(dir.path(), &fault);
    ASSERT_TRUE(freezer.ok());
    for (uint64_t n = 0; n < 5; ++n) {
        ASSERT_TRUE(freezer.value()
                        ->append(n, payload("hash", n),
                                 payload("hdr", n),
                                 payload("body", n),
                                 payload("rcpt", n))
                        .isOk());
    }
    ASSERT_TRUE(freezer.value()->sync().isOk());

    fault.setWriteError(true);
    Status s = freezer.value()->append(5, payload("hash", 5),
                                       payload("hdr", 5),
                                       payload("body", 5),
                                       payload("rcpt", 5));
    EXPECT_EQ(s.code(), StatusCode::IOError);
    EXPECT_TRUE(freezer.value()->isDegraded());
    EXPECT_FALSE(freezer.value()->degradedReason().empty());

    // Later mutations report the degraded state, even after the
    // fault clears (sticky until a clean reopen) ...
    fault.setWriteError(false);
    EXPECT_TRUE(freezer.value()
                    ->append(5, payload("hash", 5),
                             payload("hdr", 5),
                             payload("body", 5),
                             payload("rcpt", 5))
                    .isIODegraded());
    EXPECT_TRUE(freezer.value()->sync().isIODegraded());

    // ... while already-frozen items stay readable.
    Bytes out;
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Bodies, 3, out)
                    .isOk());
    EXPECT_EQ(out, payload("body", 3));
}

TEST(FreezerDegradedTest, SyncFailureFlipsToReadOnly)
{
    testutil::ScratchDir dir("freezer_degraded");
    FaultInjectionEnv fault(Env::defaultEnv(), 11);
    auto freezer = Freezer::open(dir.path(), &fault);
    ASSERT_TRUE(freezer.ok());
    ASSERT_TRUE(freezer.value()
                    ->append(0, "h", "a", "b", "c")
                    .isOk());
    fault.setSyncError(true);
    EXPECT_EQ(freezer.value()->sync().code(), StatusCode::IOError);
    EXPECT_TRUE(freezer.value()->isDegraded());
}

TEST(FreezerDegradedTest, SyncedBlocksSurviveSimulatedCrash)
{
    testutil::ScratchDir dir("freezer_crash");
    FaultInjectionEnv fault(Env::defaultEnv(), 11);
    {
        auto freezer = Freezer::open(dir.path(), &fault);
        ASSERT_TRUE(freezer.ok());
        for (uint64_t n = 0; n < 8; ++n) {
            ASSERT_TRUE(freezer.value()
                            ->append(n, payload("hash", n),
                                     payload("hdr", n),
                                     payload("body", n),
                                     payload("rcpt", n))
                            .isOk());
        }
        ASSERT_TRUE(freezer.value()->sync().isOk());
        // Blocks 8-9 are appended but never synced: fair game.
        for (uint64_t n = 8; n < 10; ++n) {
            ASSERT_TRUE(freezer.value()
                            ->append(n, payload("hash", n),
                                     payload("hdr", n),
                                     payload("body", n),
                                     payload("rcpt", n))
                            .isOk());
        }
    }
    fault.crashKeepUnsyncedBytes(0);
    fault.simulateCrash();
    fault.reactivate();

    auto freezer = Freezer::open(dir.path(), &fault);
    ASSERT_TRUE(freezer.ok());
    EXPECT_EQ(freezer.value()->frozenCount(), 8u);
    EXPECT_TRUE(freezer.value()->checkInvariants().isOk());
    Bytes out;
    ASSERT_TRUE(freezer.value()
                    ->read(FreezerTable::Receipts, 7, out)
                    .isOk());
    EXPECT_EQ(out, payload("rcpt", 7));
}

TEST(FreezerDegradedTest, TornTailIsQuarantinedNotDeleted)
{
    testutil::ScratchDir dir("freezer_quarantine");
    Env *env = Env::defaultEnv();
    {
        auto freezer = Freezer::open(dir.path());
        ASSERT_TRUE(freezer.ok());
        for (uint64_t n = 0; n < 10; ++n) {
            ASSERT_TRUE(freezer.value()
                            ->append(n, payload("hash", n),
                                     payload("hdr", n),
                                     payload("body", n),
                                     payload("rcpt", n))
                            .isOk());
        }
    }
    // Tear the last bodies record three bytes short.
    std::string bodies = dir.path() + "/bodies.dat";
    auto size = env->fileSize(bodies);
    ASSERT_TRUE(size.ok());
    ASSERT_TRUE(
        env->truncateFile(bodies, size.value() - 3).isOk());

    auto freezer = Freezer::open(dir.path());
    ASSERT_TRUE(freezer.ok());
    EXPECT_EQ(freezer.value()->frozenCount(), 9u);
    // The partial record moved to quarantine/ instead of vanishing.
    EXPECT_GT(freezer.value()->quarantinedBytes(), 0u);
    std::string tail_prefix = dir.path() + "/quarantine/bodies.dat.";
    bool found = false;
    // The quarantine name embeds the valid offset; probe for it.
    for (uint64_t off = 0; off <= size.value(); ++off) {
        if (env->fileExists(tail_prefix + std::to_string(off) +
                            ".tail")) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(freezer.value()->checkInvariants().isOk());
}

} // namespace
} // namespace ethkv::client
