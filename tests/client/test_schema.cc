/**
 * @file
 * Schema tests: every key builder must classify back to its class
 * and produce exactly the key sizes Table I reports.
 */

#include <gtest/gtest.h>

#include "client/schema.hh"

namespace ethkv::client
{
namespace
{

eth::Hash256
h(const char *seed)
{
    return eth::hashOf(seed);
}

TEST(SchemaTest, KeyBuildersClassifyAndSize)
{
    struct Case
    {
        Bytes key;
        KVClass cls;
        size_t size;
    };
    const Case cases[] = {
        {headerKey(20500000, h("x")), KVClass::BlockHeader, 41},
        {canonicalHashKey(20500000), KVClass::BlockHeader, 10},
        {blockBodyKey(1, h("x")), KVClass::BlockBody, 41},
        {blockReceiptsKey(1, h("x")), KVClass::BlockReceipts, 41},
        {headerNumberKey(h("x")), KVClass::HeaderNumber, 33},
        {txLookupKey(h("tx")), KVClass::TxLookup, 33},
        {bloomBitsKey(2047, 5, h("s")), KVClass::BloomBits, 43},
        {codeKey(h("code")), KVClass::Code, 33},
        {snapshotAccountKey(h("a")), KVClass::SnapshotAccount, 33},
        {snapshotStorageKey(h("a"), h("s")),
         KVClass::SnapshotStorage, 65},
        {skeletonHeaderKey(9), KVClass::SkeletonHeader, 9},
        {stateIDKey(h("root")), KVClass::StateID, 33},
        {ethereumConfigKey(h("g")), KVClass::EthereumConfig, 48},
        {ethereumGenesisKey(h("g")), KVClass::EthereumGenesis, 49},
    };
    for (const Case &c : cases) {
        EXPECT_EQ(classify(c.key), c.cls)
            << "key " << toHex(c.key);
        EXPECT_EQ(c.key.size(), c.size)
            << "class " << kvClassName(c.cls);
    }
}

TEST(SchemaTest, TrieNodeKeys)
{
    Bytes path{0x1, 0x2, 0x3};
    Bytes account_key = trieNodeAccountKey(path);
    EXPECT_EQ(classify(account_key), KVClass::TrieNodeAccount);
    EXPECT_EQ(account_key.size(), 4u);
    // Empty path (root node).
    EXPECT_EQ(classify(trieNodeAccountKey(BytesView())),
              KVClass::TrieNodeAccount);

    Bytes storage_key = trieNodeStorageKey(h("acct"), path);
    EXPECT_EQ(classify(storage_key), KVClass::TrieNodeStorage);
    EXPECT_EQ(storage_key.size(), 36u);
    EXPECT_EQ(classify(trieNodeStorageKey(h("acct"),
                                          BytesView())),
              KVClass::TrieNodeStorage);
}

TEST(SchemaTest, SingletonKeysMatchTableISizes)
{
    // Table I reports these key sizes exactly.
    EXPECT_EQ(lastBlockKey().size(), 9u);
    EXPECT_EQ(lastHeaderKey().size(), 10u);
    EXPECT_EQ(lastFastKey().size(), 8u);
    EXPECT_EQ(lastStateIDKey().size(), 11u);
    EXPECT_EQ(databaseVersionKey().size(), 15u);
    EXPECT_EQ(snapshotRootKey().size(), 12u);
    EXPECT_EQ(snapshotJournalKey().size(), 15u);
    EXPECT_EQ(snapshotGeneratorKey().size(), 17u);
    EXPECT_EQ(snapshotRecoveryKey().size(), 16u);
    EXPECT_EQ(skeletonSyncStatusKey().size(), 18u);
    EXPECT_EQ(transactionIndexTailKey().size(), 20u);
    EXPECT_EQ(uncleanShutdownKey().size(), 16u);
    EXPECT_EQ(trieJournalKey().size(), 11u);
}

TEST(SchemaTest, SingletonClassification)
{
    EXPECT_EQ(classify(lastBlockKey()), KVClass::LastBlock);
    EXPECT_EQ(classify(lastHeaderKey()), KVClass::LastHeader);
    EXPECT_EQ(classify(lastFastKey()), KVClass::LastFast);
    EXPECT_EQ(classify(lastStateIDKey()), KVClass::LastStateID);
    EXPECT_EQ(classify(databaseVersionKey()),
              KVClass::DatabaseVersion);
    EXPECT_EQ(classify(snapshotRootKey()), KVClass::SnapshotRoot);
    EXPECT_EQ(classify(snapshotJournalKey()),
              KVClass::SnapshotJournal);
    EXPECT_EQ(classify(snapshotGeneratorKey()),
              KVClass::SnapshotGenerator);
    EXPECT_EQ(classify(snapshotRecoveryKey()),
              KVClass::SnapshotRecovery);
    EXPECT_EQ(classify(skeletonSyncStatusKey()),
              KVClass::SkeletonSyncStatus);
    EXPECT_EQ(classify(transactionIndexTailKey()),
              KVClass::TransactionIndexTail);
    EXPECT_EQ(classify(uncleanShutdownKey()),
              KVClass::UncleanShutdown);
    EXPECT_EQ(classify(trieJournalKey()), KVClass::TrieJournal);
    EXPECT_EQ(classify(bloomBitsIndexKey("count")),
              KVClass::BloomBitsIndex);
}

TEST(SchemaTest, UnknownAndAmbiguousKeys)
{
    EXPECT_EQ(classify(""), KVClass::Unknown);
    EXPECT_EQ(classify("zzz"), KVClass::Unknown);
    // Right prefix, wrong size.
    EXPECT_EQ(classify("Hshort"), KVClass::Unknown);
    Bytes bad_header = "h";
    bad_header += Bytes(20, 'x');
    EXPECT_EQ(classify(bad_header), KVClass::Unknown);
    // Singletons must not be swallowed by prefix rules:
    // "LastBlock" starts with 'L' (StateID prefix), "SnapshotRoot"
    // with 'S' (SkeletonHeader prefix).
    EXPECT_NE(classify(lastBlockKey()), KVClass::StateID);
    EXPECT_NE(classify(snapshotRootKey()),
              KVClass::SkeletonHeader);
}

TEST(SchemaTest, NumericKeysOrderByBlockNumber)
{
    // The freezer and header scans depend on canonical keys
    // sorting by block number.
    EXPECT_LT(canonicalHashKey(5), canonicalHashKey(6));
    EXPECT_LT(headerKey(5, h("a")), canonicalHashKey(6));
    EXPECT_LT(skeletonHeaderKey(100), skeletonHeaderKey(101));
}

TEST(SchemaTest, ClassNamesAreDistinct)
{
    for (int a = 0; a < num_kv_classes; ++a) {
        for (int b = a + 1; b < num_kv_classes; ++b) {
            EXPECT_STRNE(
                kvClassName(static_cast<KVClass>(a)),
                kvClassName(static_cast<KVClass>(b)));
        }
    }
}

} // namespace
} // namespace ethkv::client
