/**
 * @file
 * Quickstart: capture a small CacheTrace-style workload and print
 * headline statistics.
 *
 * Pipeline: synthetic chain -> full node (caching + snapshot on)
 * -> tracing shim -> in-memory engine -> analyzers.
 *
 * Usage: quickstart [blocks]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/class_stats.hh"
#include "analysis/op_distribution.hh"
#include "analysis/report.hh"
#include "workload/sim.hh"

using namespace ethkv;

int
main(int argc, char **argv)
{
    uint64_t blocks = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 200;

    analysis::printBanner("ethkv quickstart");
    std::printf("Simulating %llu blocks with caching + snapshot "
                "acceleration...\n",
                static_cast<unsigned long long>(blocks));

    wl::SimConfig config = wl::cacheTraceConfig(blocks);
    // Quick-tour scale: a slimmer pre-existing state than the
    // bench default so the example finishes in ~30 seconds.
    config.workload.initial_accounts = 20000;
    config.workload.initial_contracts = 300;
    config.workload.seeded_slots_per_contract = 120;
    config.workload.seeded_tx_lookups = 30000;
    config.workload.seeded_header_numbers = 2000;
    config.workload.seeded_bloom_bits = 800;
    config.progress_interval = blocks / 4;
    wl::SimResult result = wl::runSimulation(config);

    std::printf("\nTrace: %zu KV operations over %llu unique "
                "keys\n",
                result.trace.size(),
                static_cast<unsigned long long>(
                    result.unique_keys));
    std::printf("Cache: %.1f%% hit rate, %llu write-back "
                "coalesced writes\n",
                result.cache_stats.hitRate() * 100.0,
                static_cast<unsigned long long>(
                    result.cache_stats.writeback_coalesced));

    auto ops = analysis::OpDistribution::analyze(result.trace);
    auto inventory = analysis::analyzeStore(*result.engine);

    analysis::Table table({"Class", "% of ops", "KV pairs",
                           "avg key B", "avg value B"});
    for (int c = 0; c < client::num_kv_classes; ++c) {
        auto cls = static_cast<client::KVClass>(c);
        if (ops.classOps(cls) == 0 && inventory.of(cls).pairs == 0)
            continue;
        table.addRow({client::kvClassName(cls),
                      analysis::fmtShare(ops.classShare(cls)),
                      std::to_string(inventory.of(cls).pairs),
                      analysis::fmtDouble(
                          inventory.of(cls).key_size.mean(), 1),
                      analysis::fmtDouble(
                          inventory.of(cls).value_size.mean(),
                          1)});
    }
    table.print();

    std::printf("\n%d classes populated, %d singletons, top-5 "
                "share %.1f%%\n",
                inventory.populatedClasses(),
                inventory.singletonClasses(),
                inventory.topShare(5) * 100.0);
    return 0;
}
