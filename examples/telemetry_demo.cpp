/**
 * @file
 * Telemetry tour: everything the obs/ layer measures, in one run.
 *
 * 1. Two engines behind InstrumentedKVStore, driven by the same
 *    synthetic op mix -> per-op latency percentiles from the
 *    registry's log-bucketed histograms.
 * 2. A short full-node simulation -> per-phase block pipeline
 *    timings (node.*_ns) and per-class cache hit rates (cache.*)
 *    recorded by the stack itself, no wiring in this file.
 * 3. The whole registry as a table, and optionally as JSON via
 *    --metrics-out (the same flag every bench accepts).
 *
 * Usage: telemetry_demo [blocks] [--metrics-out file.json]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/report.hh"
#include "common/rand.hh"
#include "common/stats.hh"
#include "kvstore/btree_store.hh"
#include "kvstore/mem_store.hh"
#include "kvstore/instrumented_store.hh"
#include "obs/metrics.hh"
#include "workload/sim.hh"

using namespace ethkv;

namespace
{

/** Mixed put/get/del/scan churn against one instrumented engine. */
void
driveEngine(kv::KVStore &store, uint64_t ops)
{
    Rng rng(1234);
    for (uint64_t i = 0; i < ops; ++i) {
        Bytes key = "acct-" + std::to_string(rng.nextBounded(5000));
        uint64_t dice = rng.nextBounded(10);
        if (dice < 5) {
            store.put(key, rng.nextBytes(32 + rng.nextBounded(96)))
                .expectOk("put");
        } else if (dice < 8) {
            Bytes value;
            ETHKV_IGNORE_STATUS(
                store.get(key, value),
                "hit or miss, both outcomes are measured work");
        } else if (dice < 9) {
            store.del(key).expectOk("del");
        } else {
            int visited = 0;
            store
                .scan(key, BytesView(),
                      [&](BytesView, BytesView) {
                          return ++visited < 20;
                      })
                .expectOk("scan");
        }
    }
}

void
printOpLatencies(const obs::MetricsSnapshot &snap,
                 const std::vector<std::string> &scopes)
{
    analysis::Table table({"engine", "op", "count", "p50", "p90",
                           "p99", "max"});
    for (const std::string &scope : scopes) {
        for (const char *op :
             {"put_ns", "get_ns", "del_ns", "scan_ns"}) {
            const obs::HistogramSnapshot *h = snap.findHistogram(
                "op." + scope + "." + op);
            if (!h || h->count == 0)
                continue;
            table.addRow(
                {scope, std::string(op, strlen(op) - 3),
                 std::to_string(h->count),
                 std::to_string(h->percentile(0.5)) + " ns",
                 std::to_string(h->percentile(0.9)) + " ns",
                 std::to_string(h->percentile(0.99)) + " ns",
                 std::to_string(h->max) + " ns"});
        }
    }
    table.print();
}

void
printPipelinePhases(const obs::MetricsSnapshot &snap)
{
    analysis::Table table(
        {"phase", "blocks", "p50", "p99", "total"});
    for (const char *phase :
         {"node.download_ns", "node.verify_ns",
          "node.execute_ns", "node.commit_ns",
          "node.maintenance_ns", "node.freezer_migrate_ns"}) {
        const obs::HistogramSnapshot *h =
            snap.findHistogram(phase);
        if (!h || h->count == 0)
            continue;
        auto ms = [](double ns) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
            return std::string(buf);
        };
        table.addRow(
            {phase, std::to_string(h->count),
             ms(static_cast<double>(h->percentile(0.5))),
             ms(static_cast<double>(h->percentile(0.99))),
             ms(static_cast<double>(h->sum))});
    }
    table.print();
}

void
printCacheClasses(const obs::MetricsSnapshot &snap)
{
    analysis::Table table(
        {"cache class", "hits", "misses", "hit rate",
         "evictions"});
    for (const char *group : {"trie_clean", "snapshot", "code",
                              "block_data", "other"}) {
        std::string base = std::string("cache.") + group;
        const uint64_t *hits = snap.findCounter(base + ".hits");
        const uint64_t *misses =
            snap.findCounter(base + ".misses");
        const uint64_t *evictions =
            snap.findCounter(base + ".evictions");
        if (!hits || !misses || *hits + *misses == 0)
            continue;
        double rate = static_cast<double>(*hits) /
                      static_cast<double>(*hits + *misses);
        table.addRow({group, std::to_string(*hits),
                      std::to_string(*misses),
                      formatPercent(rate, 1),
                      std::to_string(evictions ? *evictions : 0)});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string metrics_out =
        obs::consumeMetricsOutFlag(&argc, argv);
    uint64_t blocks = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 120;

    analysis::printBanner("ethkv telemetry demo");
    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();

    // --- 1. Per-op latency via the decorator. ------------------
    std::printf("Driving 60k mixed ops through two instrumented "
                "engines...\n\n");
    kv::MemStore mem;
    kv::BTreeStore btree;
    kv::InstrumentedKVStore obs_mem(mem, registry);
    kv::InstrumentedKVStore obs_btree(btree, registry);
    driveEngine(obs_mem, 60000);
    driveEngine(obs_btree, 60000);

    // --- 2. The stack measuring itself. ------------------------
    std::printf("Simulating %llu blocks (full node, caching + "
                "snapshot on)...\n\n",
                static_cast<unsigned long long>(blocks));
    wl::SimConfig config = wl::cacheTraceConfig(blocks);
    config.workload.initial_accounts = 8000;
    config.workload.initial_contracts = 150;
    config.workload.seeded_slots_per_contract = 60;
    config.workload.seeded_tx_lookups = 8000;
    config.workload.seeded_header_numbers = 1000;
    config.workload.seeded_bloom_bits = 400;
    config.progress_interval = 0;
    wl::SimResult result = wl::runSimulation(config);
    std::printf("Trace captured: %zu KV operations.\n\n",
                result.trace.size());

    obs::MetricsSnapshot snap = registry.snapshot();

    std::printf("Per-operation latency (decorator, ns):\n");
    printOpLatencies(snap, {obs_mem.scope(), obs_btree.scope()});

    std::printf("\nBlock pipeline phases (full node):\n");
    printPipelinePhases(snap);

    std::printf("\nPer-class cache telemetry (full node):\n");
    printCacheClasses(snap);

    std::printf("\nFull registry:\n");
    registry.printTable();

    if (!metrics_out.empty()) {
        Status s = obs::writeMetricsJson(registry, metrics_out);
        if (!s.isOk()) {
            std::fprintf(stderr, "metrics dump failed: %s\n",
                         s.toString().c_str());
            return 1;
        }
        std::printf("\nWrote metrics JSON to %s\n",
                    metrics_out.c_str());
    }
    return 0;
}
