/**
 * @file
 * Correlation-aware caching example: capture a workload, mine
 * read correlations from the first half of the trace, then race a
 * prefetching cache against plain LRU on the second half — the
 * paper's Section-V proposal (ii) end to end.
 *
 * Usage: correlation_cache_demo [blocks] [capacity-kib]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/report.hh"
#include "common/stats.hh"
#include "core/corr_cache.hh"
#include "workload/sim.hh"

using namespace ethkv;

int
main(int argc, char **argv)
{
    uint64_t blocks = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 150;
    uint64_t capacity_kib =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;

    analysis::printBanner("ethkv correlation-aware cache demo");

    // BareTrace reads carry the strongest correlations (Finding 8:
    // caching dilutes them).
    std::printf("Capturing a BareTrace workload (%llu blocks)...\n",
                static_cast<unsigned long long>(blocks));
    wl::SimResult run =
        wl::runSimulation(wl::bareTraceConfig(blocks));

    uint64_t reads = 0;
    for (const trace::TraceRecord &r : run.trace.records())
        reads += (r.op == trace::OpType::Read);
    std::printf("Trace: %zu ops, %llu reads\n\n", run.trace.size(),
                static_cast<unsigned long long>(reads));

    std::printf("Training the correlation miner on the first half "
                "and evaluating both policies on the second "
                "half...\n\n");
    core::CacheComparison cmp = core::compareCachePolicies(
        run.trace, capacity_kib << 10, /*train_fraction=*/0.5,
        /*window=*/8);

    analysis::Table table(
        {"Policy", "accesses", "hits", "hit rate",
         "demand fetches", "prefetches", "prefetch hits"});
    table.addRow({"LRU", std::to_string(cmp.lru.accesses),
                  std::to_string(cmp.lru.hits),
                  analysis::fmtShare(cmp.lru.hitRate(), 1),
                  std::to_string(cmp.lru.demand_fetches), "-",
                  "-"});
    table.addRow(
        {"correlation-aware",
         std::to_string(cmp.correlated.accesses),
         std::to_string(cmp.correlated.hits),
         analysis::fmtShare(cmp.correlated.hitRate(), 1),
         std::to_string(cmp.correlated.demand_fetches),
         std::to_string(cmp.correlated.prefetch_fetches),
         std::to_string(cmp.correlated.prefetch_hits)});
    table.print();

    double lift =
        cmp.correlated.hitRate() - cmp.lru.hitRate();
    std::printf("\nHit-rate lift over LRU at %s: %+.1f points\n",
                formatBytes(static_cast<double>(capacity_kib)
                            * 1024.0)
                    .c_str(),
                lift * 100.0);
    std::printf("Fewer demand fetches mean fewer random reads "
                "hitting the KV store — the I/O the paper's "
                "Finding 6 shows LRU cannot remove for "
                "medium-frequency keys.\n");
    return 0;
}
