/**
 * @file
 * Hybrid-store example: drive an Ethereum-shaped workload through
 * the paper's proposed class-routed store and watch what each
 * engine absorbs — ordered scans on headers, tombstone-free
 * deletes on TxLookup, and lazy index promotion on world state.
 *
 * Usage: hybrid_store_demo [blocks]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/report.hh"
#include "common/rand.hh"
#include "common/stats.hh"
#include "core/hybrid_store.hh"
#include "eth/block.hh"

using namespace ethkv;

int
main(int argc, char **argv)
{
    uint64_t blocks = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 300;

    analysis::printBanner("ethkv hybrid store demo");
    core::HybridKVStore store;
    Rng rng(7);

    // A compressed block loop touching every routed class the way
    // the client does.
    const uint64_t window = 32; // tx-index window
    std::vector<std::vector<eth::Hash256>> tx_hashes(blocks + 1);
    std::vector<Bytes> hot_paths;
    for (uint64_t n = 1; n <= blocks; ++n) {
        eth::Hash256 block_hash = eth::hashOf(encodeBE64(n));

        // Block data (ordered + log classes).
        store.put(client::headerKey(n, block_hash),
                  rng.nextBytes(220))
            .expectOk("header");
        store.put(client::canonicalHashKey(n),
                  block_hash.toBytes())
            .expectOk("canonical");
        store.put(client::blockBodyKey(n, block_hash),
                  rng.nextBytes(4000))
            .expectOk("body");

        // Transactions: lookup entries now, deletions later.
        for (int t = 0; t < 50; ++t) {
            eth::Hash256 tx_hash =
                eth::hashOf(encodeBE64(n * 1000 + t));
            tx_hashes[n].push_back(tx_hash);
            store.put(client::txLookupKey(tx_hash),
                      encodeBE64(n))
                .expectOk("lookup");
        }
        if (n > window) {
            for (const eth::Hash256 &old :
                 tx_hashes[n - window]) {
                store.del(client::txLookupKey(old))
                    .expectOk("unindex");
            }
        }

        // World state: mostly-written trie nodes, few read back.
        for (int i = 0; i < 200; ++i) {
            Bytes path = rng.nextBytes(1 + rng.nextBounded(6));
            store.put(client::trieNodeAccountKey(path),
                      rng.nextBytes(100))
                .expectOk("trie node");
            if (hot_paths.size() < 20 && n == 1)
                hot_paths.push_back(path);
        }
        if (n % 10 == 0) {
            // Rare reads promote a handful of hot keys into the
            // lazy log's exact index.
            Bytes value;
            for (const Bytes &path : hot_paths) {
                store.get(client::trieNodeAccountKey(path), value)
                    .expectOk("hot read");
            }
        }

        // The canonical-chain scan the chain indexer performs.
        if (n % 8 == 0 && n > 8) {
            int visited = 0;
            store
                .scan(client::headerKey(n - 8, eth::Hash256()),
                      client::canonicalHashKey(n),
                      [&](BytesView, BytesView) {
                          return ++visited < 24;
                      })
                .expectOk("header scan");
        }
    }

    const kv::IOStats &stats = store.stats();
    analysis::Table table({"Engine", "live keys", "role",
                           "key metric"});
    table.addRow(
        {"B+-tree (ordered)",
         std::to_string(store.ordered().liveKeyCount()),
         "scan classes (headers, snapshot)",
         std::to_string(store.ordered().stats().user_scans) +
             " scans served"});
    table.addRow(
        {"append log",
         std::to_string(store.log().liveKeyCount()),
         "TxLookup / bodies / receipts",
         std::to_string(store.log().stats().gc_runs) +
             " batched GC runs, 0 tombstones"});
    table.addRow(
        {"lazy log",
         std::to_string(store.lazyLog().liveKeyCount()),
         "world state + code",
         std::to_string(store.lazyLog().promotedKeyCount()) +
             " keys promoted to exact index"});
    table.addRow({"hash store",
                  std::to_string(store.hash().liveKeyCount()),
                  "singletons, StateID, bloombits", "-"});
    table.print();

    std::printf("\nTotals: %llu puts, %llu gets, %llu deletes, "
                "%llu scans; %s persisted, tombstones written: "
                "%llu\n",
                static_cast<unsigned long long>(stats.user_writes),
                static_cast<unsigned long long>(stats.user_reads),
                static_cast<unsigned long long>(
                    stats.user_deletes),
                static_cast<unsigned long long>(stats.user_scans),
                formatBytes(static_cast<double>(
                                stats.bytes_written))
                    .c_str(),
                static_cast<unsigned long long>(
                    stats.tombstones_written));
    std::printf(
        "\nThe paper's Section-V claims, visible here: deletes "
        "cost no tombstones or compaction; unread world-state "
        "keys (%llu of %llu) never earned index entries; only "
        "the scan classes pay for ordering.\n",
        static_cast<unsigned long long>(
            store.lazyLog().liveKeyCount() -
            store.lazyLog().promotedKeyCount()),
        static_cast<unsigned long long>(
            store.lazyLog().liveKeyCount()));
    return 0;
}
