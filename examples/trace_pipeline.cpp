/**
 * @file
 * Trace pipeline example: capture both of the paper's trace modes
 * over the same workload, persist the CacheTrace to a binary trace
 * file, reload it, and run the four analysis dimensions —
 * inventory, op distribution, read correlation, update correlation
 * — exactly as the paper's artifact tools do.
 *
 * Usage: trace_pipeline [blocks] [trace-file]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/class_stats.hh"
#include "analysis/correlation.hh"
#include "analysis/op_distribution.hh"
#include "analysis/report.hh"
#include "trace/trace_file.hh"
#include "workload/sim.hh"

using namespace ethkv;

namespace
{

void
summarizeOps(const char *name, const trace::TraceBuffer &trace)
{
    auto ops = analysis::OpDistribution::analyze(trace);
    std::printf("%s: %zu ops | reads %s, writes %s, updates %s, "
                "deletes %s, scans %s\n",
                name, trace.size(),
                analysis::fmtShare(
                    static_cast<double>(
                        ops.opTotal(trace::OpType::Read)) /
                    ops.totalOps())
                    .c_str(),
                analysis::fmtShare(
                    static_cast<double>(
                        ops.opTotal(trace::OpType::Write)) /
                    ops.totalOps())
                    .c_str(),
                analysis::fmtShare(
                    static_cast<double>(
                        ops.opTotal(trace::OpType::Update)) /
                    ops.totalOps())
                    .c_str(),
                analysis::fmtShare(
                    static_cast<double>(
                        ops.opTotal(trace::OpType::Delete)) /
                    ops.totalOps())
                    .c_str(),
                analysis::fmtShare(
                    static_cast<double>(
                        ops.opTotal(trace::OpType::Scan)) /
                    ops.totalOps())
                    .c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t blocks = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 200;
    std::string trace_path =
        argc > 2 ? argv[2] : "/tmp/ethkv_cache.trace";

    analysis::printBanner("ethkv trace pipeline");

    // --- Capture both modes over the same workload. ------------
    std::printf("Capturing CacheTrace (%llu blocks)...\n",
                static_cast<unsigned long long>(blocks));
    wl::SimResult cache_run =
        wl::runSimulation(wl::cacheTraceConfig(blocks));
    std::printf("Capturing BareTrace (%llu blocks)...\n",
                static_cast<unsigned long long>(blocks));
    wl::SimResult bare_run =
        wl::runSimulation(wl::bareTraceConfig(blocks));

    summarizeOps("CacheTrace", cache_run.trace);
    summarizeOps("BareTrace ", bare_run.trace);

    // --- Persist and reload the CacheTrace. --------------------
    {
        auto writer = trace::TraceFileWriter::create(trace_path);
        writer.status().expectOk("trace create");
        for (const trace::TraceRecord &r :
             cache_run.trace.records()) {
            writer.value()->append(r);
        }
        writer.value()->finish().expectOk("trace finish");
        std::printf("\nWrote %llu records to %s\n",
                    static_cast<unsigned long long>(
                        writer.value()->recordsWritten()),
                    trace_path.c_str());
    }
    auto reloaded = trace::loadTraceFile(trace_path);
    reloaded.status().expectOk("trace reload");
    std::printf("Reloaded %zu records (round-trip ok)\n",
                reloaded.value().size());

    // --- Dimension 1: storage inventory. ------------------------
    auto inventory = analysis::analyzeStore(*cache_run.engine);
    std::printf("\nStore: %s KV pairs, top-5 classes hold %s, "
                "%d singletons\n",
                formatMillions(inventory.total_pairs).c_str(),
                analysis::fmtShare(inventory.topShare(5), 1)
                    .c_str(),
                inventory.singletonClasses());

    // --- Dimension 2: per-class op mix (top classes). -----------
    auto ops = analysis::OpDistribution::analyze(
        reloaded.value());
    std::printf("\nTop classes by op share:\n");
    for (int c = 0; c < client::num_kv_classes; ++c) {
        auto cls = static_cast<client::KVClass>(c);
        if (ops.classShare(cls) < 0.05)
            continue;
        std::printf("  %-18s %s of ops\n",
                    client::kvClassName(cls),
                    analysis::fmtShare(ops.classShare(cls), 1)
                        .c_str());
    }

    // --- Dimensions 3+4: correlations. ---------------------------
    for (trace::OpType op :
         {trace::OpType::Read, trace::OpType::Update}) {
        analysis::CorrelationConfig config;
        config.op = op;
        config.distances = {0, 16, 256};
        auto corr =
            analysis::analyzeCorrelation(reloaded.value(), config);
        std::printf("\nTop correlated %s class pairs (d=0 / d=16 "
                    "/ d=256):\n",
                    trace::opTypeName(op));
        for (bool intra : {true, false}) {
            for (const analysis::ClassPair &pair :
                 corr.topPairs(0, intra, 2)) {
                std::printf("  %-8s (%s) %llu / %llu / %llu\n",
                            pair.label().c_str(),
                            intra ? "intra" : "cross",
                            static_cast<unsigned long long>(
                                corr.count(pair, 0)),
                            static_cast<unsigned long long>(
                                corr.count(pair, 16)),
                            static_cast<unsigned long long>(
                                corr.count(pair, 256)));
            }
        }
    }
    std::printf("\nDone.\n");
    return 0;
}
